#include "dyn/dynamic_embedder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "geometry/bounding_box.hpp"
#include "geometry/quantize.hpp"
#include "partition/coverage.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte::dyn {

void QuantFrame::snap(std::span<const double> src,
                      std::span<double> dst) const {
  for (std::size_t j = 0; j < src.size(); ++j) {
    const double offset = (src[j] - lo[j]) / cell;
    double snapped = std::round(offset);
    snapped = std::clamp(snapped, 0.0, static_cast<double>(delta - 1));
    dst[j] = snapped + 1.0;
  }
}

Result<DynamicEmbedder> DynamicEmbedder::create(const PointSet& initial,
                                                const DynOptions& options) {
  if (initial.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "DynamicEmbedder: need at least two initial points");
  }
  DynamicEmbedder dyn;
  dyn.method_ = options.method;
  dyn.dim_ = initial.dim();
  dyn.seed_ = options.seed;
  // The static path's attempt-0 seed: incremental updates cannot re-seed
  // (that would change every existing point's column), so the pinned run
  // is exactly retry attempt 0.
  dyn.part_seed_ = hash_combine(mix64(options.seed), 0);
  dyn.fail_prob_ = options.fail_prob;
  dyn.uncovered_ = options.uncovered;

  const std::uint64_t delta =
      options.delta > 0
          ? options.delta
          : recommended_delta(initial, options.quantize_eps, 1ull << 20);
  if (delta < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "DynamicEmbedder: delta must be >= 2");
  }
  const BoundingBox box = BoundingBox::of(initial);
  const double width = box.width();
  dyn.frame_.lo = box.lo();
  dyn.frame_.cell =
      width > 0.0 ? width / static_cast<double>(delta - 1) : 1.0;
  dyn.frame_.delta = delta;

  if (options.method == PartitionMethod::kGrid) {
    dyn.num_buckets_ = static_cast<std::uint32_t>(dyn.dim_);
    dyn.num_grids_ = 0;
    dyn.bucket_dim_ = dyn.dim_;
    dyn.padded_dim_ = dyn.dim_;
    dyn.ladder_ = grid_scale_ladder(dyn.dim_, delta);
    dyn.level_grids_.reserve(dyn.ladder_.levels);
    for (std::size_t level = 1; level <= dyn.ladder_.levels; ++level) {
      dyn.level_grids_.emplace_back(dyn.dim_, dyn.ladder_.scales[level],
                                    grid_level_seed(dyn.part_seed_, level));
    }
  } else {
    const std::uint32_t r =
        options.method == PartitionMethod::kBall
            ? 1
            : (options.num_buckets > 0
                   ? options.num_buckets
                   : auto_num_buckets(initial.size(), dyn.dim_,
                                      options.max_bucket_dim));
    if (r < 1 || r > dyn.dim_) {
      return Status(StatusCode::kInvalidArgument,
                    "DynamicEmbedder: need 1 <= num_buckets <= dim");
    }
    dyn.num_buckets_ = r;
    dyn.bucket_dim_ = ceil_div(dyn.dim_, static_cast<std::size_t>(r));
    dyn.padded_dim_ = dyn.bucket_dim_ * r;
    dyn.ladder_ = hybrid_scale_ladder(dyn.dim_, r, delta);
    dyn.num_grids_ =
        options.num_grids > 0
            ? options.num_grids
            : recommended_num_grids(dyn.bucket_dim_, initial.size(), r,
                                    dyn.ladder_.levels, options.fail_prob);
    dyn.grids_.reserve(dyn.ladder_.levels * r);
    for (std::size_t level = 1; level <= dyn.ladder_.levels; ++level) {
      for (std::uint32_t j = 0; j < r; ++j) {
        dyn.grids_.emplace_back(dyn.bucket_dim_, dyn.ladder_.scales[level],
                                dyn.num_grids_,
                                hybrid_grid_seed(dyn.part_seed_, level, j));
      }
    }
  }

  for (std::size_t i = 0; i < initial.size(); ++i) {
    const Status inserted = dyn.insert_with_id(i, initial[i]);
    if (!inserted.ok()) return inserted;
  }
  // The seed pass is the build, not an update stream: report update work
  // from zero.
  dyn.cells_recomputed_ = 0;
  return dyn;
}

Result<std::vector<std::uint64_t>> DynamicEmbedder::compute_column(
    std::uint64_t id, std::span<const double> snapped) const {
  std::vector<std::uint64_t> column(ladder_.levels + 1);
  column[0] = hybrid_root_id(part_seed_);
  if (method_ == PartitionMethod::kGrid) {
    for (std::size_t level = 1; level <= ladder_.levels; ++level) {
      column[level] = hash_combine(
          column[level - 1], level_grids_[level - 1].cell_id(snapped));
    }
    return column;
  }
  // Zero-pad so r divides the dimension, exactly like the static builder.
  std::vector<double> padded(padded_dim_, 0.0);
  std::copy(snapped.begin(), snapped.end(), padded.begin());
  for (std::size_t level = 1; level <= ladder_.levels; ++level) {
    std::uint64_t cluster = column[level - 1];
    for (std::uint32_t j = 0; j < num_buckets_; ++j) {
      const BallGrids& grids = grids_[(level - 1) * num_buckets_ + j];
      std::uint64_t ball = grids.assign(std::span<const double>(
          padded.data() + j * bucket_dim_, bucket_dim_));
      if (ball == kUncovered) {
        if (uncovered_ == UncoveredPolicy::kFail) {
          return Status(
              StatusCode::kCoverageFailure,
              "ball partitioning left point id " + std::to_string(id) +
                  " uncovered at level " + std::to_string(level) +
                  " bucket " + std::to_string(j) + " (U=" +
                  std::to_string(num_grids_) + ")");
        }
        // Salted with the stable id (the static builder salts with the
        // dense index) — see the byte-identity caveat in the header.
        ball = hash_combine(hash_combine(mix64(0xdeadull), id),
                            hash_combine(level, j));
      }
      cluster = hash_combine(cluster, ball);
    }
    column[level] = cluster;
  }
  return column;
}

Result<std::uint64_t> DynamicEmbedder::insert(std::span<const double> coords) {
  const std::uint64_t id = next_id_;
  const Status inserted = insert_with_id(id, coords);
  if (!inserted.ok()) return inserted;
  return id;
}

Status DynamicEmbedder::insert_with_id(std::uint64_t id,
                                       std::span<const double> coords) {
  if (coords.size() != dim_) {
    return Status(StatusCode::kInvalidArgument,
                  "insert: point has dimension " +
                      std::to_string(coords.size()) + ", embedder has " +
                      std::to_string(dim_));
  }
  if (records_.count(id) != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "insert: id " + std::to_string(id) + " is already live");
  }
  Record record;
  record.snapped.resize(dim_);
  frame_.snap(coords, record.snapped);
  auto column = compute_column(id, record.snapped);
  if (!column.ok()) return column.status();
  record.column = std::move(column).value();
  cells_recomputed_ += record.column.size();
  records_.emplace(id, std::move(record));
  next_id_ = std::max(next_id_, id + 1);
  return Status::Ok();
}

Status DynamicEmbedder::erase(std::uint64_t id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return Status(StatusCode::kInvalidArgument,
                  "erase: no live point with id " + std::to_string(id));
  }
  if (records_.size() <= 2) {
    return Status(StatusCode::kInvalidArgument,
                  "erase: embedder needs at least two live points");
  }
  records_.erase(it);
  return Status::Ok();
}

std::vector<std::uint64_t> DynamicEmbedder::live_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  return ids;
}

Result<Embedding> DynamicEmbedder::materialize() const {
  const std::size_t n = records_.size();
  if (n < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "materialize: need at least two live points");
  }
  Hierarchy h;
  h.num_buckets = num_buckets_;
  h.num_grids = num_grids_;
  h.scales = ladder_.scales;
  h.edge_weight = ladder_.edge_weight;
  h.cluster_of_point.assign(ladder_.levels + 1,
                            std::vector<std::uint64_t>(n));
  PointSet points(n, dim_);
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  std::size_t i = 0;
  // std::map iterates in ascending id order — the dense order of the
  // equivalent static build.
  for (const auto& [id, record] : records_) {
    for (std::size_t level = 0; level <= ladder_.levels; ++level) {
      h.cluster_of_point[level][i] = record.column[level];
    }
    std::copy(record.snapped.begin(), record.snapped.end(),
              points[i].begin());
    ids.push_back(id);
    ++i;
  }
  Embedding embedding{
      build_hst(h),
      std::move(points),
      frame_.cell,
      frame_.delta,
      num_buckets_,
      num_grids_,
      dim_,
      /*fjlt_applied=*/false,
      /*retries_used=*/0,
      std::move(ids),
  };
  return embedding;
}

EmbedOptions DynamicEmbedder::static_equivalent_options() const {
  EmbedOptions options;
  options.method = method_;
  options.num_buckets = num_buckets_;
  options.delta = frame_.delta;
  options.seed = seed_;
  options.use_fjlt = false;
  options.num_grids = num_grids_;
  options.fail_prob = fail_prob_;
  options.uncovered = uncovered_;
  // Byte-identity is pinned to retry attempt 0.
  options.max_retries = 0;
  return options;
}

}  // namespace mpte::dyn
