#include "dyn/dynamic_ensemble.hpp"

#include <optional>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace mpte::dyn {

Result<std::unique_ptr<DynamicEnsemble>> DynamicEnsemble::create(
    const PointSet& initial, const Options& options) {
  if (options.trees == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "DynamicEnsemble: need at least one tree");
  }
  auto ensemble =
      std::unique_ptr<DynamicEnsemble>(new DynamicEnsemble(options));
  const std::size_t trees = options.trees;
  std::vector<std::optional<DynamicEmbedder>> slots(trees);
  std::vector<Status> statuses(trees);
  // Same member-seed derivation as EmbeddingEnsemble::build, so the
  // published ensemble is byte-identical to the static build.
  par::parallel_for_chunked(
      0, trees, trees,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          DynOptions member_options = options.member;
          member_options.seed =
              hash_combine(mix64(options.member.seed ^ 0xe45eull), t);
          auto member = DynamicEmbedder::create(initial, member_options);
          if (member.ok()) {
            slots[t] = std::move(member).value();
          } else {
            statuses[t] = member.status();
          }
        }
      },
      options.threads);
  for (std::size_t t = 0; t < trees; ++t) {
    if (!statuses[t].ok()) return statuses[t];
  }
  ensemble->members_.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    ensemble->members_.push_back(std::move(*slots[t]));
  }
  auto published = ensemble->publish();
  if (!published.ok()) return published.status();
  return ensemble;
}

Result<std::uint64_t> DynamicEnsemble::insert(std::span<const double> coords) {
  const std::uint64_t id = members_.front().next_id();
  const std::size_t trees = members_.size();
  std::vector<Status> statuses(trees);
  par::parallel_for_chunked(
      0, trees, trees,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          statuses[t] = members_[t].insert_with_id(id, coords);
        }
      },
      options_.threads);
  for (std::size_t t = 0; t < trees; ++t) {
    if (!statuses[t].ok()) {
      // All-or-nothing: drop the column from members that accepted it so
      // every member keeps the identical live set.
      for (std::size_t u = 0; u < trees; ++u) {
        if (statuses[u].ok()) (void)members_[u].erase(id);
      }
      return statuses[t];
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++inserts_;
  nodes_reembedded_ +=
      static_cast<std::uint64_t>(trees) *
      (members_.front().levels() + 1);
  return id;
}

Status DynamicEnsemble::erase(std::uint64_t id) {
  // Members hold identical live sets, so the first member's guards decide
  // for all; the erase itself is O(log n) per member.
  for (DynamicEmbedder& member : members_) {
    const Status erased = member.erase(id);
    if (!erased.ok()) return erased;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++erases_;
  return Status::Ok();
}

Result<std::shared_ptr<const EnsembleEpoch>> DynamicEnsemble::publish() {
  const obs::Span span("dyn", "publish", "points",
                       members_.front().size());
  Timer timer;
  const std::size_t trees = members_.size();
  std::vector<std::optional<Embedding>> slots(trees);
  std::vector<Status> statuses(trees);
  par::parallel_for_chunked(
      0, trees, trees,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          auto materialized = members_[t].materialize();
          if (materialized.ok()) {
            slots[t] = std::move(materialized).value();
          } else {
            statuses[t] = materialized.status();
          }
        }
      },
      options_.threads);
  for (std::size_t t = 0; t < trees; ++t) {
    if (!statuses[t].ok()) return statuses[t];
  }
  std::vector<Embedding> members;
  members.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    members.push_back(std::move(*slots[t]));
  }
  auto epoch = std::make_shared<EnsembleEpoch>();
  epoch->point_ids = members.front().point_ids;
  auto built = EmbeddingEnsemble::from_members(std::move(members));
  if (!built.ok()) return built.status();
  epoch->ensemble = std::make_shared<const EmbeddingEnsemble>(
      std::move(built).value());
  epoch->version = ++next_version_;
  epoch_.store(epoch, std::memory_order_release);
  const double ms = timer.seconds() * 1000.0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++epochs_published_;
    last_publish_ms_ = ms;
    publish_us_.observe(static_cast<std::uint64_t>(ms * 1000.0));
  }
  return std::shared_ptr<const EnsembleEpoch>(epoch);
}

DynStats DynamicEnsemble::stats() const {
  DynStats out;
  const auto epoch = current();
  if (epoch) {
    out.epoch = epoch->version;
    out.points = epoch->num_points();
  }
  out.members = members_.size();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  out.inserts = inserts_;
  out.erases = erases_;
  out.updates_applied = inserts_ + erases_;
  out.nodes_reembedded = nodes_reembedded_;
  out.epochs_published = epochs_published_;
  out.last_publish_ms = last_publish_ms_;
  out.publish_p50_ms = publish_us_.quantile(0.50) / 1000.0;
  out.publish_p99_ms = publish_us_.quantile(0.99) / 1000.0;
  return out;
}

void export_dyn_stats(const DynStats& stats, obs::Registry* registry) {
  const auto count = [registry](const char* name, const char* help,
                                std::uint64_t value) {
    registry->counter(name, help).set(value);
  };
  const auto gauge = [registry](const char* name, const char* help,
                                double value) {
    registry->gauge(name, help).set(value);
  };
  count("mpte_dyn_inserts_total", "Points inserted across all members.",
        stats.inserts);
  count("mpte_dyn_erases_total", "Points erased across all members.",
        stats.erases);
  count("mpte_dyn_updates_total", "Updates applied (inserts + erases).",
        stats.updates_applied);
  count("mpte_dyn_nodes_reembedded_total",
        "Hierarchy cells recomputed by updates, summed over members.",
        stats.nodes_reembedded);
  count("mpte_dyn_epochs_published_total",
        "Immutable ensemble epochs published.", stats.epochs_published);
  gauge("mpte_dyn_epoch", "Version of the current epoch.",
        static_cast<double>(stats.epoch));
  gauge("mpte_dyn_points", "Points in the current epoch.",
        static_cast<double>(stats.points));
  gauge("mpte_dyn_members", "Ensemble members (trees).",
        static_cast<double>(stats.members));
  gauge("mpte_dyn_last_epoch_swap_ms",
        "Latency of the most recent publish (materialize + index + swap).",
        stats.last_publish_ms);
  gauge("mpte_dyn_epoch_swap_p50_ms",
        "Median publish latency (octave resolution).", stats.publish_p50_ms);
  gauge("mpte_dyn_epoch_swap_p99_ms",
        "99th percentile publish latency (octave resolution).",
        stats.publish_p99_ms);
}

void DynamicEnsemble::export_metrics(obs::Registry* registry) const {
  export_dyn_stats(stats(), registry);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  registry
      ->histogram("mpte_dyn_epoch_swap_us",
                  "Publish (epoch swap) latency in microseconds "
                  "(log2 buckets).")
      .merge_from(publish_us_);
}

}  // namespace mpte::dyn
