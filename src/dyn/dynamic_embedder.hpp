// DynamicEmbedder — incremental HST maintenance for one embedding.
//
// The static pipeline (core/embedder.hpp) derives a point's cluster id at
// every level as a hash chain over per-level, per-bucket ball (or grid
// cell) ids, and each of those ids is a *pure function of (seed, level,
// coordinates)* — no point's id depends on any other point. That is the
// whole reason the construction dynamizes (Goranci et al. 2025, PAPERS.md):
// inserting or erasing a point changes exactly one root-to-leaf column of
// the hierarchy, O(depth) cells, and leaves every other point's column
// untouched.
//
// A DynamicEmbedder pins everything the static pipeline would derive from
// the point set as a whole — delta, the quantization frame (per-dimension
// lows + cell width), bucket count r, grid count U, the scale ladder, and
// the partition structures for every (level, bucket) — at creation, then
// maintains a map from stable point id to that point's snapped coordinates
// and cluster-id column. insert() computes one new column (O(levels * r)
// ball probes); erase() drops one. materialize() lays the live columns out
// in ascending-id order and runs the *same* build_hst the static path
// runs, so the produced tree is byte-identical (hst_to_bytes) to
// embed(final_points, static_equivalent_options()) whenever the final
// set's bounding box matches the pinned frame — the core correctness
// contract, asserted by tests/test_dyn.cpp.
//
// Determinism caveats (see docs/dynamic-embeddings.md):
//  * No FJLT: the transform's output dimension is a function of n, which
//    changes under updates. Dynamic instances always embed raw
//    (quantized) coordinates.
//  * UncoveredPolicy::kSingleton salts the fallback ball id with the
//    point's *stable id*, where the static builder salts with the dense
//    index; byte-identity therefore requires zero uncovered events
//    (guaranteed under kFail, overwhelmingly likely under the default
//    fail_prob).
//  * The partition seed is the static path's attempt-0 retry seed. If
//    attempt 0 would fail coverage, create()/insert() report
//    kCoverageFailure instead of silently re-seeding (re-seeding would
//    reshuffle every existing point's column — a full rebuild).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "core/embedder.hpp"
#include "geometry/point_set.hpp"
#include "partition/ball_partition.hpp"
#include "partition/grid_partition.hpp"
#include "partition/hybrid_partition.hpp"

namespace mpte::dyn {

/// Options for DynamicEmbedder::create(). Zeros mean "resolve from the
/// initial point set, then pin" — after creation nothing auto-adapts.
struct DynOptions {
  PartitionMethod method = PartitionMethod::kHybrid;
  /// Buckets r for kHybrid; 0 = auto_num_buckets over the *initial* set.
  std::uint32_t num_buckets = 0;
  /// Cap on the per-bucket dimension when num_buckets is auto.
  std::size_t max_bucket_dim = 3;
  /// Grid extent Delta; 0 = recommended_delta over the initial set.
  std::uint64_t delta = 0;
  /// Relative distance error budget for quantization when delta = 0.
  double quantize_eps = 0.05;
  /// Root seed, in embed() terms: the partition seed actually used is the
  /// attempt-0 derivation hash_combine(mix64(seed), 0).
  std::uint64_t seed = 1;
  /// Grids per (level, bucket); 0 = recommended_num_grids over the
  /// initial set.
  std::size_t num_grids = 0;
  double fail_prob = 1e-6;
  UncoveredPolicy uncovered = UncoveredPolicy::kFail;
};

/// The quantization frame quantize_to_grid derives from a bounding box,
/// frozen so late inserts snap to the same lattice as the initial points.
struct QuantFrame {
  /// Per-dimension lower corner of the pinned box.
  std::vector<double> lo;
  /// Lattice cell width (= Embedding::scale_to_input).
  double cell = 1.0;
  std::uint64_t delta = 0;

  /// Snaps raw input coordinates onto {1, ..., delta}^d, reproducing
  /// quantize_to_grid arithmetic exactly.
  void snap(std::span<const double> src, std::span<double> dst) const;
};

class DynamicEmbedder {
 public:
  /// Pins the configuration against `initial` (>= 2 points) and inserts
  /// its points with ids 0..n-1. Fails with kCoverageFailure when the
  /// pinned seed leaves a point uncovered under kFail (retry with a
  /// different options.seed).
  static Result<DynamicEmbedder> create(const PointSet& initial,
                                        const DynOptions& options);

  DynamicEmbedder(DynamicEmbedder&&) = default;
  DynamicEmbedder& operator=(DynamicEmbedder&&) = default;
  DynamicEmbedder(const DynamicEmbedder&) = delete;
  DynamicEmbedder& operator=(const DynamicEmbedder&) = delete;

  /// Inserts a point given in *input* units; returns its new stable id.
  /// O(levels * r) partition probes — the O(depth) update of the paper.
  Result<std::uint64_t> insert(std::span<const double> coords);

  /// Inserts under a caller-chosen id (ensemble members must agree on
  /// ids). Fails with kInvalidArgument if the id is live.
  Status insert_with_id(std::uint64_t id, std::span<const double> coords);

  /// Removes a live point. Fails with kInvalidArgument on an unknown id,
  /// or when the removal would leave fewer than 2 points (embed()'s own
  /// lower bound).
  Status erase(std::uint64_t id);

  bool contains(std::uint64_t id) const { return records_.count(id) != 0; }
  std::size_t size() const { return records_.size(); }
  std::size_t dim() const { return dim_; }
  std::size_t levels() const { return ladder_.levels; }
  /// The id insert() will assign next (monotonic, never reused).
  std::uint64_t next_id() const { return next_id_; }
  /// Live ids in ascending order — the dense order materialize() uses.
  std::vector<std::uint64_t> live_ids() const;
  const QuantFrame& frame() const { return frame_; }

  /// Cumulative count of hierarchy cells (point-level cluster ids)
  /// recomputed by inserts — the "subtree nodes re-embedded" statistic.
  /// Each insert adds levels()+1; erases add nothing (they only drop a
  /// column).
  std::uint64_t cells_recomputed() const { return cells_recomputed_; }

  /// Rebuilds the full Embedding over the live set: columns in ascending
  /// id order -> Hierarchy -> the shared build_hst. O(n * depth), no
  /// partition probes. Byte-identical to the static build over the same
  /// final set (see file comment for the exact conditions).
  Result<Embedding> materialize() const;

  /// The EmbedOptions a from-scratch embed() needs to reproduce this
  /// instance's trees: every pinned parameter made explicit, FJLT off.
  EmbedOptions static_equivalent_options() const;

 private:
  struct Record {
    /// Snapped coordinates, dim() entries in {1, ..., delta}.
    std::vector<double> snapped;
    /// Cluster-id column, levels()+1 entries (level 0 = root id).
    std::vector<std::uint64_t> column;
  };

  DynamicEmbedder() = default;

  /// Computes the cluster-id column of one snapped point. `id` only salts
  /// the kSingleton fallback.
  Result<std::vector<std::uint64_t>> compute_column(
      std::uint64_t id, std::span<const double> snapped) const;

  PartitionMethod method_ = PartitionMethod::kHybrid;
  std::size_t dim_ = 0;
  /// Padded dimension bucket_dim_ * r (hybrid/ball); == dim_ for grid.
  std::size_t padded_dim_ = 0;
  std::size_t bucket_dim_ = 0;
  std::uint32_t num_buckets_ = 1;
  std::size_t num_grids_ = 0;
  std::uint64_t seed_ = 0;       // embed()-level root seed
  std::uint64_t part_seed_ = 0;  // attempt-0 partition seed
  double fail_prob_ = 1e-6;
  UncoveredPolicy uncovered_ = UncoveredPolicy::kFail;
  QuantFrame frame_;
  ScaleLadder ladder_;
  /// Hybrid/ball: grids_[(level-1) * r + bucket]; immutable once built.
  std::vector<BallGrids> grids_;
  /// Grid method: one ShiftedGrid per level (index level-1).
  std::vector<ShiftedGrid> level_grids_;

  std::map<std::uint64_t, Record> records_;
  std::uint64_t next_id_ = 0;
  std::uint64_t cells_recomputed_ = 0;
};

}  // namespace mpte::dyn
