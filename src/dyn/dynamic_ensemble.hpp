// DynamicEnsemble — epoch-published dynamic embeddings for serving.
//
// Wraps T DynamicEmbedders whose per-member seeds follow the exact
// derivation EmbeddingEnsemble::build uses, so the ensemble a publish()
// produces is byte-identical to a from-scratch EmbeddingEnsemble::build
// over the same final point set. Updates fan out across members on the
// mpte::par pool (each member's column computation is independent), and
// publish() turns the mutated state into a new *immutable* epoch:
//
//   EnsembleEpoch = { version, shared_ptr<const EmbeddingEnsemble> }
//
// swapped under a std::atomic<std::shared_ptr>. Readers snapshot the
// current epoch (one atomic load, shared ownership keeps it alive for as
// long as they hold it) and never block on writers — the same
// copy-on-write discipline the refcounted mpc::Buffer slabs use for
// zero-copy broadcast. Writers (insert/erase/publish) must be externally
// serialized; the serve batcher provides that serialization for free.
//
// Observability: every applied update, the per-update hierarchy cells
// recomputed ("subtree nodes re-embedded"), every published epoch, and an
// epoch-swap latency histogram are tracked and exported as mpte_dyn_*
// series (docs/observability.md naming).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/ensemble.hpp"
#include "dyn/dynamic_embedder.hpp"
#include "obs/metrics.hpp"

namespace mpte::dyn {

/// One immutable published version of the ensemble. Shared pointers keep
/// an epoch alive for exactly as long as any reader still uses it.
struct EnsembleEpoch {
  /// Monotonic version: 1 for the epoch create() publishes, +1 per
  /// publish().
  std::uint64_t version = 0;
  std::shared_ptr<const EmbeddingEnsemble> ensemble;
  /// Stable id of each dense point index (== member(0).point_ids).
  std::vector<std::uint64_t> point_ids;

  std::size_t num_points() const { return ensemble->num_points(); }
};

/// Point-in-time dynamic-layer counters; exported as mpte_dyn_* metrics.
struct DynStats {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  /// inserts + erases.
  std::uint64_t updates_applied = 0;
  /// Hierarchy cells recomputed by updates, summed over members — the
  /// O(depth)-per-update work the dynamic algorithm saves vs a rebuild.
  std::uint64_t nodes_reembedded = 0;
  std::uint64_t epochs_published = 0;
  /// Version of the current epoch.
  std::uint64_t epoch = 0;
  std::size_t points = 0;
  std::size_t members = 0;
  double last_publish_ms = 0.0;
  /// Publish (materialize + index + swap) latency percentiles, octave
  /// resolution like the serve latency percentiles.
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
};

class DynamicEnsemble {
 public:
  struct Options {
    std::size_t trees = 4;
    /// Pool degree for member fan-out (0 = mpte::par default).
    std::size_t threads = 0;
    /// Shared pinned configuration; member t's seed is derived from
    /// member.seed exactly like EmbeddingEnsemble::build derives it.
    DynOptions member;
  };

  /// Builds all members over `initial` and publishes epoch 1. current()
  /// is never null afterwards.
  static Result<std::unique_ptr<DynamicEnsemble>> create(
      const PointSet& initial, const Options& options);

  /// Inserts one point (input units) into every member; returns its
  /// stable id. All-or-nothing: a coverage failure in any member rolls
  /// the others back. Not visible to readers until publish().
  Result<std::uint64_t> insert(std::span<const double> coords);

  /// Erases a live point from every member. Not visible until publish().
  Status erase(std::uint64_t id);

  /// Materializes every member (in parallel), builds the LcaIndexes, and
  /// atomically swaps the new epoch in. O(n * depth * T) — amortize it
  /// over a batch of updates.
  Result<std::shared_ptr<const EnsembleEpoch>> publish();

  /// The current epoch: one atomic shared_ptr load, never null, never
  /// blocks regardless of concurrent updates/publishes.
  std::shared_ptr<const EnsembleEpoch> current() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Live point count of the *mutable* state (may be ahead of the
  /// published epoch). Writer-thread view.
  std::size_t size() const { return members_.front().size(); }
  std::size_t num_members() const { return members_.size(); }
  bool contains(std::uint64_t id) const {
    return members_.front().contains(id);
  }
  const DynamicEmbedder& member(std::size_t t) const { return members_[t]; }

  DynStats stats() const;
  /// Mirrors stats() into mpte_dyn_* series plus the full epoch-swap
  /// latency histogram (mpte_dyn_epoch_swap_us).
  void export_metrics(obs::Registry* registry) const;

 private:
  explicit DynamicEnsemble(Options options) : options_(std::move(options)) {}

  Options options_;
  std::vector<DynamicEmbedder> members_;
  std::atomic<std::shared_ptr<const EnsembleEpoch>> epoch_;
  std::uint64_t next_version_ = 0;

  mutable std::mutex stats_mutex_;  // guards the counters below
  std::uint64_t inserts_ = 0;
  std::uint64_t erases_ = 0;
  std::uint64_t nodes_reembedded_ = 0;
  std::uint64_t epochs_published_ = 0;
  double last_publish_ms_ = 0.0;
  obs::Histogram publish_us_;
};

/// Mirrors a DynStats snapshot into mpte_dyn_* registry series (the
/// single-sourcing pattern export_service_stats established).
void export_dyn_stats(const DynStats& stats, obs::Registry* registry);

}  // namespace mpte::dyn
