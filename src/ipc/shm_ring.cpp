#include "ipc/shm_ring.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <new>
#include <vector>

#include "common/checksum.hpp"

namespace mpte::ipc {

namespace {

using Clock = std::chrono::steady_clock;

/// Spin iterations before parking on the futex. At ~1ns per relax this
/// covers the common case — the peer is mid-round and will advance the
/// cursor within a few microseconds — without burning a core for long.
constexpr int kSpinIterations = 4096;

/// Upper bound of one futex park. Between slices the waiter re-checks
/// the cursor, the closed flag, the deadline, and the peer fd — so a
/// SIGKILLed peer (which can never wake us) is detected within a slice.
constexpr int kFutexSliceMs = 50;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// True once the peer's end of the socketpair is gone (POLLHUP/POLLERR
/// with no events requested — a pure liveness probe, never a read).
bool peer_dead(int fd) {
  if (fd < 0) return false;
  struct pollfd p;
  p.fd = fd;
  p.events = 0;
  p.revents = 0;
  if (::poll(&p, 1, 0) <= 0) return false;
  return (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
}

/// Milliseconds for the next futex slice: min(slice, time to deadline).
/// Returns 0 when the deadline has passed (infinite never does).
int next_slice_ms(Clock::time_point deadline, bool infinite) {
  if (infinite) return kFutexSliceMs;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(
      std::min<std::int64_t>(left.count(), kFutexSliceMs));
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr std::size_t kMinRingBytes = 1u << 10;
constexpr std::uint64_t kChannelMagic = 0x4d505445'52494e47ull;  // "MPTERING"

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

Status ShmRing::write(std::span<const std::uint8_t> bytes, int peer_fd,
                      int timeout_ms) {
  const bool infinite = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(infinite ? 0 : timeout_ms);
  const std::size_t mask = capacity_ - 1;
  std::size_t offset = 0;
  bool blocking_counted = false;
  while (offset < bytes.size()) {
    if (closed()) {
      return Status(StatusCode::kUnavailable, "shm ring: closed");
    }
    const std::uint64_t head = header_->head.load(std::memory_order_acquire);
    const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
    const std::size_t free = capacity_ - static_cast<std::size_t>(tail - head);
    if (free == 0) {
      if (!blocking_counted) {
        header_->full_waits.fetch_add(1, std::memory_order_relaxed);
        blocking_counted = true;
      }
      bool moved = false;
      for (int i = 0; i < kSpinIterations; ++i) {
        if (header_->head.load(std::memory_order_acquire) != head ||
            closed()) {
          moved = true;
          break;
        }
        cpu_relax();
      }
      if (moved) continue;
      if (peer_dead(peer_fd)) {
        return Status(StatusCode::kUnavailable, "shm ring: peer closed");
      }
      const int slice = next_slice_ms(deadline, infinite);
      if (slice == 0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "shm ring: write timed out");
      }
      // Dekker-style park: flag (seq_cst) then re-check, against the
      // consumer's cursor-store/flag-load on the other side — one of the
      // two always observes the other, so no wake is ever missed.
      const std::uint32_t seq =
          header_->head_seq.load(std::memory_order_acquire);
      header_->writer_waiting.store(1, std::memory_order_seq_cst);
      if (header_->head.load(std::memory_order_seq_cst) == head &&
          !closed()) {
        futex_wait(header_->head_seq, seq, slice);
      }
      header_->writer_waiting.store(0, std::memory_order_relaxed);
      continue;
    }
    blocking_counted = false;
    const std::size_t at = static_cast<std::size_t>(tail & mask);
    const std::size_t chunk =
        std::min({bytes.size() - offset, free, capacity_ - at});
    std::memcpy(data_ + at, bytes.data() + offset, chunk);
    if (at + chunk == capacity_) {
      header_->wraps.fetch_add(1, std::memory_order_relaxed);
    }
    header_->bytes.fetch_add(chunk, std::memory_order_relaxed);
    header_->tail.store(tail + chunk, std::memory_order_release);
    header_->tail_seq.fetch_add(1, std::memory_order_seq_cst);
    if (header_->reader_waiting.load(std::memory_order_seq_cst) != 0) {
      futex_wake_all(header_->tail_seq);
    }
    offset += chunk;
  }
  return Status::Ok();
}

Status ShmRing::read(std::span<std::uint8_t> out, int peer_fd,
                     int timeout_ms) {
  const bool infinite = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(infinite ? 0 : timeout_ms);
  const std::size_t mask = capacity_ - 1;
  std::size_t offset = 0;
  while (offset < out.size()) {
    const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    if (avail == 0) {
      // A closed ring may still be drained; only fail once it is empty.
      if (closed()) {
        return Status(StatusCode::kUnavailable, "shm ring: closed");
      }
      bool moved = false;
      for (int i = 0; i < kSpinIterations; ++i) {
        if (header_->tail.load(std::memory_order_acquire) != tail ||
            closed()) {
          moved = true;
          break;
        }
        cpu_relax();
      }
      if (moved) continue;
      if (peer_dead(peer_fd)) {
        return Status(StatusCode::kUnavailable, "shm ring: peer closed");
      }
      const int slice = next_slice_ms(deadline, infinite);
      if (slice == 0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "shm ring: read timed out");
      }
      const std::uint32_t seq =
          header_->tail_seq.load(std::memory_order_acquire);
      header_->reader_waiting.store(1, std::memory_order_seq_cst);
      if (header_->tail.load(std::memory_order_seq_cst) == tail &&
          !closed()) {
        futex_wait(header_->tail_seq, seq, slice);
      }
      header_->reader_waiting.store(0, std::memory_order_relaxed);
      continue;
    }
    const std::size_t at = static_cast<std::size_t>(head & mask);
    const std::size_t chunk =
        std::min({out.size() - offset, avail, capacity_ - at});
    std::memcpy(out.data() + offset, data_ + at, chunk);
    header_->head.store(head + chunk, std::memory_order_release);
    header_->head_seq.fetch_add(1, std::memory_order_seq_cst);
    if (header_->writer_waiting.load(std::memory_order_seq_cst) != 0) {
      futex_wake_all(header_->head_seq);
    }
    offset += chunk;
  }
  return Status::Ok();
}

void ShmRing::close() {
  header_->closed.store(1, std::memory_order_seq_cst);
  // Bump both futex words so parked waiters fail their expected-value
  // check immediately instead of sleeping out the slice.
  header_->tail_seq.fetch_add(1, std::memory_order_seq_cst);
  header_->head_seq.fetch_add(1, std::memory_order_seq_cst);
  futex_wake_all(header_->tail_seq);
  futex_wake_all(header_->head_seq);
}

struct ShmChannel::Meta {
  std::uint64_t magic = kChannelMagic;
  std::uint64_t ring_capacity = 0;
  std::uint64_t arena_capacity = 0;
  /// Blob bytes passed through the arenas (both directions).
  std::atomic<std::uint64_t> arena_bytes{0};
  /// Frames that exceeded ring capacity and took the socketpair.
  std::atomic<std::uint64_t> fallback_frames{0};
};

Result<ShmChannel> ShmChannel::create(const Config& config) {
  const std::size_t ring_capacity =
      round_up_pow2(std::max(config.ring_bytes, kMinRingBytes));
  const std::size_t arena_capacity = config.arena_bytes;

  const std::size_t meta_at = 0;
  const std::size_t header_to_worker_at =
      align_up(meta_at + sizeof(Meta), alignof(RingHeader));
  const std::size_t header_to_coord_at =
      align_up(header_to_worker_at + sizeof(RingHeader), alignof(RingHeader));
  const std::size_t data_to_worker_at =
      align_up(header_to_coord_at + sizeof(RingHeader), 64);
  const std::size_t data_to_coord_at = data_to_worker_at + ring_capacity;
  const std::size_t arena_to_worker_at =
      align_up(data_to_coord_at + ring_capacity, 64);
  const std::size_t arena_to_coord_at = arena_to_worker_at + arena_capacity;
  const std::size_t total = arena_to_coord_at + arena_capacity;

  auto region = ShmRegion::create(total, "mpte-ipc-channel");
  if (!region.ok()) return region.status();

  ShmChannel channel;
  channel.region_ = std::move(*region);
  std::uint8_t* base = channel.region_.data();
  channel.meta_ = new (base + meta_at) Meta();
  channel.meta_->ring_capacity = ring_capacity;
  channel.meta_->arena_capacity = arena_capacity;
  auto* header_to_worker = new (base + header_to_worker_at) RingHeader();
  auto* header_to_coord = new (base + header_to_coord_at) RingHeader();
  channel.to_worker_ =
      ShmRing(header_to_worker, base + data_to_worker_at, ring_capacity);
  channel.to_coordinator_ =
      ShmRing(header_to_coord, base + data_to_coord_at, ring_capacity);
  channel.arena_to_worker_ = base + arena_to_worker_at;
  channel.arena_to_coordinator_ = base + arena_to_coord_at;
  channel.arena_capacity_ = arena_capacity;
  return channel;
}

void ShmChannel::bind(Side side, int fd) {
  side_ = side;
  fd_ = fd;
  send_arena_.base =
      side == Side::kCoordinator ? arena_to_worker_ : arena_to_coordinator_;
  send_arena_.capacity = arena_capacity_;
  send_arena_.used = 0;
}

ShmRing& ShmChannel::send_ring() {
  return side_ == Side::kCoordinator ? to_worker_ : to_coordinator_;
}

ShmRing& ShmChannel::recv_ring() {
  return side_ == Side::kCoordinator ? to_coordinator_ : to_worker_;
}

std::size_t ShmChannel::max_ring_frame() const {
  return static_cast<std::size_t>(meta_->ring_capacity) - sizeof(std::uint64_t);
}

BlobArena* ShmChannel::encode_arena() {
  send_arena_.reset();
  return &send_arena_;
}

Status ShmChannel::send_frame(const mpc::Buffer& encoded, int timeout_ms) {
  // Whatever the last encode staged in the arena rides along with this
  // frame; account it once and forget it (the next encode resets).
  if (send_arena_.used > 0) {
    meta_->arena_bytes.fetch_add(send_arena_.used,
                                 std::memory_order_relaxed);
    send_arena_.used = 0;
  }
  ShmRing& ring = send_ring();
  std::uint64_t marker = encoded.size();
  if (encoded.size() > max_ring_frame()) {
    // Too big for the ring: announce with a 0 marker (keeps per-channel
    // frame order) and ship the envelope over the socketpair.
    meta_->fallback_frames.fetch_add(1, std::memory_order_relaxed);
    marker = 0;
    const Status announced = ring.write(
        std::span(reinterpret_cast<const std::uint8_t*>(&marker),
                  sizeof(marker)),
        fd_, timeout_ms);
    if (!announced.ok()) return announced;
    return write_frame(fd_, encoded);
  }
  const Status announced = ring.write(
      std::span(reinterpret_cast<const std::uint8_t*>(&marker),
                sizeof(marker)),
      fd_, timeout_ms);
  if (!announced.ok()) return announced;
  return ring.write(encoded.span(), fd_, timeout_ms);
}

Result<Frame> ShmChannel::recv_frame(int timeout_ms) {
  ShmRing& ring = recv_ring();
  std::uint64_t marker = 0;
  const Status got_marker = ring.read(
      std::span(reinterpret_cast<std::uint8_t*>(&marker), sizeof(marker)),
      fd_, timeout_ms);
  if (!got_marker.ok()) return got_marker;
  const std::span<const std::uint8_t> arena(
      side_ == Side::kCoordinator ? arena_to_coordinator_ : arena_to_worker_,
      arena_capacity_);
  if (marker == 0) return read_frame(fd_, timeout_ms, arena);
  if (marker < kEnvelopeHeaderBytes + kEnvelopeTrailerBytes ||
      marker > max_ring_frame()) {
    return Status(StatusCode::kInvalidArgument,
                  "shm ring: implausible frame marker " +
                      std::to_string(marker));
  }
  std::vector<std::uint8_t> envelope(static_cast<std::size_t>(marker));
  const Status got_body = ring.read(envelope, fd_, timeout_ms);
  if (!got_body.ok()) return got_body;
  return decode_envelope(envelope, arena);
}

void ShmChannel::close() {
  to_worker_.close();
  to_coordinator_.close();
}

RingCounters ShmChannel::drain_counters() {
  const auto ring_total = [](const ShmRing& ring) {
    const RingHeader* h = ring.header();
    RingCounters c;
    c.wraps = h->wraps.load(std::memory_order_relaxed);
    c.full_waits = h->full_waits.load(std::memory_order_relaxed);
    c.shm_bytes = h->bytes.load(std::memory_order_relaxed);
    return c;
  };
  RingCounters total = ring_total(to_worker_);
  total += ring_total(to_coordinator_);
  total.shm_bytes += meta_->arena_bytes.load(std::memory_order_relaxed);
  total.fallback_frames =
      meta_->fallback_frames.load(std::memory_order_relaxed);

  RingCounters delta;
  delta.wraps = total.wraps - drained_.wraps;
  delta.full_waits = total.full_waits - drained_.full_waits;
  delta.shm_bytes = total.shm_bytes - drained_.shm_bytes;
  delta.fallback_frames = total.fallback_frames - drained_.fallback_frames;
  drained_ = total;
  return delta;
}

Result<Transport> Transport::create(const Config& config) {
  Transport transport;
  transport.kind_ = config.kind;
  if (config.kind == TransportKind::kShmRing) {
    ShmChannel::Config channel_config;
    channel_config.ring_bytes = config.ring_bytes;
    channel_config.arena_bytes = config.arena_bytes;
    auto channel = ShmChannel::create(channel_config);
    if (!channel.ok()) return channel.status();
    transport.channel_ =
        std::make_unique<ShmChannel>(std::move(*channel));
  }
  return transport;
}

void Transport::bind(Side side, int fd) {
  fd_ = fd;
  if (channel_) channel_->bind(side, fd);
}

Status Transport::send_frame(const mpc::Buffer& encoded) {
  if (channel_) return channel_->send_frame(encoded);
  return write_frame(fd_, encoded);
}

Result<Frame> Transport::recv_frame(int timeout_ms) {
  if (channel_) return channel_->recv_frame(timeout_ms);
  return read_frame(fd_, timeout_ms);
}

BlobArena* Transport::encode_arena() {
  return channel_ ? channel_->encode_arena() : nullptr;
}

void Transport::shutdown_channel() {
  if (channel_) channel_->close();
}

RingCounters Transport::drain_counters() {
  return channel_ ? channel_->drain_counters() : RingCounters{};
}

}  // namespace mpte::ipc
