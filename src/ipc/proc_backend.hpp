// The multi-process round executor behind ClusterConfig::backend =
// Backend::kMultiProcess.
//
// Two worker provisioning modes (IpcOptions::workers):
//
// * kPersistent (default): the pool forks each rank **once**, lazily on
//   the first named round. A worker keeps its LocalStore resident across
//   rounds; each round the coordinator ships a kStep frame — the StepSpec
//   (name + serialized params, rebuilt worker-side via the StepRegistry),
//   a store patch covering what changed coordinator-side since the last
//   kStep (host writes, fork-fallback rounds; or a full resync after
//   (re)spawn), and the rank's delivered inbox — and the worker answers
//   with the same kResult delta fork mode uses. Rounds that run a hosted
//   closure (unnamed spec) fall back to fork-per-round transparently; the
//   resident pool just stays blocked in its frame read.
//
// * kForkPerRound: one worker per rank per round. The child inherits the
//   resolved step and the entire pre-round cluster state copy-on-write,
//   executes its own rank's step serially, and ships back only what
//   changed — the rank's store delta (LocalStore dirty keys) plus its
//   outbox — as one checksummed result frame.
//
// Either way the coordinator applies all M frames to its authoritative
// state and then falls through to the same audit/delivery/stats code the
// in-process backend uses, which is why RoundStats, channel byte totals,
// and the golden fingerprints are byte-identical between backends.
//
// Frames travel the substrate IpcOptions::transport selects — per-worker
// shared-memory rings + blob arenas (kShmRing, the default) or plain
// socketpairs — through the Transport seam (shm_ring.hpp). Decoded
// frames are identical on either substrate, so the transport choice
// never affects results either; see docs/ipc-transport.md.
//
// Failure semantics: a worker that dies (EOF/EPIPE, observed exit),
// misses the round deadline, or sends garbage surfaces as WorkerLost —
// a RankCrashed subclass, so ckpt::run_with_recovery restores the latest
// snapshot (or restarts) exactly as for a simulated rank crash. The
// coordinator's state is untouched on failure: deltas are applied only
// after every frame arrived intact. A persistent failure additionally
// tears the whole pool down; the next named round respawns it and
// resyncs every worker's store from the coordinator's authoritative copy
// (counted in workers_respawned / store_resyncs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ipc/process_pool.hpp"
#include "mpc/cluster.hpp"

namespace mpte::obs {
class Registry;
}  // namespace mpte::obs

namespace mpte::ipc {

/// Thrown by the multi-process backend when a worker process is lost
/// mid-round. Caught by recovery drivers via the RankCrashed base.
class WorkerLost : public mpc::RankCrashed {
 public:
  enum class Cause : std::uint8_t {
    kDied = 0,      ///< EOF/EPIPE, or waitpid observed the exit
    kDeadline = 1,  ///< missed the round barrier deadline
    kProtocol = 2,  ///< sent bytes that do not parse as a valid frame
  };

  WorkerLost(mpc::MachineId rank, std::size_t round, Cause cause,
             const std::string& detail);

  Cause cause() const { return cause_; }

 private:
  Cause cause_;
};

/// Transport counters, exported as mpte_ipc_* metrics. Wall-clock buckets
/// are coordinator-side: barrier covers provision-to-last-frame, apply
/// covers result decoding + delta application.
struct IpcStats {
  std::uint64_t rounds = 0;
  std::uint64_t workers_forked = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t frames_received = 0;
  /// Worker -> coordinator result-frame envelope bytes.
  std::uint64_t result_wire_bytes = 0;
  /// Coordinator -> worker commit-frame envelope bytes (fork mode only;
  /// the persistent protocol has no commit frame — the next kStep is the
  /// implicit commit).
  std::uint64_t commit_wire_bytes = 0;
  /// Store-delta payload bytes carried inside result frames.
  std::uint64_t store_delta_bytes = 0;
  /// Outbox fragment payload bytes carried inside result frames.
  std::uint64_t fragment_bytes = 0;
  // --- persistent-worker counters ---
  /// kStep frames shipped to persistent workers.
  std::uint64_t step_frames_sent = 0;
  /// Coordinator -> worker kStep envelope bytes.
  std::uint64_t step_wire_bytes = 0;
  /// Store-patch payload bytes carried inside kStep frames.
  std::uint64_t store_patch_bytes = 0;
  /// Workers forked *again* after the initial pool (pool teardown after a
  /// WorkerLost or an invalidation, then respawn on the next round).
  std::uint64_t workers_respawned = 0;
  /// Full store resyncs shipped to (re)spawned workers.
  std::uint64_t store_resyncs = 0;
  /// Rounds that fell back to fork-per-round because the spec carried a
  /// hosted closure instead of a registered name.
  std::uint64_t fallback_rounds = 0;
  // --- shared-memory transport counters (kShmRing only; all zero under
  // kSocketpair). Drained from the shared ring headers once per round
  // and at pool teardown, so worker-side activity is included. ---
  /// Frame writes that wrapped past the end of a ring buffer.
  std::uint64_t ring_wraps = 0;
  /// Blocking episodes where a producer found its ring full.
  std::uint64_t ring_full_waits = 0;
  /// Bytes moved through shared-memory rings and blob arenas.
  std::uint64_t shm_bytes = 0;
  /// Frames that exceeded ring capacity and fell back to the socketpair.
  std::uint64_t fallback_frames = 0;
  /// Rounds executed per step name (exported with a step="..." label).
  std::map<std::string, std::uint64_t> step_rounds;
  double barrier_seconds = 0.0;
  double apply_seconds = 0.0;
};

class ProcBackend final : public mpc::RoundExecutor {
 public:
  ProcBackend() = default;
  /// Gracefully shuts a live persistent pool down (kShutdown frame, then
  /// join; the pool destructor SIGKILLs stragglers — no path leaks a
  /// child).
  ~ProcBackend() override;

  void run_steps(const mpc::ClusterConfig& config,
                 std::vector<mpc::Machine>& machines,
                 std::vector<mpc::Outbox>& outboxes,
                 const mpc::StepSpec& spec, std::size_t round) override;

  void export_metrics(obs::Registry& registry) const override;

  /// Coordinator machines were rewritten out of band (resume_from /
  /// reset_to_start): persistent worker stores are stale. Tears the pool
  /// down; the next named round respawns and resyncs.
  void invalidate_workers() override;

  const IpcStats& stats() const { return stats_; }

 private:
  void run_fork_round(const mpc::ClusterConfig& config,
                      std::vector<mpc::Machine>& machines,
                      std::vector<mpc::Outbox>& outboxes,
                      const mpc::StepSpec& spec, std::size_t round);
  void run_persistent_round(const mpc::ClusterConfig& config,
                            std::vector<mpc::Machine>& machines,
                            std::vector<mpc::Outbox>& outboxes,
                            const mpc::StepSpec& spec, std::size_t round);
  /// Kills + reaps the persistent pool and marks every rank unsynced.
  void teardown_pool();

  IpcStats stats_;
  /// IpcOptions::kill_at_round fires once per executor (like a FaultPlan
  /// event), so a recovered run passes the previously-killed round.
  bool kill_fired_ = false;
  /// The persistent pool; engaged from the first named round until a
  /// failure/invalidation tears it down (then re-engaged on demand).
  std::optional<ProcessPool> pool_;
  /// synced_[rank]: the persistent worker's resident store matches the
  /// coordinator's view as of the last kStep it was sent. False forces a
  /// full-store resync in the next kStep.
  std::vector<bool> synced_;
  /// Whether a persistent pool was ever spawned (distinguishes the first
  /// spawn from respawns in workers_respawned).
  bool ever_spawned_ = false;
};

}  // namespace mpte::ipc
