// The multi-process round executor behind ClusterConfig::backend =
// Backend::kMultiProcess.
//
// Steps are host std::function closures — they cannot cross a process
// boundary by serialization. Instead the coordinator forks one worker per
// rank *per round*: the child inherits the closure and the entire
// pre-round cluster state copy-on-write, executes its own rank's step
// serially, and ships back only what changed — the rank's store delta
// (LocalStore dirty keys) plus its outbox — as one checksummed result
// frame. The coordinator applies all M frames to its authoritative state
// and then falls through to the same audit/delivery/stats code the
// in-process backend uses, which is why RoundStats, channel byte totals,
// and the golden fingerprints are byte-identical between backends.
//
// Failure semantics: a worker that dies (EOF/EPIPE, observed exit),
// misses the round deadline, or sends garbage surfaces as WorkerLost —
// a RankCrashed subclass, so ckpt::run_with_recovery restores the latest
// snapshot (or restarts) exactly as for a simulated rank crash. The
// coordinator's state is untouched on failure: deltas are applied only
// after every frame arrived intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mpc/cluster.hpp"

namespace mpte::obs {
class Registry;
}  // namespace mpte::obs

namespace mpte::ipc {

/// Thrown by the multi-process backend when a worker process is lost
/// mid-round. Caught by recovery drivers via the RankCrashed base.
class WorkerLost : public mpc::RankCrashed {
 public:
  enum class Cause : std::uint8_t {
    kDied = 0,      ///< EOF/EPIPE, or waitpid observed the exit
    kDeadline = 1,  ///< missed the round barrier deadline
    kProtocol = 2,  ///< sent bytes that do not parse as a valid frame
  };

  WorkerLost(mpc::MachineId rank, std::size_t round, Cause cause,
             const std::string& detail);

  Cause cause() const { return cause_; }

 private:
  Cause cause_;
};

/// Transport counters, exported as mpte_ipc_* metrics. Wall-clock buckets
/// are coordinator-side: serialize covers commit-frame encoding + result
/// decoding/apply, barrier covers fork-to-last-frame.
struct IpcStats {
  std::uint64_t rounds = 0;
  std::uint64_t workers_forked = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t frames_received = 0;
  /// Worker -> coordinator result-frame envelope bytes.
  std::uint64_t result_wire_bytes = 0;
  /// Coordinator -> worker commit-frame envelope bytes.
  std::uint64_t commit_wire_bytes = 0;
  /// Store-delta payload bytes carried inside result frames.
  std::uint64_t store_delta_bytes = 0;
  /// Outbox fragment payload bytes carried inside result frames.
  std::uint64_t fragment_bytes = 0;
  double barrier_seconds = 0.0;
  double apply_seconds = 0.0;
};

class ProcBackend final : public mpc::RoundExecutor {
 public:
  void run_steps(const mpc::ClusterConfig& config,
                 std::vector<mpc::Machine>& machines,
                 std::vector<mpc::Outbox>& outboxes, const mpc::Step& step,
                 std::size_t round) override;

  void export_metrics(obs::Registry& registry) const override;

  const IpcStats& stats() const { return stats_; }

 private:
  IpcStats stats_;
  /// IpcOptions::kill_at_round fires once per executor (like a FaultPlan
  /// event), so a recovered run passes the previously-killed round.
  bool kill_fired_ = false;
};

}  // namespace mpte::ipc
