#include "ipc/frames.hpp"

#include <array>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/checksum.hpp"
#include "common/net.hpp"
#include "common/serialize.hpp"

namespace mpte::ipc {

namespace {

mpc::Buffer envelope(const Serializer& payload) {
  return mpc::Buffer(wrap_checksummed(payload.bytes()));
}

// Blob tags (see docs/ipc-transport.md "Blob encoding").
constexpr std::uint8_t kBlobInline = 0;  // u64 length + raw bytes follow
constexpr std::uint8_t kBlobArena = 1;   // u64 offset + u64 length in arena

void write_buffer(Serializer& s, const mpc::Buffer& buffer,
                  BlobArena* arena) {
  if (arena != nullptr && buffer.size() >= kArenaBlobMin &&
      arena->used + buffer.size() <= arena->capacity) {
    s.write(kBlobArena);
    s.write(static_cast<std::uint64_t>(arena->used));
    s.write(static_cast<std::uint64_t>(buffer.size()));
    std::memcpy(arena->base + arena->used, buffer.data(), buffer.size());
    arena->used += buffer.size();
    return;
  }
  s.write(kBlobInline);
  s.write_span(buffer.span());
}

mpc::Buffer read_buffer(Deserializer& d,
                        std::span<const std::uint8_t> arena) {
  const auto tag = d.read<std::uint8_t>();
  if (tag == kBlobInline) return mpc::Buffer(d.read_vector<std::uint8_t>());
  if (tag != kBlobArena) {
    throw MpteError("ipc frame: unknown blob tag " + std::to_string(tag));
  }
  const auto offset = d.read<std::uint64_t>();
  const auto length = d.read<std::uint64_t>();
  if (offset > arena.size() || length > arena.size() - offset) {
    throw MpteError("ipc frame: arena blob reference out of bounds");
  }
  // The one worker-side touch: arena bytes are copied out here and
  // nowhere else, so the frame survives the arena's next reset.
  return mpc::Buffer::copy_of(arena.subspan(offset, length));
}

Frame decode(std::span<const std::uint8_t> payload,
             std::span<const std::uint8_t> arena) {
  Deserializer d(payload);
  Frame frame;
  frame.kind = static_cast<FrameKind>(d.read<std::uint32_t>());
  switch (frame.kind) {
    case FrameKind::kCommit:
      frame.round = d.read<std::uint64_t>();
      return frame;
    case FrameKind::kError:
      frame.error.rank = d.read<mpc::MachineId>();
      frame.error.round = d.read<std::uint64_t>();
      frame.error.message = d.read_string();
      frame.round = frame.error.round;
      return frame;
    case FrameKind::kResult: {
      auto& result = frame.result;
      result.rank = d.read<mpc::MachineId>();
      result.round = d.read<std::uint64_t>();
      frame.round = result.round;
      const auto num_deltas = d.read<std::uint64_t>();
      result.store_delta.reserve(num_deltas);
      for (std::uint64_t i = 0; i < num_deltas; ++i) {
        StoreDelta delta;
        delta.key = d.read_string();
        delta.present = d.read<std::uint8_t>() != 0;
        if (delta.present) delta.blob = read_buffer(d, arena);
        result.store_delta.push_back(std::move(delta));
      }
      const auto num_dst = d.read<std::uint64_t>();
      result.fragments.resize(num_dst);
      for (std::uint64_t dst = 0; dst < num_dst; ++dst) {
        const auto num_fragments = d.read<std::uint64_t>();
        result.fragments[dst].reserve(num_fragments);
        for (std::uint64_t f = 0; f < num_fragments; ++f) {
          result.fragments[dst].push_back(read_buffer(d, arena));
        }
      }
      const auto num_channels = d.read<std::uint64_t>();
      for (std::uint64_t c = 0; c < num_channels; ++c) {
        std::string channel = d.read_string();
        result.channel_bytes[std::move(channel)] = d.read<std::uint64_t>();
      }
      return frame;
    }
    case FrameKind::kStep: {
      auto& step = frame.step;
      step.rank = d.read<mpc::MachineId>();
      step.round = d.read<std::uint64_t>();
      frame.round = step.round;
      step.step_name = d.read_string();
      step.step_params = read_buffer(d, arena);
      step.reset_store = d.read<std::uint8_t>() != 0;
      step.inject_kill = d.read<std::uint8_t>() != 0;
      const auto num_patch = d.read<std::uint64_t>();
      step.store_patch.reserve(num_patch);
      for (std::uint64_t i = 0; i < num_patch; ++i) {
        StoreDelta delta;
        delta.key = d.read_string();
        delta.present = d.read<std::uint8_t>() != 0;
        if (delta.present) delta.blob = read_buffer(d, arena);
        step.store_patch.push_back(std::move(delta));
      }
      const auto num_messages = d.read<std::uint64_t>();
      step.inbox.reserve(num_messages);
      for (std::uint64_t i = 0; i < num_messages; ++i) {
        mpc::Message message;
        message.from = d.read<mpc::MachineId>();
        message.payload = read_buffer(d, arena);
        step.inbox.push_back(std::move(message));
      }
      return frame;
    }
    case FrameKind::kShutdown:
      return frame;
  }
  throw MpteError("ipc frame: unknown kind " +
                  std::to_string(static_cast<std::uint32_t>(frame.kind)));
}

}  // namespace

mpc::Buffer encode_result(const ResultFrame& frame, BlobArena* arena) {
  Serializer s;
  s.write(static_cast<std::uint32_t>(FrameKind::kResult));
  s.write(frame.rank);
  s.write(frame.round);
  s.write(static_cast<std::uint64_t>(frame.store_delta.size()));
  for (const auto& delta : frame.store_delta) {
    s.write_string(delta.key);
    s.write(static_cast<std::uint8_t>(delta.present ? 1 : 0));
    if (delta.present) write_buffer(s, delta.blob, arena);
  }
  s.write(static_cast<std::uint64_t>(frame.fragments.size()));
  for (const auto& cell : frame.fragments) {
    s.write(static_cast<std::uint64_t>(cell.size()));
    for (const auto& fragment : cell) write_buffer(s, fragment, arena);
  }
  s.write(static_cast<std::uint64_t>(frame.channel_bytes.size()));
  for (const auto& [channel, bytes] : frame.channel_bytes) {
    s.write_string(channel);
    s.write(static_cast<std::uint64_t>(bytes));
  }
  return envelope(s);
}

mpc::Buffer encode_error(const ErrorFrame& frame) {
  Serializer s;
  s.write(static_cast<std::uint32_t>(FrameKind::kError));
  s.write(frame.rank);
  s.write(frame.round);
  s.write_string(frame.message);
  return envelope(s);
}

mpc::Buffer encode_commit(std::uint64_t round) {
  Serializer s;
  s.write(static_cast<std::uint32_t>(FrameKind::kCommit));
  s.write(round);
  return envelope(s);
}

mpc::Buffer encode_step(const StepFrame& frame, BlobArena* arena) {
  // Payload-size hint: sized up front so the hot path (one kStep per rank
  // per round) reallocates at most once even for large patches.
  std::size_t hint = 64 + frame.step_name.size() + frame.step_params.size();
  for (const auto& delta : frame.store_patch) {
    hint += 32 + delta.key.size() + delta.blob.size();
  }
  for (const auto& message : frame.inbox) {
    hint += 16 + message.payload.size();
  }
  Serializer s(hint);
  s.write(static_cast<std::uint32_t>(FrameKind::kStep));
  s.write(frame.rank);
  s.write(frame.round);
  s.write_string(frame.step_name);
  write_buffer(s, frame.step_params, arena);
  s.write(static_cast<std::uint8_t>(frame.reset_store ? 1 : 0));
  s.write(static_cast<std::uint8_t>(frame.inject_kill ? 1 : 0));
  s.write(static_cast<std::uint64_t>(frame.store_patch.size()));
  for (const auto& delta : frame.store_patch) {
    s.write_string(delta.key);
    s.write(static_cast<std::uint8_t>(delta.present ? 1 : 0));
    if (delta.present) write_buffer(s, delta.blob, arena);
  }
  s.write(static_cast<std::uint64_t>(frame.inbox.size()));
  for (const auto& message : frame.inbox) {
    s.write(message.from);
    write_buffer(s, message.payload, arena);
  }
  return envelope(s);
}

mpc::Buffer encode_shutdown() {
  Serializer s;
  s.write(static_cast<std::uint32_t>(FrameKind::kShutdown));
  return envelope(s);
}

Status write_frame(int fd, const mpc::Buffer& encoded) {
  return encoded.write_fd(fd);
}

Result<Frame> decode_envelope(std::span<const std::uint8_t> envelope,
                              std::span<const std::uint8_t> arena) {
  if (envelope.size() < kEnvelopeHeaderBytes + kEnvelopeTrailerBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "ipc frame: envelope shorter than header + digest");
  }
  const auto payload_size = envelope_payload_size(
      envelope.first(kEnvelopeHeaderBytes), "ipc frame header");
  if (!payload_size.ok()) return payload_size.status();
  if (envelope.size() !=
      kEnvelopeHeaderBytes + *payload_size + kEnvelopeTrailerBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "ipc frame: envelope size does not match header");
  }
  const auto payload = envelope.subspan(kEnvelopeHeaderBytes, *payload_size);
  std::uint64_t stored;
  std::memcpy(&stored, envelope.data() + kEnvelopeHeaderBytes + *payload_size,
              sizeof(stored));
  if (stored != fnv1a64(payload)) {
    return Status(StatusCode::kInvalidArgument,
                  "ipc frame: checksum mismatch");
  }
  try {
    Frame frame = decode(payload, arena);
    frame.wire_bytes = envelope.size();
    return frame;
  } catch (const MpteError& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInvalidArgument,
                  std::string("ipc frame: ") + e.what());
  }
}

Result<Frame> read_frame(int fd, int timeout_ms,
                         std::span<const std::uint8_t> arena) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                              : timeout_ms);
  const auto remaining_ms = [&]() -> int {
    if (timeout_ms < 0) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return static_cast<int>(std::max<std::int64_t>(0, left.count()));
  };

  std::array<std::uint8_t, kEnvelopeHeaderBytes> header;
  const Status got_header = net::recv_exact(fd, header, remaining_ms());
  if (!got_header.ok()) return got_header;
  const auto payload_size =
      envelope_payload_size(header, "ipc frame header");
  if (!payload_size.ok()) return payload_size.status();

  // Payload + trailing digest land in one slab — the single allocation
  // per frame that Buffer::from_fd exists for.
  const std::size_t body_size = *payload_size + kEnvelopeTrailerBytes;
  auto body = mpc::Buffer::from_fd(fd, body_size, remaining_ms());
  if (!body.ok()) return body.status();
  const std::span<const std::uint8_t> payload(body->data(), *payload_size);
  std::uint64_t stored;
  std::memcpy(&stored, body->data() + *payload_size, sizeof(stored));
  if (stored != fnv1a64(payload)) {
    return Status(StatusCode::kInvalidArgument,
                  "ipc frame: checksum mismatch");
  }
  try {
    Frame frame = decode(payload, arena);
    frame.wire_bytes = kEnvelopeHeaderBytes + body_size;
    return frame;
  } catch (const MpteError& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInvalidArgument,
                  std::string("ipc frame: ") + e.what());
  }
}

}  // namespace mpte::ipc
