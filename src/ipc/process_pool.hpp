// Worker pool for the multi-process MPC backend.
//
// spawn() creates one transport endpoint + forked child per rank. Every
// rank always gets a Unix-domain socketpair — the frame carrier under
// TransportKind::kSocketpair, and the fallback/liveness channel under
// kShmRing, where frames normally travel a pre-fork shared-memory ring
// pair (see shm_ring.hpp). The child inherits the coordinator's full
// pre-round state copy-on-write — that is how a host std::function Step
// crosses the process boundary without being serializable — runs the
// supplied entry function, and must _exit (never return: running atexit
// handlers or flushing inherited stdio in a forked child would corrupt
// the parent's world).
//
// The pool owns the parent-side fds, the shared-memory channels, and the
// pids. Its destructor SIGKILLs and reaps anything still running, so no
// code path — including exceptions thrown mid-round — can leak a zombie.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "ipc/shm_ring.hpp"
#include "mpc/machine.hpp"

namespace mpte::ipc {

class ProcessPool {
 public:
  /// Runs rank-side; must not return (call _exit). `transport` is the
  /// worker's end of its duplex channel, already bound to Side::kWorker.
  using WorkerMain =
      std::function<void(mpc::MachineId rank, Transport& transport)>;

  /// Forks `ranks` workers over `transport`-configured channels. On a
  /// failure the already-spawned workers are killed and kUnavailable is
  /// returned.
  static Result<ProcessPool> spawn(std::size_t ranks,
                                   const Transport::Config& transport,
                                   const WorkerMain& worker_main);

  ProcessPool(ProcessPool&& other) noexcept;
  ProcessPool& operator=(ProcessPool&& other) noexcept;
  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;
  ~ProcessPool();

  std::size_t size() const { return workers_.size(); }

  /// Coordinator-side endpoint of rank's channel.
  Transport& transport(mpc::MachineId rank) {
    return *workers_[rank].transport;
  }

  /// Coordinator-side fd of rank's socketpair (-1 once closed).
  int fd(mpc::MachineId rank) const { return workers_[rank].fd; }

  /// Non-blocking death check: true once rank's child has been reaped
  /// (here or earlier). Records the exit status.
  bool try_reap(mpc::MachineId rank);

  /// waitpid status of a reaped worker (meaningless before try_reap /
  /// join_all observed the exit).
  int exit_status(mpc::MachineId rank) const {
    return workers_[rank].exit_status;
  }

  /// SIGKILLs and reaps every remaining worker, closing all fds and
  /// waking any ring waiter.
  /// Idempotent; called by the destructor.
  void kill_all();

  /// Waits up to `timeout_ms` for every worker to exit on its own, then
  /// SIGKILLs stragglers. Always reaps everything; returns non-OK when
  /// any worker had to be killed or exited non-zero.
  Status join_all(int timeout_ms);

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    /// unique_ptr: the arena/ring views handed out by the Transport must
    /// stay address-stable while workers_ grows.
    std::unique_ptr<Transport> transport;
    bool reaped = false;
    int exit_status = 0;
  };

  ProcessPool() = default;

  std::vector<Worker> workers_;
};

}  // namespace mpte::ipc
