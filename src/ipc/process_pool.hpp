// Fork-per-round worker pool for the multi-process MPC backend.
//
// spawn() creates one Unix-domain socketpair + forked child per rank. The
// child inherits the coordinator's full pre-round state copy-on-write —
// that is how a host std::function Step crosses the process boundary
// without being serializable — runs the supplied entry function, and must
// _exit (never return: running atexit handlers or flushing inherited
// stdio in a forked child would corrupt the parent's world).
//
// The pool owns the parent-side fds and the pids. Its destructor
// SIGKILLs and reaps anything still running, so no code path — including
// exceptions thrown mid-round — can leak a zombie.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.hpp"
#include "mpc/machine.hpp"

namespace mpte::ipc {

class ProcessPool {
 public:
  /// Runs rank-side; must not return (call _exit). `fd` is the worker's
  /// end of its socketpair.
  using WorkerMain = std::function<void(mpc::MachineId rank, int fd)>;

  /// Forks `ranks` workers. On a fork failure the already-spawned workers
  /// are killed and kUnavailable is returned.
  static Result<ProcessPool> spawn(std::size_t ranks,
                                   const WorkerMain& worker_main);

  ProcessPool(ProcessPool&& other) noexcept;
  ProcessPool& operator=(ProcessPool&& other) noexcept;
  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;
  ~ProcessPool();

  std::size_t size() const { return workers_.size(); }

  /// Coordinator-side fd of rank's socketpair (-1 once closed).
  int fd(mpc::MachineId rank) const { return workers_[rank].fd; }

  /// Non-blocking death check: true once rank's child has been reaped
  /// (here or earlier). Records the exit status.
  bool try_reap(mpc::MachineId rank);

  /// waitpid status of a reaped worker (meaningless before try_reap /
  /// join_all observed the exit).
  int exit_status(mpc::MachineId rank) const {
    return workers_[rank].exit_status;
  }

  /// SIGKILLs and reaps every remaining worker, closing all fds.
  /// Idempotent; called by the destructor.
  void kill_all();

  /// Waits up to `timeout_ms` for every worker to exit on its own, then
  /// SIGKILLs stragglers. Always reaps everything; returns non-OK when
  /// any worker had to be killed or exited non-zero.
  Status join_all(int timeout_ms);

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool reaped = false;
    int exit_status = 0;
  };

  ProcessPool() = default;

  std::vector<Worker> workers_;
};

}  // namespace mpte::ipc
