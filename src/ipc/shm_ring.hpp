// Shared-memory ring transport for the multi-process MPC backend.
//
// One ShmChannel per worker, carved out of a single pre-fork ShmRegion:
//
//   ChannelMeta | RingHeader (c->w) | RingHeader (w->c)
//   | ring data  (c->w) | ring data  (w->c)
//   | blob arena (c->w) | blob arena (w->c)
//
// Each direction is one fixed-capacity SPSC byte ring: a producer-owned
// free-running tail index, a consumer-owned head index, and a 32-bit
// futex word per index that the advancing side bumps and wakes. Waiters
// spin briefly (kSpinIterations) before parking on the futex in bounded
// slices; between slices they poll the rank's retained socketpair fd, so
// a SIGKILLed peer — which can never set the `closed` flag — still
// surfaces as POLLHUP within one slice. Frames cross the ring as a u64
// length marker followed by the standard checksummed frames.hpp
// envelope; a marker of 0 announces that this frame was too large for
// the ring and travels on the socketpair instead (counted, order
// preserved). Large blobs ride the per-direction arena by (offset,
// length) reference — see frames.hpp BlobArena.
//
// The Transport class at the bottom is the seam ProcessPool/ProcBackend
// program against: the same send_frame/recv_frame surface whether the
// substrate is a bare socketpair or a ring+arena channel.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/shm.hpp"
#include "ipc/frames.hpp"

namespace mpte::ipc {

/// Monotonic transport counters, exported as mpte_ipc_* metrics. They
/// live in the shared ChannelMeta/RingHeader so whichever side performs
/// the action records it; the coordinator drains deltas per round.
struct RingCounters {
  /// Frame writes that wrapped past the end of the ring buffer.
  std::uint64_t wraps = 0;
  /// Blocking episodes where a producer found the ring full.
  std::uint64_t full_waits = 0;
  /// Bytes moved through rings and arenas (both directions).
  std::uint64_t shm_bytes = 0;
  /// Frames that exceeded ring capacity and fell back to the socketpair.
  std::uint64_t fallback_frames = 0;

  RingCounters& operator+=(const RingCounters& o) {
    wraps += o.wraps;
    full_waits += o.full_waits;
    shm_bytes += o.shm_bytes;
    fallback_frames += o.fallback_frames;
    return *this;
  }
};

/// Shared-memory control block of one SPSC byte ring. Producer and
/// consumer fields sit on separate cache lines; indices are free-running
/// (never wrapped), so `tail - head` is the exact byte occupancy.
struct alignas(64) RingHeader {
  /// Producer cursor: total bytes ever written.
  std::atomic<std::uint64_t> tail{0};
  /// Futex word bumped on every tail advance (consumer parks on it).
  std::atomic<std::uint32_t> tail_seq{0};
  /// Set (seq_cst) by the producer around its futex park so the consumer
  /// can skip the wake syscall when nobody is listening.
  std::atomic<std::uint32_t> writer_waiting{0};
  std::atomic<std::uint64_t> wraps{0};
  std::atomic<std::uint64_t> bytes{0};
  /// Consumer cursor: total bytes ever read.
  alignas(64) std::atomic<std::uint64_t> head{0};
  /// Futex word bumped on every head advance (producer parks on it).
  std::atomic<std::uint32_t> head_seq{0};
  /// Consumer's park flag, mirror of writer_waiting.
  std::atomic<std::uint32_t> reader_waiting{0};
  std::atomic<std::uint64_t> full_waits{0};
  /// Either side sets this to end the conversation; both futexes are
  /// woken. Readers may drain what remains; writers fail immediately.
  alignas(64) std::atomic<std::uint32_t> closed{0};
};

/// A view over one SPSC ring (header + data) inside a shared region.
/// Exactly one producer process calls write() and exactly one consumer
/// process calls read(); the header's atomics carry the synchronization.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(RingHeader* header, std::uint8_t* data, std::size_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Copies all of `bytes` into the ring, consuming free space as it
  /// appears (chunked, so writes larger than the current free space — up
  /// to any size — stream through while the consumer drains). Blocks
  /// with spin-then-futex waits. `peer_fd` (>= 0) is polled for
  /// POLLHUP/POLLERR between futex slices; `timeout_ms` < 0 blocks
  /// indefinitely. kUnavailable once the ring is closed or the peer
  /// died; kDeadlineExceeded past the budget.
  Status write(std::span<const std::uint8_t> bytes, int peer_fd,
               int timeout_ms);

  /// Fills all of `out` from the ring, draining data as it appears.
  /// Same blocking/failure contract as write(); a closed ring may still
  /// be drained until empty.
  Status read(std::span<std::uint8_t> out, int peer_fd, int timeout_ms);

  /// Bytes currently readable.
  std::size_t readable() const {
    return static_cast<std::size_t>(
        header_->tail.load(std::memory_order_acquire) -
        header_->head.load(std::memory_order_acquire));
  }

  /// Marks the ring closed and wakes both sides.
  void close();
  bool closed() const {
    return header_->closed.load(std::memory_order_acquire) != 0;
  }

  RingHeader* header() const { return header_; }

 private:
  RingHeader* header_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Which end of a channel this process is. The coordinator produces on
/// the c->w ring and consumes w->c; a worker is the mirror image.
enum class Side : std::uint8_t { kCoordinator = 0, kWorker = 1 };

/// One coordinator<->worker duplex channel: two rings + two blob arenas
/// in one ShmRegion, created before fork so both processes inherit the
/// mapping. bind() fixes which end this process is and attaches the
/// rank's socketpair fd (fallback path + liveness probe).
class ShmChannel {
 public:
  struct Config {
    /// Data capacity of each ring, rounded up to a power of two.
    std::size_t ring_bytes = 1u << 20;
    /// Capacity of each blob arena.
    std::size_t arena_bytes = 4u << 20;
  };

  static Result<ShmChannel> create(const Config& config);

  ShmChannel() = default;
  ShmChannel(ShmChannel&&) = default;
  ShmChannel& operator=(ShmChannel&&) = default;

  void bind(Side side, int fd);

  /// Largest encoded frame that fits on the ring (marker excluded).
  std::size_t max_ring_frame() const;

  /// Sends one encoded frame: ring when it fits, socketpair (announced
  /// by a 0 marker, so per-channel frame order is preserved) when not.
  Status send_frame(const mpc::Buffer& encoded, int timeout_ms = -1);

  /// Receives and decodes one frame, resolving arena blob references
  /// against the peer's send arena. Codes as read_frame.
  Result<Frame> recv_frame(int timeout_ms);

  /// The arena frames we *send* may reference. Resets it — callers
  /// encode at most one frame per arena reset, which the alternating
  /// request/response protocol guarantees (see file comment).
  BlobArena* encode_arena();

  /// Closes both rings and wakes any waiter (ours or the peer's).
  void close();

  /// Counter deltas since the last drain. Sums both rings plus the
  /// channel-level arena/fallback counters; call from one side only
  /// (the coordinator) for coherent totals.
  RingCounters drain_counters();

  /// Test hooks: the raw rings in each direction for this side.
  ShmRing& send_ring();
  ShmRing& recv_ring();

  int fd() const { return fd_; }
  Side side() const { return side_; }

 private:
  struct Meta;

  ShmRegion region_;
  Meta* meta_ = nullptr;
  ShmRing to_worker_;
  ShmRing to_coordinator_;
  std::uint8_t* arena_to_worker_ = nullptr;
  std::uint8_t* arena_to_coordinator_ = nullptr;
  std::size_t arena_capacity_ = 0;
  BlobArena send_arena_{};
  Side side_ = Side::kCoordinator;
  int fd_ = -1;
  RingCounters drained_{};
};

/// Transport substrate selector (mirrors mpc::IpcOptions::Transport,
/// which is the user-facing knob; ProcBackend maps one to the other).
enum class TransportKind : std::uint8_t { kSocketpair = 0, kShmRing = 1 };

/// The seam between ProcessPool/ProcBackend and the byte substrate. A
/// Transport is created coordinator-side before fork (so any shared
/// mapping is inherited), then bound to a side + socketpair fd on each
/// side after fork. Frames produced/consumed through it are identical in
/// decoded content on either substrate — only the carrier differs.
class Transport {
 public:
  struct Config {
    TransportKind kind = TransportKind::kShmRing;
    std::size_t ring_bytes = 1u << 20;
    std::size_t arena_bytes = 4u << 20;
  };

  static Result<Transport> create(const Config& config);

  Transport() = default;
  Transport(Transport&&) = default;
  Transport& operator=(Transport&&) = default;

  void bind(Side side, int fd);

  TransportKind kind() const { return kind_; }
  int fd() const { return channel_ ? channel_->fd() : fd_; }

  Status send_frame(const mpc::Buffer& encoded);
  Result<Frame> recv_frame(int timeout_ms);

  /// Arena for the next frame this side encodes; nullptr on socketpair
  /// (blobs inline). Resets the arena — one encode per call.
  BlobArena* encode_arena();

  /// Wakes any ring waiter; no-op on socketpair.
  void shutdown_channel();

  /// Ring/arena counter deltas since the last drain (zeros on
  /// socketpair). Coordinator-side only.
  RingCounters drain_counters();

 private:
  TransportKind kind_ = TransportKind::kSocketpair;
  int fd_ = -1;
  /// unique_ptr keeps the channel's ring views stable across moves of
  /// the Transport itself (ProcessPool stores workers in a vector).
  std::unique_ptr<ShmChannel> channel_;
};

}  // namespace mpte::ipc
