#include "ipc/process_pool.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace mpte::ipc {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Result<ProcessPool> ProcessPool::spawn(std::size_t ranks,
                                       const Transport::Config& transport,
                                       const WorkerMain& worker_main) {
  ProcessPool pool;
  pool.workers_.resize(ranks);
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      const Status status(StatusCode::kUnavailable,
                          std::string("socketpair: ") +
                              std::strerror(errno));
      pool.kill_all();
      return status;
    }
    // The transport (and any shared-memory channel inside it) must exist
    // *before* fork so both processes inherit the same mapping.
    auto endpoint = Transport::create(transport);
    if (!endpoint.ok()) {
      ::close(sv[0]);
      ::close(sv[1]);
      pool.kill_all();
      return endpoint.status();
    }
    pool.workers_[rank].transport =
        std::make_unique<Transport>(std::move(*endpoint));
    const pid_t pid = ::fork();
    if (pid < 0) {
      const Status status(StatusCode::kUnavailable,
                          std::string("fork: ") + std::strerror(errno));
      ::close(sv[0]);
      ::close(sv[1]);
      pool.kill_all();
      return status;
    }
    if (pid == 0) {
      // Child: keep only this rank's worker end. The coordinator ends of
      // every socketpair forked so far must go, or a sibling's EOF-based
      // death detection would hang on our copy of its fd.
      ::close(sv[0]);
      for (std::size_t earlier = 0; earlier < rank; ++earlier) {
        ::close(pool.workers_[earlier].fd);
      }
      Transport& mine = *pool.workers_[rank].transport;
      mine.bind(Side::kWorker, sv[1]);
      worker_main(static_cast<mpc::MachineId>(rank), mine);
      _exit(0);  // worker_main should _exit itself; this is the backstop
    }
    ::close(sv[1]);
    pool.workers_[rank].pid = pid;
    pool.workers_[rank].fd = sv[0];
    pool.workers_[rank].transport->bind(Side::kCoordinator, sv[0]);
  }
  return pool;
}

ProcessPool::ProcessPool(ProcessPool&& other) noexcept
    : workers_(std::move(other.workers_)) {
  other.workers_.clear();
}

ProcessPool& ProcessPool::operator=(ProcessPool&& other) noexcept {
  if (this != &other) {
    kill_all();
    workers_ = std::move(other.workers_);
    other.workers_.clear();
  }
  return *this;
}

ProcessPool::~ProcessPool() { kill_all(); }

bool ProcessPool::try_reap(mpc::MachineId rank) {
  Worker& worker = workers_[rank];
  if (worker.reaped) return true;
  if (worker.pid < 0) return false;
  int status = 0;
  const pid_t done = ::waitpid(worker.pid, &status, WNOHANG);
  if (done == worker.pid) {
    worker.reaped = true;
    worker.exit_status = status;
    return true;
  }
  return false;
}

void ProcessPool::kill_all() {
  for (Worker& worker : workers_) {
    close_fd(worker.fd);
    if (worker.transport) worker.transport->shutdown_channel();
    if (worker.pid < 0 || worker.reaped) continue;
    ::kill(worker.pid, SIGKILL);
    int status = 0;
    pid_t done;
    do {
      done = ::waitpid(worker.pid, &status, 0);
    } while (done < 0 && errno == EINTR);
    worker.reaped = true;
    worker.exit_status = status;
  }
}

Status ProcessPool::join_all(int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  bool all_reaped = false;
  while (!all_reaped && Clock::now() < deadline) {
    all_reaped = true;
    for (std::size_t rank = 0; rank < workers_.size(); ++rank) {
      if (!try_reap(static_cast<mpc::MachineId>(rank))) all_reaped = false;
    }
    if (!all_reaped) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::size_t killed = 0;
  std::size_t failed = 0;
  for (Worker& worker : workers_) {
    if (!worker.reaped && worker.pid >= 0) ++killed;
  }
  kill_all();  // stragglers die here; also closes every fd
  for (const Worker& worker : workers_) {
    if (worker.pid >= 0 &&
        !(WIFEXITED(worker.exit_status) &&
          WEXITSTATUS(worker.exit_status) == 0)) {
      ++failed;
    }
  }
  if (killed > 0 || failed > 0) {
    return Status(StatusCode::kInternal,
                  "join_all: " + std::to_string(killed) + " workers killed, " +
                      std::to_string(failed) + " exited non-zero");
  }
  return Status::Ok();
}

}  // namespace mpte::ipc
