#include "ipc/proc_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <utility>

#include "common/parallel.hpp"
#include "ipc/frames.hpp"
#include "ipc/process_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/arena.hpp"

namespace mpte::ipc {

namespace {

const char* cause_name(WorkerLost::Cause cause) {
  switch (cause) {
    case WorkerLost::Cause::kDied:
      return "died";
    case WorkerLost::Cause::kDeadline:
      return "deadline";
    case WorkerLost::Cause::kProtocol:
      return "protocol";
  }
  return "unknown";
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rank-side body of one round. Never returns: the child ships its result
/// (or the step's error), waits for the coordinator's commit — the round
/// barrier — and _exits without running static destructors or flushing
/// stdio inherited from the coordinator.
[[noreturn]] void worker_main(std::vector<mpc::Machine>& machines,
                              std::vector<mpc::Outbox>& outboxes,
                              const mpc::Step& step, std::size_t round,
                              bool inject_kill, mpc::MachineId rank,
                              int fd) {
  // The fork copied the coordinator's thread-pool bookkeeping but none of
  // its threads; force the serial path so parallel_for never touches the
  // pool (degree-1 dispatch runs inline).
  par::set_default_threads(1);
  if (inject_kill) _exit(9);  // IpcOptions kill: vanish without a frame
  try {
    const std::size_t m = machines.size();
    machines[rank].store.clear_dirty();
    {
      simd::ScratchScope scratch_scope;
      mpc::MachineContext ctx(rank, m, machines[rank], outboxes[rank]);
      step(ctx);
    }
    ResultFrame frame;
    frame.rank = rank;
    frame.round = round;
    const mpc::LocalStore& store = machines[rank].store;
    for (const std::string& key : store.dirty_keys()) {
      StoreDelta delta;
      delta.key = key;
      delta.present = store.contains(key);
      if (delta.present) delta.blob = store.blob(key);
      frame.store_delta.push_back(std::move(delta));
    }
    frame.fragments = std::move(outboxes[rank].fragments);
    frame.channel_bytes = std::move(outboxes[rank].channel_bytes);
    if (!write_frame(fd, encode_result(frame)).ok()) _exit(2);
    // Barrier: hold until the coordinator commits the round (or dies —
    // either way the reply read ends) so it can still reach us if the
    // round has to be aborted.
    (void)read_frame(fd, -1);
    _exit(0);
  } catch (const std::exception& e) {
    ErrorFrame error;
    error.rank = rank;
    error.round = round;
    error.message = e.what();
    (void)write_frame(fd, encode_error(error));
    _exit(1);
  } catch (...) {
    _exit(3);
  }
}

/// Human-readable waitpid status for WorkerLost details.
std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "stopped (waitpid status " + std::to_string(status) + ")";
}

}  // namespace

WorkerLost::WorkerLost(mpc::MachineId rank, std::size_t round, Cause cause,
                       const std::string& detail)
    : RankCrashed(rank, round,
                  "worker " + std::to_string(rank) + " lost in round " +
                      std::to_string(round) + " (" + cause_name(cause) +
                      "): " + detail),
      cause_(cause) {}

void ProcBackend::run_steps(const mpc::ClusterConfig& config,
                            std::vector<mpc::Machine>& machines,
                            std::vector<mpc::Outbox>& outboxes,
                            const mpc::Step& step, std::size_t round) {
  const std::size_t m = machines.size();
  const obs::Span span("ipc", "round/steps", "round", round);
  // Per-round deltas: only keys this round's step touches cross the wire.
  for (auto& machine : machines) machine.store.clear_dirty();

  const bool inject_kill =
      !kill_fired_ && config.ipc.kill_at_round >= 0 &&
      static_cast<std::uint64_t>(config.ipc.kill_at_round) == round;
  if (inject_kill) kill_fired_ = true;

  auto spawned = ProcessPool::spawn(
      m, [&](mpc::MachineId rank, int fd) {
        worker_main(machines, outboxes, step, round,
                    inject_kill && rank == config.ipc.kill_rank, rank, fd);
      });
  if (!spawned.ok()) {
    throw MpteError("ipc: " + spawned.status().to_string());
  }
  ProcessPool pool = std::move(*spawned);
  ++stats_.rounds;
  stats_.workers_forked += m;

  // Barrier: one result (or error) frame per rank, bounded by the round
  // deadline. Any failure kills the remaining workers (the pool reaps
  // them — no zombies) and surfaces as a typed WorkerLost *before* any
  // state was mutated, so a checkpointed run can retry the round.
  const Clock::time_point barrier_start = Clock::now();
  const Clock::time_point deadline =
      barrier_start + std::chrono::milliseconds(config.ipc.round_deadline_ms);
  std::vector<Frame> frames;
  frames.reserve(m);
  {
    const obs::Span barrier_span("ipc", "round/barrier", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      auto frame = read_frame(
          pool.fd(rank),
          static_cast<int>(std::max<std::int64_t>(0, remaining.count())));
      if (!frame.ok()) {
        ++stats_.workers_lost;
        WorkerLost::Cause cause = WorkerLost::Cause::kDied;
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          cause = WorkerLost::Cause::kDeadline;
        } else if (frame.status().code() == StatusCode::kInvalidArgument) {
          cause = WorkerLost::Cause::kProtocol;
        }
        std::string detail = frame.status().message();
        if (pool.try_reap(rank)) {
          detail += "; worker " + describe_exit(pool.exit_status(rank));
        }
        pool.kill_all();
        throw WorkerLost(rank, round, cause, detail);
      }
      ++stats_.frames_received;
      stats_.result_wire_bytes += frame->wire_bytes;
      frames.push_back(std::move(*frame));
    }
  }
  stats_.barrier_seconds += seconds_since(barrier_start);

  // Validate before mutating anything. A step exception propagates like
  // the in-process backend's: the lowest rank's error wins (serial order).
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    const Frame& frame = frames[rank];
    if (frame.kind == FrameKind::kError) {
      pool.kill_all();
      throw MpteError(frames[rank].error.message);
    }
    if (frame.kind != FrameKind::kResult || frame.result.rank != rank ||
        frame.result.round != round ||
        frame.result.fragments.size() != m) {
      ++stats_.workers_lost;
      pool.kill_all();
      throw WorkerLost(rank, round, WorkerLost::Cause::kProtocol,
                       "result frame does not match (rank, round, M)");
    }
  }

  // Apply: the coordinator's state becomes the post-step state. From here
  // run_round's shared audit/delivery path takes over.
  const Clock::time_point apply_start = Clock::now();
  {
    const obs::Span apply_span("ipc", "round/apply", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      ResultFrame& result = frames[rank].result;
      for (StoreDelta& delta : result.store_delta) {
        stats_.store_delta_bytes += delta.blob.size();
        if (delta.present) {
          machines[rank].store.set_blob(delta.key, std::move(delta.blob));
        } else {
          machines[rank].store.erase(delta.key);
        }
      }
      for (const auto& cell : result.fragments) {
        for (const auto& fragment : cell) {
          stats_.fragment_bytes += fragment.size();
        }
      }
      outboxes[rank].fragments = std::move(result.fragments);
      outboxes[rank].channel_bytes = std::move(result.channel_bytes);
    }
  }
  stats_.apply_seconds += seconds_since(apply_start);

  // Release the barrier and reap. A worker that died *after* its result
  // frame cannot hurt the round (its data is already applied); join_all
  // reaps it regardless, so no path leaks a child.
  const mpc::Buffer commit = encode_commit(round);
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    if (write_frame(pool.fd(rank), commit).ok()) {
      stats_.commit_wire_bytes += commit.size();
    }
  }
  (void)pool.join_all(config.ipc.round_deadline_ms);
}

void ProcBackend::export_metrics(obs::Registry& registry) const {
  const auto c = [&](const std::string& name, const std::string& help,
                     std::uint64_t value) {
    registry.counter(name, help).set(value);
  };
  c("mpte_ipc_rounds_total", "Rounds executed by the multi-process backend.",
    stats_.rounds);
  c("mpte_ipc_workers_forked_total", "Worker processes forked.",
    stats_.workers_forked);
  c("mpte_ipc_workers_lost_total",
    "Workers lost mid-round (died, deadline, or protocol).",
    stats_.workers_lost);
  c("mpte_ipc_frames_received_total", "Result frames received.",
    stats_.frames_received);
  c("mpte_ipc_result_wire_bytes_total",
    "Worker-to-coordinator result frame bytes on the wire.",
    stats_.result_wire_bytes);
  c("mpte_ipc_commit_wire_bytes_total",
    "Coordinator-to-worker commit frame bytes on the wire.",
    stats_.commit_wire_bytes);
  c("mpte_ipc_store_delta_bytes_total",
    "Store-delta payload bytes shipped inside result frames.",
    stats_.store_delta_bytes);
  c("mpte_ipc_fragment_bytes_total",
    "Outbox fragment payload bytes shipped inside result frames.",
    stats_.fragment_bytes);
  registry
      .gauge("mpte_ipc_barrier_seconds",
             "Cumulative fork-to-last-frame barrier time.")
      .set(stats_.barrier_seconds);
  registry
      .gauge("mpte_ipc_apply_seconds",
             "Cumulative time applying store deltas and outboxes.")
      .set(stats_.apply_seconds);
}

}  // namespace mpte::ipc

namespace mpte::mpc {

std::unique_ptr<RoundExecutor> make_multiprocess_executor() {
  return std::make_unique<ipc::ProcBackend>();
}

}  // namespace mpte::mpc
