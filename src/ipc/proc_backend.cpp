#include "ipc/proc_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <functional>
#include <utility>

#include "common/parallel.hpp"
#include "ipc/frames.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "mpc/step.hpp"

namespace mpte::ipc {

namespace {

const char* cause_name(WorkerLost::Cause cause) {
  switch (cause) {
    case WorkerLost::Cause::kDied:
      return "died";
    case WorkerLost::Cause::kDeadline:
      return "deadline";
    case WorkerLost::Cause::kProtocol:
      return "protocol";
  }
  return "unknown";
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The rank's post-step result: its store delta (dirty keys, sorted) plus
/// its captured outbox. Shared by both worker modes, so the delta a
/// persistent worker ships is byte-identical to a forked worker's.
ResultFrame build_result(mpc::MachineId rank, std::size_t round,
                         const mpc::Machine& machine, mpc::Outbox& outbox) {
  ResultFrame frame;
  frame.rank = rank;
  frame.round = round;
  const mpc::LocalStore& store = machine.store;
  for (const std::string& key : store.dirty_keys()) {
    StoreDelta delta;
    delta.key = key;
    delta.present = store.contains(key);
    if (delta.present) delta.blob = store.blob(key);
    frame.store_delta.push_back(std::move(delta));
  }
  frame.fragments = std::move(outbox.fragments);
  frame.channel_bytes = std::move(outbox.channel_bytes);
  return frame;
}

/// Rank-side body of one fork-per-round worker. Never returns: the child
/// ships its result (or the step's error), waits for the coordinator's
/// commit — the round barrier — and _exits without running static
/// destructors or flushing stdio inherited from the coordinator.
[[noreturn]] void worker_main(std::vector<mpc::Machine>& machines,
                              std::vector<mpc::Outbox>& outboxes,
                              const mpc::Step& step, std::size_t round,
                              bool inject_kill, mpc::MachineId rank,
                              Transport& transport) {
  // The fork copied the coordinator's thread-pool bookkeeping but none of
  // its threads; force the serial path so parallel_for never touches the
  // pool (degree-1 dispatch runs inline).
  par::set_default_threads(1);
  if (inject_kill) _exit(9);  // IpcOptions kill: vanish without a frame
  try {
    const std::size_t m = machines.size();
    machines[rank].store.clear_dirty();
    mpc::execute_rank_step(rank, m, machines[rank], outboxes[rank], step);
    const ResultFrame frame =
        build_result(rank, round, machines[rank], outboxes[rank]);
    const mpc::Buffer encoded =
        encode_result(frame, transport.encode_arena());
    if (!transport.send_frame(encoded).ok()) _exit(2);
    // Barrier: hold until the coordinator commits the round (or dies —
    // either way the reply read ends) so it can still reach us if the
    // round has to be aborted.
    (void)transport.recv_frame(-1);
    _exit(0);
  } catch (const std::exception& e) {
    ErrorFrame error;
    error.rank = rank;
    error.round = round;
    error.message = e.what();
    (void)transport.send_frame(encode_error(error));
    _exit(1);
  } catch (...) {
    _exit(3);
  }
}

/// Rank-side loop of one persistent worker. The Machine (store + inbox)
/// lives here across rounds; each kStep patches it, runs the registered
/// step, and answers with the dirty-key result delta. The next kStep is
/// the implicit commit; EOF (coordinator teardown or exit) or kShutdown
/// ends the loop. A step exception answers kError and keeps looping —
/// the coordinator decides whether the pool lives on.
[[noreturn]] void persistent_worker_main(std::size_t m, mpc::MachineId rank,
                                         Transport& transport) {
  par::set_default_threads(1);
  mpc::Machine machine;
  mpc::Outbox outbox;
  outbox.fragments.resize(m);
  for (;;) {
    auto frame = transport.recv_frame(-1);
    if (!frame.ok()) _exit(0);  // coordinator closed our channel: clean end
    if (frame->kind == FrameKind::kShutdown) _exit(0);
    if (frame->kind != FrameKind::kStep) _exit(4);
    StepFrame& step = frame->step;
    if (step.inject_kill) _exit(9);  // IpcOptions kill: vanish mid-round
    try {
      if (step.reset_store) machine.store.clear();
      for (StoreDelta& delta : step.store_patch) {
        if (delta.present) {
          machine.store.set_blob(delta.key, std::move(delta.blob));
        } else {
          machine.store.erase(delta.key);
        }
      }
      machine.inbox = std::move(step.inbox);
      // Per-round deltas: only keys this step touches go back up.
      machine.store.clear_dirty();
      for (auto& cell : outbox.fragments) cell.clear();
      outbox.channel_bytes.clear();
      const mpc::Step body = mpc::StepRegistry::global().instantiate(
          step.step_name, step.step_params.span());
      mpc::execute_rank_step(rank, m, machine, outbox, body);
      ResultFrame result = build_result(rank, step.round, machine, outbox);
      const mpc::Buffer encoded =
          encode_result(result, transport.encode_arena());
      if (!transport.send_frame(encoded).ok()) _exit(2);
      outbox.fragments.assign(m, {});  // moved out by build_result
    } catch (const std::exception& e) {
      ErrorFrame error;
      error.rank = rank;
      error.round = step.round;
      error.message = e.what();
      if (!transport.send_frame(encode_error(error)).ok()) _exit(1);
      // Our resident store may hold a half-executed step now; the
      // coordinator tears the pool down on kError, so the next read EOFs.
    } catch (...) {
      _exit(3);
    }
  }
}

/// IpcOptions -> per-pool transport configuration.
Transport::Config transport_config(const mpc::ClusterConfig& config) {
  Transport::Config transport;
  transport.kind =
      config.ipc.transport == mpc::IpcOptions::Transport::kShmRing
          ? TransportKind::kShmRing
          : TransportKind::kSocketpair;
  transport.ring_bytes = config.ipc.shm_ring_bytes;
  transport.arena_bytes = config.ipc.shm_arena_bytes;
  return transport;
}

/// Folds every rank's ring/arena counter deltas into the stats. The
/// counters live in the shared channel headers, so this captures
/// worker-side activity too — and stays valid after the children died,
/// as long as the pool (and with it the mapping) is alive.
void drain_pool_counters(ProcessPool& pool, IpcStats& stats) {
  for (mpc::MachineId rank = 0; rank < pool.size(); ++rank) {
    const RingCounters delta = pool.transport(rank).drain_counters();
    stats.ring_wraps += delta.wraps;
    stats.ring_full_waits += delta.full_waits;
    stats.shm_bytes += delta.shm_bytes;
    stats.fallback_frames += delta.fallback_frames;
  }
}

/// Human-readable waitpid status for WorkerLost details.
std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "stopped (waitpid status " + std::to_string(status) + ")";
}

}  // namespace

WorkerLost::WorkerLost(mpc::MachineId rank, std::size_t round, Cause cause,
                       const std::string& detail)
    : RankCrashed(rank, round,
                  "worker " + std::to_string(rank) + " lost in round " +
                      std::to_string(round) + " (" + cause_name(cause) +
                      "): " + detail),
      cause_(cause) {}

ProcBackend::~ProcBackend() {
  if (!pool_) return;
  // Graceful end-of-life: ask every live worker to _exit(0), then join.
  // Workers blocked in read_frame see either the kShutdown or the EOF
  // when the pool closes fds; the pool destructor SIGKILLs stragglers.
  const mpc::Buffer shutdown = encode_shutdown();
  for (mpc::MachineId rank = 0; rank < pool_->size(); ++rank) {
    (void)pool_->transport(rank).send_frame(shutdown);
  }
  (void)pool_->join_all(1000);
  drain_pool_counters(*pool_, stats_);
  pool_.reset();
}

void ProcBackend::teardown_pool() {
  if (pool_) {
    pool_->kill_all();
    drain_pool_counters(*pool_, stats_);
    pool_.reset();
  }
  synced_.assign(synced_.size(), false);
}

void ProcBackend::invalidate_workers() { teardown_pool(); }

void ProcBackend::run_steps(const mpc::ClusterConfig& config,
                            std::vector<mpc::Machine>& machines,
                            std::vector<mpc::Outbox>& outboxes,
                            const mpc::StepSpec& spec, std::size_t round) {
  const bool persistent =
      config.ipc.workers == mpc::IpcOptions::WorkerMode::kPersistent;
  if (persistent && spec.named()) {
    run_persistent_round(config, machines, outboxes, spec, round);
    return;
  }
  // A hosted closure cannot be shipped to a long-lived worker; execute it
  // the pre-persistent way (fork inherits the closure copy-on-write). A
  // live persistent pool just stays blocked in its frame read meanwhile —
  // the coordinator's dirty keys accumulate this round's results, so the
  // next kStep patches them across.
  if (persistent) ++stats_.fallback_rounds;
  run_fork_round(config, machines, outboxes, spec, round);
}

void ProcBackend::run_fork_round(const mpc::ClusterConfig& config,
                                 std::vector<mpc::Machine>& machines,
                                 std::vector<mpc::Outbox>& outboxes,
                                 const mpc::StepSpec& spec,
                                 std::size_t round) {
  const std::size_t m = machines.size();
  const obs::Span span("ipc",
                       spec.named() ? "round/steps/" + spec.name
                                    : std::string("round/steps"),
                       "round", round);
  const mpc::Step step = mpc::resolve_step(spec);

  const bool inject_kill =
      !kill_fired_ && config.ipc.kill_at_round >= 0 &&
      static_cast<std::uint64_t>(config.ipc.kill_at_round) == round;
  if (inject_kill) kill_fired_ = true;

  auto spawned = ProcessPool::spawn(
      m, transport_config(config),
      [&](mpc::MachineId rank, Transport& transport) {
        worker_main(machines, outboxes, step, round,
                    inject_kill && rank == config.ipc.kill_rank, rank,
                    transport);
      });
  if (!spawned.ok()) {
    throw MpteError("ipc: " + spawned.status().to_string());
  }
  ProcessPool pool = std::move(*spawned);
  ++stats_.rounds;
  if (spec.named()) ++stats_.step_rounds[spec.name];
  stats_.workers_forked += m;

  // Barrier: one result (or error) frame per rank, bounded by the round
  // deadline. Any failure kills the remaining workers (the pool reaps
  // them — no zombies) and surfaces as a typed WorkerLost *before* any
  // state was mutated, so a checkpointed run can retry the round.
  const Clock::time_point barrier_start = Clock::now();
  const Clock::time_point deadline =
      barrier_start + std::chrono::milliseconds(config.ipc.round_deadline_ms);
  std::vector<Frame> frames;
  frames.reserve(m);
  {
    const obs::Span barrier_span("ipc", "round/barrier", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      auto frame = pool.transport(rank).recv_frame(
          static_cast<int>(std::max<std::int64_t>(0, remaining.count())));
      if (!frame.ok()) {
        ++stats_.workers_lost;
        WorkerLost::Cause cause = WorkerLost::Cause::kDied;
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          cause = WorkerLost::Cause::kDeadline;
        } else if (frame.status().code() == StatusCode::kInvalidArgument) {
          cause = WorkerLost::Cause::kProtocol;
        }
        std::string detail = frame.status().message();
        if (pool.try_reap(rank)) {
          detail += "; worker " + describe_exit(pool.exit_status(rank));
        }
        pool.kill_all();
        drain_pool_counters(pool, stats_);
        throw WorkerLost(rank, round, cause, detail);
      }
      ++stats_.frames_received;
      stats_.result_wire_bytes += frame->wire_bytes;
      frames.push_back(std::move(*frame));
    }
  }
  stats_.barrier_seconds += seconds_since(barrier_start);

  // Validate before mutating anything. A step exception propagates like
  // the in-process backend's: the lowest rank's error wins (serial order).
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    const Frame& frame = frames[rank];
    if (frame.kind == FrameKind::kError) {
      pool.kill_all();
      drain_pool_counters(pool, stats_);
      throw MpteError(frames[rank].error.message);
    }
    if (frame.kind != FrameKind::kResult || frame.result.rank != rank ||
        frame.result.round != round ||
        frame.result.fragments.size() != m) {
      ++stats_.workers_lost;
      pool.kill_all();
      drain_pool_counters(pool, stats_);
      throw WorkerLost(rank, round, WorkerLost::Cause::kProtocol,
                       "result frame does not match (rank, round, M)");
    }
  }

  // Apply: the coordinator's state becomes the post-step state. From here
  // run_round's shared audit/delivery path takes over. The applied keys
  // stay dirty coordinator-side — a resident persistent pool (fallback
  // round) has not seen them yet and needs them in its next patch.
  const Clock::time_point apply_start = Clock::now();
  {
    const obs::Span apply_span("ipc", "round/apply", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      ResultFrame& result = frames[rank].result;
      for (StoreDelta& delta : result.store_delta) {
        stats_.store_delta_bytes += delta.blob.size();
        if (delta.present) {
          machines[rank].store.set_blob(delta.key, std::move(delta.blob));
        } else {
          machines[rank].store.erase(delta.key);
        }
      }
      for (const auto& cell : result.fragments) {
        for (const auto& fragment : cell) {
          stats_.fragment_bytes += fragment.size();
        }
      }
      outboxes[rank].fragments = std::move(result.fragments);
      outboxes[rank].channel_bytes = std::move(result.channel_bytes);
    }
  }
  stats_.apply_seconds += seconds_since(apply_start);

  // Release the barrier and reap. A worker that died *after* its result
  // frame cannot hurt the round (its data is already applied); join_all
  // reaps it regardless, so no path leaks a child.
  const mpc::Buffer commit = encode_commit(round);
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    if (pool.transport(rank).send_frame(commit).ok()) {
      stats_.commit_wire_bytes += commit.size();
    }
  }
  (void)pool.join_all(config.ipc.round_deadline_ms);
  drain_pool_counters(pool, stats_);
}

void ProcBackend::run_persistent_round(const mpc::ClusterConfig& config,
                                       std::vector<mpc::Machine>& machines,
                                       std::vector<mpc::Outbox>& outboxes,
                                       const mpc::StepSpec& spec,
                                       std::size_t round) {
  const std::size_t m = machines.size();
  const obs::Span span("ipc", "round/steps/" + spec.name, "round", round);

  if (!pool_) {
    auto spawned = ProcessPool::spawn(
        m, transport_config(config),
        [m](mpc::MachineId rank, Transport& transport) {
          persistent_worker_main(m, rank, transport);
        });
    if (!spawned.ok()) {
      throw MpteError("ipc: " + spawned.status().to_string());
    }
    pool_.emplace(std::move(*spawned));
    stats_.workers_forked += m;
    if (ever_spawned_) stats_.workers_respawned += m;
    ever_spawned_ = true;
    synced_.assign(m, false);
  }
  ++stats_.rounds;
  ++stats_.step_rounds[spec.name];

  const bool inject_kill =
      !kill_fired_ && config.ipc.kill_at_round >= 0 &&
      static_cast<std::uint64_t>(config.ipc.kill_at_round) == round;
  if (inject_kill) kill_fired_ = true;

  const Clock::time_point barrier_start = Clock::now();
  const Clock::time_point deadline =
      barrier_start + std::chrono::milliseconds(config.ipc.round_deadline_ms);

  // Ship one kStep per rank: the spec, the store patch (full resync for
  // an unsynced worker; dirty keys — host writes since the last kStep,
  // fallback-round results — otherwise), and the delivered inbox. Inbox
  // Buffers are slab-shared with the coordinator's machines; only the
  // wire serialization copies.
  const mpc::Buffer params_wire(spec.params);
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    StepFrame step;
    step.rank = rank;
    step.round = round;
    step.step_name = spec.name;
    step.step_params = params_wire;
    step.inject_kill = inject_kill && rank == config.ipc.kill_rank;
    mpc::LocalStore& store = machines[rank].store;
    if (!synced_[rank]) {
      step.reset_store = true;
      ++stats_.store_resyncs;
      for (const auto& [key, blob] : store.entries()) {
        step.store_patch.push_back(StoreDelta{key, true, blob});
      }
    } else {
      for (const std::string& key : store.dirty_keys()) {
        StoreDelta delta;
        delta.key = key;
        delta.present = store.contains(key);
        if (delta.present) delta.blob = store.blob(key);
        step.store_patch.push_back(std::move(delta));
      }
    }
    for (const auto& delta : step.store_patch) {
      stats_.store_patch_bytes += delta.blob.size();
    }
    step.inbox = machines[rank].inbox;
    const mpc::Buffer encoded =
        encode_step(step, pool_->transport(rank).encode_arena());
    if (!pool_->transport(rank).send_frame(encoded).ok()) {
      ++stats_.workers_lost;
      std::string detail = "step frame write failed";
      if (pool_->try_reap(rank)) {
        detail += "; worker " + describe_exit(pool_->exit_status(rank));
      }
      teardown_pool();
      throw WorkerLost(rank, round, WorkerLost::Cause::kDied, detail);
    }
    ++stats_.step_frames_sent;
    stats_.step_wire_bytes += encoded.size();
    // The worker now holds everything the coordinator does for this rank.
    // (If the round fails below, teardown_pool marks it unsynced again.)
    store.clear_dirty();
    synced_[rank] = true;
  }

  // Barrier: one result (or error) frame per rank, bounded by the round
  // deadline — identical failure taxonomy to fork mode, plus whole-pool
  // teardown so the next round respawns + resyncs.
  std::vector<Frame> frames;
  frames.reserve(m);
  {
    const obs::Span barrier_span("ipc", "round/barrier", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      auto frame = pool_->transport(rank).recv_frame(
          static_cast<int>(std::max<std::int64_t>(0, remaining.count())));
      if (!frame.ok()) {
        ++stats_.workers_lost;
        WorkerLost::Cause cause = WorkerLost::Cause::kDied;
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          cause = WorkerLost::Cause::kDeadline;
        } else if (frame.status().code() == StatusCode::kInvalidArgument) {
          cause = WorkerLost::Cause::kProtocol;
        }
        std::string detail = frame.status().message();
        if (pool_->try_reap(rank)) {
          detail += "; worker " + describe_exit(pool_->exit_status(rank));
        }
        teardown_pool();
        throw WorkerLost(rank, round, cause, detail);
      }
      ++stats_.frames_received;
      stats_.result_wire_bytes += frame->wire_bytes;
      frames.push_back(std::move(*frame));
    }
  }
  stats_.barrier_seconds += seconds_since(barrier_start);

  // Validate before mutating anything. On kError the worker's resident
  // store may hold a half-executed step, so the pool goes down with the
  // round; the coordinator's own state is untouched either way.
  for (mpc::MachineId rank = 0; rank < m; ++rank) {
    const Frame& frame = frames[rank];
    if (frame.kind == FrameKind::kError) {
      teardown_pool();
      throw MpteError(frames[rank].error.message);
    }
    if (frame.kind != FrameKind::kResult || frame.result.rank != rank ||
        frame.result.round != round ||
        frame.result.fragments.size() != m) {
      ++stats_.workers_lost;
      teardown_pool();
      throw WorkerLost(rank, round, WorkerLost::Cause::kProtocol,
                       "result frame does not match (rank, round, M)");
    }
  }

  // Apply, then clear the applied keys' dirty marks: the worker computed
  // these values itself, so its resident store already agrees — the next
  // patch need not echo them back.
  const Clock::time_point apply_start = Clock::now();
  {
    const obs::Span apply_span("ipc", "round/apply", "round", round);
    for (mpc::MachineId rank = 0; rank < m; ++rank) {
      ResultFrame& result = frames[rank].result;
      for (StoreDelta& delta : result.store_delta) {
        stats_.store_delta_bytes += delta.blob.size();
        if (delta.present) {
          machines[rank].store.set_blob(delta.key, std::move(delta.blob));
        } else {
          machines[rank].store.erase(delta.key);
        }
      }
      for (const auto& cell : result.fragments) {
        for (const auto& fragment : cell) {
          stats_.fragment_bytes += fragment.size();
        }
      }
      outboxes[rank].fragments = std::move(result.fragments);
      outboxes[rank].channel_bytes = std::move(result.channel_bytes);
      machines[rank].store.clear_dirty();
    }
  }
  stats_.apply_seconds += seconds_since(apply_start);
  drain_pool_counters(*pool_, stats_);
  // No commit frame: each worker is already blocked reading its next
  // kStep, which is the implicit commit of this one.
}

void ProcBackend::export_metrics(obs::Registry& registry) const {
  const auto c = [&](const std::string& name, const std::string& help,
                     std::uint64_t value) {
    registry.counter(name, help).set(value);
  };
  c("mpte_ipc_rounds_total", "Rounds executed by the multi-process backend.",
    stats_.rounds);
  c("mpte_ipc_workers_forked_total", "Worker processes forked.",
    stats_.workers_forked);
  c("mpte_ipc_workers_lost_total",
    "Workers lost mid-round (died, deadline, or protocol).",
    stats_.workers_lost);
  c("mpte_ipc_frames_received_total", "Result frames received.",
    stats_.frames_received);
  c("mpte_ipc_result_wire_bytes_total",
    "Worker-to-coordinator result frame bytes on the wire.",
    stats_.result_wire_bytes);
  c("mpte_ipc_commit_wire_bytes_total",
    "Coordinator-to-worker commit frame bytes on the wire (fork mode).",
    stats_.commit_wire_bytes);
  c("mpte_ipc_store_delta_bytes_total",
    "Store-delta payload bytes shipped inside result frames.",
    stats_.store_delta_bytes);
  c("mpte_ipc_fragment_bytes_total",
    "Outbox fragment payload bytes shipped inside result frames.",
    stats_.fragment_bytes);
  c("mpte_ipc_step_frames_sent_total",
    "kStep frames shipped to persistent workers.", stats_.step_frames_sent);
  c("mpte_ipc_step_wire_bytes_total",
    "Coordinator-to-worker kStep frame bytes on the wire.",
    stats_.step_wire_bytes);
  c("mpte_ipc_store_patch_bytes_total",
    "Store-patch payload bytes shipped inside kStep frames.",
    stats_.store_patch_bytes);
  c("mpte_ipc_workers_respawned_total",
    "Persistent workers forked again after a pool teardown.",
    stats_.workers_respawned);
  c("mpte_ipc_store_resyncs_total",
    "Full store resyncs shipped to (re)spawned persistent workers.",
    stats_.store_resyncs);
  c("mpte_ipc_fallback_rounds_total",
    "Rounds that fell back to fork-per-round (hosted closure spec).",
    stats_.fallback_rounds);
  c("mpte_ipc_ring_wraps_total",
    "Shared-memory ring writes that wrapped past the buffer end.",
    stats_.ring_wraps);
  c("mpte_ipc_ring_full_waits_total",
    "Producer blocking episodes on a full shared-memory ring.",
    stats_.ring_full_waits);
  c("mpte_ipc_shm_bytes_total",
    "Bytes moved through shared-memory rings and blob arenas.",
    stats_.shm_bytes);
  c("mpte_ipc_fallback_frames_total",
    "Frames that exceeded ring capacity and fell back to the socketpair.",
    stats_.fallback_frames);
  for (const auto& [step, rounds] : stats_.step_rounds) {
    registry
        .counter("mpte_ipc_step_rounds_total",
                 "Rounds executed per registered step name.",
                 {{"step", step}})
        .set(rounds);
  }
  registry
      .gauge("mpte_ipc_barrier_seconds",
             "Cumulative provision-to-last-frame barrier time.")
      .set(stats_.barrier_seconds);
  registry
      .gauge("mpte_ipc_apply_seconds",
             "Cumulative time applying store deltas and outboxes.")
      .set(stats_.apply_seconds);
}

}  // namespace mpte::ipc

namespace mpte::mpc {

std::unique_ptr<RoundExecutor> make_multiprocess_executor() {
  return std::make_unique<ipc::ProcBackend>();
}

}  // namespace mpte::mpc
