// Wire frames for the multi-process MPC backend.
//
// Every frame on a coordinator<->worker socketpair is the common/checksum
// envelope applied to a Serializer payload:
//
//   u32 magic "FVMP" | u32 version | u64 payload_size
//   payload (starts with a u32 FrameKind)
//   u64 FNV-1a(payload)
//
// — the exact byte layout snapshots and trees use on disk, so one
// integrity path covers files and sockets. A reader pulls the fixed
// 16-byte prefix, learns the payload size, then receives payload+digest
// in a single Buffer::from_fd allocation and verifies the digest.
//
// Blobs (store deltas/patches, outbox fragments, inbox payloads) are
// tagged: inline (length + bytes) or an (offset, length) reference into
// a shared-memory BlobArena when the frame travels next to one — see
// docs/ipc-transport.md for the full grammar.
//
// Frame kinds, by worker mode. Fork-per-round: the worker sends exactly
// one kResult (its store delta + outbox) or one kError (its step threw),
// then blocks until the coordinator's kCommit releases it — that reply is
// the round barrier. Persistent: the coordinator sends one kStep per
// round (the named StepSpec, a store patch, and the rank's delivered
// inbox); the worker answers kResult/kError and loops straight back into
// a blocking read — the *next* kStep is the implicit commit, and a
// kShutdown (or plain EOF when the pool dies) ends the worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mpc/buffer.hpp"
#include "mpc/machine.hpp"

namespace mpte::ipc {

enum class FrameKind : std::uint32_t {
  /// Worker -> coordinator: the rank's post-step store delta + outbox.
  kResult = 1,
  /// Coordinator -> worker: the round is committed; the worker may exit.
  kCommit = 2,
  /// Worker -> coordinator: the step threw; the payload is the message.
  kError = 3,
  /// Coordinator -> persistent worker: execute one round (named step +
  /// store patch + delivered inbox).
  kStep = 4,
  /// Coordinator -> persistent worker: exit cleanly.
  kShutdown = 5,
};

/// One store mutation observed during a step: `key` now maps to `blob`
/// (present) or was erased (!present).
struct StoreDelta {
  std::string key;
  bool present = false;
  mpc::Buffer blob;
};

/// Everything the coordinator needs from one worker to finish the round.
struct ResultFrame {
  mpc::MachineId rank = 0;
  std::uint64_t round = 0;
  /// Sorted by key (LocalStore::dirty_keys order) — deterministic bytes.
  std::vector<StoreDelta> store_delta;
  /// fragments[dst] = payloads queued to dst, in send order.
  std::vector<std::vector<mpc::Buffer>> fragments;
  std::map<std::string, std::size_t> channel_bytes;
};

struct ErrorFrame {
  mpc::MachineId rank = 0;
  std::uint64_t round = 0;
  std::string message;
};

/// Coordinator -> persistent worker: everything one rank needs to run one
/// round. The worker's store survives between rounds, so `store_patch`
/// carries only what changed coordinator-side since the last kStep this
/// worker saw (host-side writes, fork-fallback rounds) — or, with
/// `reset_store`, a full resync after (re)spawn.
struct StepFrame {
  mpc::MachineId rank = 0;
  std::uint64_t round = 0;
  /// Registered step name; resolved in the worker via StepRegistry.
  std::string step_name;
  /// Serialized parameters for the registered factory.
  mpc::Buffer step_params;
  /// Clear the worker's resident store before applying `store_patch`
  /// (the patch is then the coordinator's full authoritative store).
  bool reset_store = false;
  /// Test-only fault injection: _exit before executing the step.
  bool inject_kill = false;
  /// Sorted by key — deterministic bytes.
  std::vector<StoreDelta> store_patch;
  /// The rank's delivered inbox for this round, in source-rank order.
  std::vector<mpc::Message> inbox;
};

/// A decoded frame; `kind` selects which member is meaningful.
struct Frame {
  FrameKind kind = FrameKind::kCommit;
  std::uint64_t round = 0;
  ResultFrame result;
  ErrorFrame error;
  StepFrame step;
  /// Total envelope bytes this frame occupied on the wire.
  std::size_t wire_bytes = 0;
};

/// A bump region for large blob payloads, used by the shared-memory
/// transport. When an encoder is handed an arena, blobs of at least
/// kArenaBlobMin bytes are memcpy'd into it and the frame carries only
/// (offset, length) — the decoder on the other side reads them straight
/// out of the same shared pages. A blob that does not fit falls back to
/// inline bytes, so the arena never truncates anything.
///
/// The arena has no allocator state beyond `used`: the transport resets
/// it to 0 before each frame encode, which is safe because the frame
/// protocol is strict request/response alternation — by the time a side
/// encodes its next frame, the peer has fully consumed the previous one
/// (the round barrier is the proof; see docs/ipc-transport.md).
struct BlobArena {
  std::uint8_t* base = nullptr;
  std::size_t capacity = 0;
  std::size_t used = 0;

  void reset() { used = 0; }
};

/// Blobs below this size are always inlined — the (offset, length)
/// indirection costs more than the copy for tiny payloads.
inline constexpr std::size_t kArenaBlobMin = 256;

/// Encoders: `arena` is optional; nullptr inlines every blob (the
/// socketpair wire format). Frames with no blob payloads (commit, error,
/// shutdown) have no arena parameter.
mpc::Buffer encode_result(const ResultFrame& frame,
                          BlobArena* arena = nullptr);
mpc::Buffer encode_error(const ErrorFrame& frame);
mpc::Buffer encode_commit(std::uint64_t round);
mpc::Buffer encode_step(const StepFrame& frame, BlobArena* arena = nullptr);
mpc::Buffer encode_shutdown();

/// Writes one encoded frame to `fd`.
Status write_frame(int fd, const mpc::Buffer& encoded);

/// Validates and decodes one complete envelope (header + payload +
/// digest) already in memory — the shared-memory ring path. `arena` must
/// cover the sender's blob arena when the frame may carry arena
/// references; blob bytes are copied out (Buffer::copy_of), so the frame
/// outlives the arena's next reset. kInvalidArgument for a bad header,
/// digest mismatch, malformed payload, or an arena reference that falls
/// outside `arena`.
Result<Frame> decode_envelope(std::span<const std::uint8_t> envelope,
                              std::span<const std::uint8_t> arena = {});

/// Reads and validates one frame. `timeout_ms` bounds the whole read
/// (prefix + payload + digest); < 0 blocks indefinitely. `arena` as in
/// decode_envelope (a frame that fell back to the socketpair may still
/// reference arena blobs — the arena is shared memory regardless of
/// which descriptor carried the frame). Codes: kDeadlineExceeded past
/// the budget, kUnavailable when the peer closed, kInvalidArgument for
/// bytes that are not a well-formed frame.
Result<Frame> read_frame(int fd, int timeout_ms,
                         std::span<const std::uint8_t> arena = {});

}  // namespace mpte::ipc
