// CSV import/export for point sets — the interchange format of the CLI
// tool and the easiest way to feed external data into the library.
//
// Format: one point per line, coordinates separated by commas (optional
// spaces tolerated). No header. All rows must have the same width.
#pragma once

#include <iosfwd>
#include <string>

#include "geometry/point_set.hpp"

namespace mpte {

/// Parses CSV text into a point set; throws MpteError on ragged rows or
/// unparsable numbers. Empty lines are skipped.
PointSet read_csv_points(std::istream& in);

/// Reads a CSV file; throws MpteError if the file cannot be opened.
PointSet read_csv_points_file(const std::string& path);

/// Writes points as CSV with full round-trip precision.
void write_csv_points(const PointSet& points, std::ostream& out);

/// Writes a CSV file; throws MpteError on I/O failure.
void write_csv_points_file(const PointSet& points, const std::string& path);

}  // namespace mpte
