// Dense point sets in R^d.
//
// A PointSet stores n points of dimension d contiguously (row-major), the
// layout every stage of the pipeline consumes: the FJLT multiplies columns
// of the d×n data matrix (= rows here), the partitioners slice coordinate
// buckets out of rows, and the MPC driver serializes row ranges to machines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpte {

/// n points in R^d stored row-major in one contiguous buffer.
class PointSet {
 public:
  PointSet() = default;

  /// Creates n zero points of dimension d.
  PointSet(std::size_t n, std::size_t dim);

  /// Adopts an existing row-major buffer; data.size() must equal n * dim.
  PointSet(std::size_t n, std::size_t dim, std::vector<double> data);

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  /// Row view of point i.
  std::span<const double> operator[](std::size_t i) const {
    return {data_.data() + i * dim_, dim_};
  }
  std::span<double> operator[](std::size_t i) {
    return {data_.data() + i * dim_, dim_};
  }

  double coord(std::size_t i, std::size_t j) const {
    return data_[i * dim_ + j];
  }
  double& coord(std::size_t i, std::size_t j) { return data_[i * dim_ + j]; }

  const std::vector<double>& raw() const { return data_; }
  std::vector<double>& raw() { return data_; }

  /// Appends one point; p.size() must equal dim() (or sets dim if empty).
  void push_back(std::span<const double> p);

  /// Returns the subset of rows given by `indices` (in that order).
  PointSet select(std::span<const std::size_t> indices) const;

  /// Projects every point onto the coordinate range [begin, end), the
  /// "bucket" operation of hybrid partitioning (Definition 3).
  PointSet project(std::size_t begin, std::size_t end) const;

  /// Returns a copy padded with zero coordinates up to new_dim >= dim().
  /// Used to make d divisible by r (footnote 3) and to pad to a power of
  /// two for the Walsh–Hadamard transform.
  PointSet pad_dims(std::size_t new_dim) const;

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equal-length coordinate spans.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance.
double l2_distance_squared(std::span<const double> a,
                           std::span<const double> b);

/// Euclidean norm of a coordinate span.
double l2_norm(std::span<const double> a);

/// Minimum and maximum over all pairwise distances (O(n^2); intended for
/// test/bench-scale inputs). Returns {0, 0} if fewer than two points.
struct DistanceExtremes {
  double min;
  double max;
};
DistanceExtremes pairwise_distance_extremes(const PointSet& points);

/// Aspect ratio: max pairwise distance / min pairwise distance. Returns 1
/// for fewer than two distinct points. Requires no duplicate points.
double aspect_ratio(const PointSet& points);

}  // namespace mpte
