// Quantization to the integer grid [Delta]^d.
//
// Theorems 1–2 state their bounds for P ⊆ [Delta]^d with integer
// coordinates: the minimum interpoint distance is then >= 1, so the
// hierarchy bottoms out after log2(Delta) + O(1) halvings. Real-valued
// inputs are mapped onto that grid by an affine snap whose rounding error
// is bounded relative to the minimum pairwise distance.
#pragma once

#include <cstdint>

#include "geometry/point_set.hpp"

namespace mpte {

/// Result of quantizing a real point set onto the integer grid.
struct Quantized {
  /// Points with coordinates in {1, ..., delta} (stored as doubles for
  /// pipeline uniformity; values are exact integers).
  PointSet points;
  /// The grid extent Delta actually used.
  std::uint64_t delta;
  /// Multiply a tree/grid distance by this to return to input units.
  double scale_back;
  /// Largest per-coordinate rounding displacement, in input units.
  double max_rounding_error;
};

/// Affinely maps `points` into [1, delta]^d, rounding coordinates to
/// integers: x -> round((x - lo) / cell) + 1 where cell = width / (delta-1).
/// Requires delta >= 2 and at least one point.
Quantized quantize_to_grid(const PointSet& points, std::uint64_t delta);

/// Chooses Delta so that the quantization perturbs every pairwise distance
/// by at most a (1 +- eps) factor: Delta ~ width * sqrt(d) / (eps * d_min),
/// clamped to [2, max_delta]. O(n^2) (computes the distance extremes).
std::uint64_t recommended_delta(const PointSet& points, double eps,
                                std::uint64_t max_delta);

}  // namespace mpte
