// Axis-aligned bounding boxes.
//
// The hierarchical partitioners start from a bounding box B over the data
// (Section 1.2): its width fixes the top-level scale w_0 and anchors the
// random grid shifts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point_set.hpp"

namespace mpte {

/// Axis-aligned box given by per-dimension [lo, hi] intervals.
class BoundingBox {
 public:
  BoundingBox() = default;
  BoundingBox(std::vector<double> lo, std::vector<double> hi);

  /// Tight bounding box of a nonempty point set.
  static BoundingBox of(const PointSet& points);

  std::size_t dim() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

  /// Largest side length over all dimensions (the "width" of B).
  double width() const;

  /// Euclidean length of the main diagonal — an upper bound on the diameter
  /// of any subset of the box.
  double diagonal() const;

  /// True iff p lies inside the box (inclusive).
  bool contains(std::span<const double> p) const;

  /// Grows every side by `margin` on both ends.
  BoundingBox expanded(double margin) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace mpte
