#include "geometry/bounding_box.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/status.hpp"

namespace mpte {

BoundingBox::BoundingBox(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.size() != hi_.size()) {
    throw MpteError("BoundingBox: lo/hi dimension mismatch");
  }
  for (std::size_t j = 0; j < lo_.size(); ++j) {
    if (lo_[j] > hi_[j]) {
      throw MpteError("BoundingBox: lo > hi in some dimension");
    }
  }
}

BoundingBox BoundingBox::of(const PointSet& points) {
  if (points.empty()) {
    throw MpteError("BoundingBox::of: empty point set");
  }
  std::vector<double> lo(points.dim()), hi(points.dim());
  const auto first = points[0];
  for (std::size_t j = 0; j < points.dim(); ++j) lo[j] = hi[j] = first[j];
  for (std::size_t i = 1; i < points.size(); ++i) {
    const auto p = points[i];
    for (std::size_t j = 0; j < points.dim(); ++j) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }
  return BoundingBox(std::move(lo), std::move(hi));
}

double BoundingBox::width() const {
  double w = 0.0;
  for (std::size_t j = 0; j < dim(); ++j) w = std::max(w, hi_[j] - lo_[j]);
  return w;
}

double BoundingBox::diagonal() const {
  double sum = 0.0;
  for (std::size_t j = 0; j < dim(); ++j) {
    const double side = hi_[j] - lo_[j];
    sum += side * side;
  }
  return std::sqrt(sum);
}

bool BoundingBox::contains(std::span<const double> p) const {
  assert(p.size() == dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    if (p[j] < lo_[j] || p[j] > hi_[j]) return false;
  }
  return true;
}

BoundingBox BoundingBox::expanded(double margin) const {
  std::vector<double> lo = lo_, hi = hi_;
  for (std::size_t j = 0; j < dim(); ++j) {
    lo[j] -= margin;
    hi[j] += margin;
  }
  return BoundingBox(std::move(lo), std::move(hi));
}

}  // namespace mpte
