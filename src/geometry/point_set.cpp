#include "geometry/point_set.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "common/status.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

PointSet::PointSet(std::size_t n, std::size_t dim)
    : n_(n), dim_(dim), data_(n * dim, 0.0) {}

PointSet::PointSet(std::size_t n, std::size_t dim, std::vector<double> data)
    : n_(n), dim_(dim), data_(std::move(data)) {
  if (data_.size() != n_ * dim_) {
    throw MpteError("PointSet: buffer size does not match n * dim");
  }
}

void PointSet::push_back(std::span<const double> p) {
  if (n_ == 0 && dim_ == 0) {
    dim_ = p.size();
  }
  if (p.size() != dim_) {
    throw MpteError("PointSet::push_back: dimension mismatch");
  }
  data_.insert(data_.end(), p.begin(), p.end());
  ++n_;
}

PointSet PointSet::select(std::span<const std::size_t> indices) const {
  PointSet out(indices.size(), dim_);
  for (std::size_t row = 0; row < indices.size(); ++row) {
    assert(indices[row] < n_);
    const auto src = (*this)[indices[row]];
    std::copy(src.begin(), src.end(), out[row].begin());
  }
  return out;
}

PointSet PointSet::project(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= dim_);
  PointSet out(n_, end - begin);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* src = data_.data() + i * dim_;
    std::copy(src + begin, src + end, out[i].begin());
  }
  return out;
}

PointSet PointSet::pad_dims(std::size_t new_dim) const {
  assert(new_dim >= dim_);
  PointSet out(n_, new_dim);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto src = (*this)[i];
    std::copy(src.begin(), src.end(), out[i].begin());
  }
  return out;
}

double l2_distance_squared(std::span<const double> a,
                           std::span<const double> b) {
  assert(a.size() == b.size());
  return simd::ops().l2sq(a.data(), b.data(), a.size());
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(l2_distance_squared(a, b));
}

double l2_norm(std::span<const double> a) {
  return std::sqrt(simd::ops().sumsq(a.data(), a.size()));
}

DistanceExtremes pairwise_distance_extremes(const PointSet& points) {
  DistanceExtremes out{0.0, 0.0};
  const std::size_t n = points.size();
  if (n < 2) return out;
  // Each chunk owns a contiguous range of "first" indices i and scans the
  // full upper triangle rows it owns; min/max are exact under any merge
  // order, and merging per-chunk extremes in chunk order keeps the scan
  // deterministic at every thread count anyway. (Rows shrink with i, so
  // chunks are uneven — acceptable for the test/bench-scale inputs this
  // is documented for.)
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(par::resolve_threads(0), n - 1));
  std::vector<double> mins(chunks, std::numeric_limits<double>::infinity());
  std::vector<double> maxs(chunks, 0.0);
  par::parallel_for_chunked(
      0, n - 1, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        const simd::Ops& ops = simd::ops();
        double lo = std::numeric_limits<double>::infinity();
        double hi = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const auto pi = points[i];
          for (std::size_t j = i + 1; j < n; ++j) {
            const auto pj = points[j];
            const double d2 = ops.l2sq(pi.data(), pj.data(), pi.size());
            lo = std::min(lo, d2);
            hi = std::max(hi, d2);
          }
        }
        mins[chunk] = lo;
        maxs[chunk] = hi;
      });
  double min_sq = std::numeric_limits<double>::infinity();
  double max_sq = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    min_sq = std::min(min_sq, mins[c]);
    max_sq = std::max(max_sq, maxs[c]);
  }
  out.min = std::sqrt(min_sq);
  out.max = std::sqrt(max_sq);
  return out;
}

double aspect_ratio(const PointSet& points) {
  const auto ext = pairwise_distance_extremes(points);
  if (ext.max == 0.0) return 1.0;
  if (ext.min == 0.0) {
    throw MpteError("aspect_ratio: duplicate points (min distance 0)");
  }
  return ext.max / ext.min;
}

}  // namespace mpte
