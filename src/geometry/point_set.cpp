#include "geometry/point_set.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/status.hpp"

namespace mpte {

PointSet::PointSet(std::size_t n, std::size_t dim)
    : n_(n), dim_(dim), data_(n * dim, 0.0) {}

PointSet::PointSet(std::size_t n, std::size_t dim, std::vector<double> data)
    : n_(n), dim_(dim), data_(std::move(data)) {
  if (data_.size() != n_ * dim_) {
    throw MpteError("PointSet: buffer size does not match n * dim");
  }
}

void PointSet::push_back(std::span<const double> p) {
  if (n_ == 0 && dim_ == 0) {
    dim_ = p.size();
  }
  if (p.size() != dim_) {
    throw MpteError("PointSet::push_back: dimension mismatch");
  }
  data_.insert(data_.end(), p.begin(), p.end());
  ++n_;
}

PointSet PointSet::select(std::span<const std::size_t> indices) const {
  PointSet out(indices.size(), dim_);
  for (std::size_t row = 0; row < indices.size(); ++row) {
    assert(indices[row] < n_);
    const auto src = (*this)[indices[row]];
    auto dst = out[row];
    for (std::size_t j = 0; j < dim_; ++j) dst[j] = src[j];
  }
  return out;
}

PointSet PointSet::project(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= dim_);
  PointSet out(n_, end - begin);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto src = (*this)[i];
    auto dst = out[i];
    for (std::size_t j = begin; j < end; ++j) dst[j - begin] = src[j];
  }
  return out;
}

PointSet PointSet::pad_dims(std::size_t new_dim) const {
  assert(new_dim >= dim_);
  PointSet out(n_, new_dim);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto src = (*this)[i];
    auto dst = out[i];
    for (std::size_t j = 0; j < dim_; ++j) dst[j] = src[j];
  }
  return out;
}

double l2_distance_squared(std::span<const double> a,
                           std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(l2_distance_squared(a, b));
}

double l2_norm(std::span<const double> a) {
  double sum = 0.0;
  for (const double x : a) sum += x * x;
  return std::sqrt(sum);
}

DistanceExtremes pairwise_distance_extremes(const PointSet& points) {
  DistanceExtremes out{0.0, 0.0};
  if (points.size() < 2) return out;
  out.min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double d = l2_distance(points[i], points[j]);
      out.min = std::min(out.min, d);
      out.max = std::max(out.max, d);
    }
  }
  return out;
}

double aspect_ratio(const PointSet& points) {
  const auto ext = pairwise_distance_extremes(points);
  if (ext.max == 0.0) return 1.0;
  if (ext.min == 0.0) {
    throw MpteError("aspect_ratio: duplicate points (min distance 0)");
  }
  return ext.max / ext.min;
}

}  // namespace mpte
