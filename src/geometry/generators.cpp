#include "geometry/generators.hpp"

#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace mpte {

PointSet generate_uniform_cube(std::size_t n, std::size_t dim, double side,
                               std::uint64_t seed) {
  Rng rng(seed);
  PointSet points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto p = points[i];
    for (std::size_t j = 0; j < dim; ++j) p[j] = rng.uniform(0.0, side);
  }
  return points;
}

PointSet generate_gaussian_clusters(std::size_t n, std::size_t dim,
                                    std::size_t clusters, double side,
                                    double stddev, std::uint64_t seed) {
  assert(clusters >= 1);
  Rng rng(seed);
  PointSet centers(clusters, dim);
  for (std::size_t c = 0; c < clusters; ++c) {
    auto p = centers[c];
    for (std::size_t j = 0; j < dim; ++j) p[j] = rng.uniform(0.0, side);
  }
  PointSet points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto center = centers[rng.uniform_u64(clusters)];
    auto p = points[i];
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.normal(center[j], stddev);
    }
  }
  return points;
}

PointSet generate_subspace(std::size_t n, std::size_t dim,
                           std::size_t intrinsic_dim, double side,
                           double noise_stddev, std::uint64_t seed) {
  assert(intrinsic_dim >= 1 && intrinsic_dim <= dim);
  Rng rng(seed);
  // Random basis: intrinsic_dim Gaussian directions, normalized. Not
  // orthogonalized — a random linear map preserves "low intrinsic
  // dimension", which is all the generator promises.
  std::vector<double> basis(intrinsic_dim * dim);
  for (std::size_t b = 0; b < intrinsic_dim; ++b) {
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      const double g = rng.normal();
      basis[b * dim + j] = g;
      norm_sq += g * g;
    }
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (std::size_t j = 0; j < dim; ++j) basis[b * dim + j] *= inv;
  }
  PointSet points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto p = points[i];
    for (std::size_t b = 0; b < intrinsic_dim; ++b) {
      const double coeff = rng.uniform(0.0, side);
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += coeff * basis[b * dim + j];
      }
    }
    if (noise_stddev > 0.0) {
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += rng.normal(0.0, noise_stddev);
      }
    }
  }
  return points;
}

PointSet generate_lattice(std::size_t n, std::size_t dim, double step) {
  // Walk the lattice in row-major order: the k-th point has coordinates
  // given by the base-s digits of k where s = ceil(n^{1/dim}).
  const auto span = static_cast<std::size_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 / static_cast<double>(dim))));
  const std::size_t base = std::max<std::size_t>(span, 2);
  PointSet points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t k = i;
    auto p = points[i];
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<double>(k % base) * step;
      k /= base;
    }
  }
  return points;
}

PointSet generate_two_blobs(std::size_t n, std::size_t dim, double separation,
                            double stddev, std::uint64_t seed) {
  assert(dim >= 1);
  Rng rng(seed);
  PointSet points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const bool second = i >= n / 2;
    auto p = points[i];
    p[0] = rng.normal(second ? separation : 0.0, stddev);
    for (std::size_t j = 1; j < dim; ++j) p[j] = rng.normal(0.0, stddev);
  }
  return points;
}

PointSet generate_pair_at_distance(std::size_t dim, double side,
                                   double distance, std::uint64_t seed) {
  if (distance > side) {
    throw MpteError("generate_pair_at_distance: distance exceeds box side");
  }
  Rng rng(seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    PointSet points(2, dim);
    auto a = points[0];
    auto b = points[1];
    for (std::size_t j = 0; j < dim; ++j) a[j] = rng.uniform(0.0, side);
    // Random unit direction.
    std::vector<double> dir(dim);
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      dir[j] = rng.normal();
      norm_sq += dir[j] * dir[j];
    }
    const double inv = 1.0 / std::sqrt(norm_sq);
    bool inside = true;
    for (std::size_t j = 0; j < dim; ++j) {
      b[j] = a[j] + distance * dir[j] * inv;
      if (b[j] < 0.0 || b[j] > side) inside = false;
    }
    if (inside) return points;
  }
  throw MpteError("generate_pair_at_distance: could not place pair in box");
}

}  // namespace mpte
