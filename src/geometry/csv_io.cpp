#include "geometry/csv_io.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/status.hpp"

namespace mpte {

PointSet read_csv_points(std::istream& in) {
  PointSet points;
  std::string line;
  std::size_t line_number = 0;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip blank lines (including trailing newline artifacts).
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;

    row.clear();
    const char* cursor = line.data();
    const char* end = line.data() + line.size();
    while (cursor < end) {
      while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
      double value = 0.0;
      const auto [next, ec] = std::from_chars(cursor, end, value);
      if (ec != std::errc{}) {
        throw MpteError("read_csv_points: bad number at line " +
                        std::to_string(line_number));
      }
      row.push_back(value);
      cursor = next;
      while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
      if (cursor < end) {
        if (*cursor != ',') {
          throw MpteError("read_csv_points: expected ',' at line " +
                          std::to_string(line_number));
        }
        ++cursor;
      }
    }
    if (!points.empty() && row.size() != points.dim()) {
      throw MpteError("read_csv_points: ragged row at line " +
                      std::to_string(line_number));
    }
    points.push_back(row);
  }
  return points;
}

PointSet read_csv_points_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MpteError("read_csv_points_file: cannot open " + path);
  return read_csv_points(in);
}

void write_csv_points(const PointSet& points, std::ostream& out) {
  out << std::setprecision(17);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (std::size_t j = 0; j < points.dim(); ++j) {
      if (j > 0) out << ',';
      out << p[j];
    }
    out << '\n';
  }
}

void write_csv_points_file(const PointSet& points, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw MpteError("write_csv_points_file: cannot open " + path);
  write_csv_points(points, out);
  if (!out) throw MpteError("write_csv_points_file: write failed: " + path);
}

}  // namespace mpte
