// Synthetic workload generators.
//
// The paper is worst-case theory with no datasets, so the benches exercise
// its claims on synthetic inputs spanning the regimes the analysis
// distinguishes: high ambient dimension (FJLT territory), bounded aspect
// ratio Delta (the logDelta factor in Theorem 2), clustered vs spread mass
// (partition-diameter vs separation-probability trade-off), and points with
// genuinely low intrinsic dimension embedded in R^d (where dimension
// reduction is near-lossless).
#pragma once

#include <cstddef>
#include <cstdint>

#include "geometry/point_set.hpp"

namespace mpte {

/// n points uniform in the cube [0, side]^d.
PointSet generate_uniform_cube(std::size_t n, std::size_t dim, double side,
                               std::uint64_t seed);

/// Mixture of `clusters` spherical Gaussians with the given stddev; centers
/// are uniform in [0, side]^d. Stresses the hierarchy: tight clusters
/// separate only deep in the tree.
PointSet generate_gaussian_clusters(std::size_t n, std::size_t dim,
                                    std::size_t clusters, double side,
                                    double stddev, std::uint64_t seed);

/// Points on a random `intrinsic_dim`-dimensional linear subspace of R^d
/// (uniform coefficients in [0, side]), plus optional Gaussian noise of the
/// given stddev in the ambient space.
PointSet generate_subspace(std::size_t n, std::size_t dim,
                           std::size_t intrinsic_dim, double side,
                           double noise_stddev, std::uint64_t seed);

/// Points on the integer lattice {0, step, 2*step, ...}^d restricted to the
/// first n lattice points in row-major order — an adversarial regular input
/// where grid partitioning's axis alignment matters.
PointSet generate_lattice(std::size_t n, std::size_t dim, double step);

/// Two tight Gaussian blobs separated by `separation` along the first axis;
/// n/2 points each. The canonical densest-ball / EMD stress input.
PointSet generate_two_blobs(std::size_t n, std::size_t dim, double separation,
                            double stddev, std::uint64_t seed);

/// A random pair of points in [0, side]^d at Euclidean distance exactly
/// `distance` (a uniformly random direction from a uniform base point; the
/// base is re-drawn until the partner stays in the box).
PointSet generate_pair_at_distance(std::size_t dim, double side,
                                   double distance, std::uint64_t seed);

}  // namespace mpte
