#include "geometry/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/status.hpp"
#include "geometry/bounding_box.hpp"

namespace mpte {

Quantized quantize_to_grid(const PointSet& points, std::uint64_t delta) {
  if (delta < 2) throw MpteError("quantize_to_grid: delta must be >= 2");
  if (points.empty()) throw MpteError("quantize_to_grid: empty point set");

  const BoundingBox box = BoundingBox::of(points);
  const double width = box.width();
  // Degenerate (all points identical): map everything to 1.
  const double cell =
      width > 0.0 ? width / static_cast<double>(delta - 1) : 1.0;

  Quantized out;
  out.delta = delta;
  out.scale_back = cell;
  out.max_rounding_error = 0.0;
  out.points = PointSet(points.size(), points.dim());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto src = points[i];
    auto dst = out.points[i];
    for (std::size_t j = 0; j < points.dim(); ++j) {
      const double offset = (src[j] - box.lo()[j]) / cell;
      double snapped = std::round(offset);
      snapped = std::clamp(snapped, 0.0, static_cast<double>(delta - 1));
      dst[j] = snapped + 1.0;  // coordinates in {1, ..., delta}
      out.max_rounding_error = std::max(
          out.max_rounding_error, std::abs(offset - snapped) * cell);
    }
  }
  return out;
}

std::uint64_t recommended_delta(const PointSet& points, double eps,
                                std::uint64_t max_delta) {
  assert(eps > 0.0);
  const auto ext = pairwise_distance_extremes(points);
  if (ext.max == 0.0 || ext.min == 0.0) return 2;
  const double width = BoundingBox::of(points).width();
  // Per-coordinate rounding error is cell/2 = width / (2(Delta-1)); the
  // distance between two points moves by at most sqrt(d) * cell. Require
  // sqrt(d) * cell <= eps * d_min.
  const double sqrt_d = std::sqrt(static_cast<double>(points.dim()));
  const double needed = width * sqrt_d / (eps * ext.min) + 1.0;
  const double clamped =
      std::clamp(needed, 2.0, static_cast<double>(max_delta));
  return static_cast<std::uint64_t>(std::ceil(clamped));
}

}  // namespace mpte
