#include "common/status.hpp"

namespace mpte {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCoverageFailure:
      return "coverage-failure";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = mpte::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mpte
