// Lightweight status/error propagation.
//
// The paper's MPC algorithm is Monte Carlo: with probability 1/poly(n) a
// ball-partitioning level fails to cover every point, and Theorem 1 requires
// the algorithm to *report* failure rather than silently degrade. `Status`
// and `Result<T>` carry that outcome through the pipeline without
// exceptions-as-control-flow; genuinely impossible states (model violations,
// precondition breaches) still throw.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mpte {

enum class StatusCode {
  kOk,
  /// A randomized stage failed its success event (e.g. a ball-partitioning
  /// level left points uncovered after U grid attempts). Retrying with a
  /// fresh seed is sound.
  kCoverageFailure,
  /// Caller-supplied arguments are outside the algorithm's domain.
  kInvalidArgument,
  /// A resource bound (local memory / total space / admission queue)
  /// would be exceeded. Retrying after backing off is sound.
  kResourceExhausted,
  /// A request's deadline expired before it was evaluated (serving-path
  /// admission control; see serve/service.hpp).
  kDeadlineExceeded,
  /// The serving subsystem is shutting down or not accepting work.
  kUnavailable,
  /// A retried operation gave up: crash recovery exhausted its restore
  /// budget, or a client exhausted its backoff schedule. Unlike
  /// kUnavailable this is terminal — retrying again is not expected to
  /// succeed.
  kAborted,
  kInternal,
};

/// Human-readable name of a status code ("ok", "coverage-failure", ...).
const char* to_string(StatusCode code);

/// Outcome of an operation: a code plus a diagnostic message on error.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats "code: message" for logs and test diagnostics.
  std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Thrown when a Result is unwrapped in error state or an MPC model
/// invariant is violated — programmer errors, not Monte Carlo failures.
class MpteError : public std::runtime_error {
 public:
  explicit MpteError(const std::string& what) : std::runtime_error(what) {}
};

/// A value or a Status; the minimal expected<T, Status>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : storage_(std::move(status)) {    // NOLINT(implicit)
    if (std::get<Status>(storage_).ok()) {
      throw MpteError("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    return ok() ? kOk : std::get<Status>(storage_);
  }

  /// Returns the value; throws MpteError if this holds an error.
  T& value() & {
    require_ok();
    return std::get<T>(storage_);
  }
  const T& value() const& {
    require_ok();
    return std::get<T>(storage_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(storage_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw MpteError("Result accessed in error state: " +
                      std::get<Status>(storage_).to_string());
    }
  }

  std::variant<T, Status> storage_;
};

}  // namespace mpte
