// Wall-clock timing for examples and benches (google-benchmark does its own
// timing; this is for the example programs' human-readable reports).
#pragma once

#include <chrono>

namespace mpte {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed seconds since construction or the last reset().
  double seconds() const;

  /// Elapsed milliseconds since construction or the last reset().
  double milliseconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mpte
