#include "common/shm.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#endif

namespace mpte {

ShmRegion::ShmRegion(ShmRegion&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

ShmRegion::~ShmRegion() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

Result<ShmRegion> ShmRegion::create(std::size_t bytes, const char* name) {
  if (bytes == 0) {
    return Status(StatusCode::kInvalidArgument, "shm region: zero size");
  }
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t size = (bytes + page - 1) / page * page;
#if defined(__linux__) && defined(SYS_memfd_create)
  const int fd =
      static_cast<int>(::syscall(SYS_memfd_create, name, 1 /*MFD_CLOEXEC*/));
  if (fd >= 0) {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      const Status status(StatusCode::kUnavailable,
                          std::string("shm region ftruncate: ") +
                              std::strerror(errno));
      ::close(fd);
      return status;
    }
    void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);  // the mapping keeps the pages alive
    if (base == MAP_FAILED) {
      return Status(StatusCode::kUnavailable,
                    std::string("shm region mmap: ") + std::strerror(errno));
    }
    return ShmRegion(base, size);
  }
  // memfd_create unavailable (old kernel / seccomp): fall through.
#else
  (void)name;
#endif
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status(StatusCode::kUnavailable,
                  std::string("shm region mmap: ") + std::strerror(errno));
  }
  return ShmRegion(base, size);
}

void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                int timeout_ms) {
#if defined(__linux__) && defined(SYS_futex)
  struct timespec ts;
  struct timespec* ts_ptr = nullptr;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1'000'000L;
    ts_ptr = &ts;
  }
  // FUTEX_WAIT (not _PRIVATE): waiter and waker are different processes
  // sharing the word through a MAP_SHARED region.
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word),
            FUTEX_WAIT, expected, ts_ptr, nullptr, 0);
#else
  if (word.load(std::memory_order_acquire) != expected) return;
  const int nap = timeout_ms < 0 ? 1 : std::min(timeout_ms, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(std::max(nap, 1)));
#endif
}

void futex_wake_all(const std::atomic<std::uint32_t>& word) {
#if defined(__linux__) && defined(SYS_futex)
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word),
            FUTEX_WAKE, INT_MAX, nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

}  // namespace mpte
