// Shared-memory helpers for cross-process transports.
//
// ShmRegion owns one MAP_SHARED mapping created *before* fork so both
// sides of a coordinator<->worker pair address the same physical pages.
// On Linux the backing object is a memfd (sealed-size anonymous file)
// mapped once and closed immediately — the mapping keeps the pages alive,
// no name ever appears in the filesystem, and fork() inherits it for
// free. Where memfd_create is unavailable the region falls back to a
// plain MAP_SHARED|MAP_ANONYMOUS mapping, which fork inherits equally.
//
// futex_wait/futex_wake wrap the Linux futex syscall in its cross-process
// (non-PRIVATE) form, operating on 32-bit words that live inside a
// ShmRegion. On non-Linux builds they degrade to a short sleep / no-op,
// which keeps the ring correct (waits are always re-checked in a loop)
// at the cost of wakeup latency.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.hpp"

namespace mpte {

class ShmRegion {
 public:
  ShmRegion() = default;
  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ~ShmRegion();

  /// Maps `bytes` of zero-initialized shared memory. `name` is a debug
  /// label (shows up in /proc/<pid>/maps on the memfd path); it is never
  /// a filesystem path.
  static Result<ShmRegion> create(std::size_t bytes, const char* name);

  std::uint8_t* data() const { return static_cast<std::uint8_t*>(base_); }
  std::size_t size() const { return size_; }
  explicit operator bool() const { return base_ != nullptr; }

 private:
  ShmRegion(void* base, std::size_t size) : base_(base), size_(size) {}

  void* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Blocks until `word` no longer holds `expected`, a wake arrives, the
/// timeout passes, or spuriously — callers must re-check their predicate.
/// `timeout_ms` < 0 means no timeout (still subject to spurious wakes).
/// The word must live in memory shared by waiter and waker.
void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                int timeout_ms);

/// Wakes every futex_wait parked on `word`.
void futex_wake_all(const std::atomic<std::uint32_t>& word);

}  // namespace mpte
