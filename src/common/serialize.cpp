#include "common/serialize.hpp"

namespace mpte {

void Serializer::write_string(const std::string& s) {
  write(static_cast<std::uint64_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(s.data());
  buffer_.insert(buffer_.end(), bytes, bytes + s.size());
}

std::string Deserializer::read_string() {
  const auto count = read<std::uint64_t>();
  require(count);
  std::string s(reinterpret_cast<const char*>(data_ + cursor_), count);
  cursor_ += count;
  return s;
}

}  // namespace mpte
