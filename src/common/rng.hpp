// Deterministic, splittable random number generation.
//
// Every randomized stage in this library takes an explicit 64-bit seed so
// that whole experiments are reproducible bit-for-bit. `Rng` wraps the
// xoshiro256** generator (public-domain algorithm by Blackman & Vigna)
// seeded via splitmix64, and `Rng::split` derives statistically independent
// child streams — the idiom used to hand each MPC machine, each level of a
// hierarchy, or each grid attempt its own stream without coordination.
#pragma once

#include <cstdint>
#include <limits>

namespace mpte {

/// xoshiro256** PRNG with splitmix64 seeding and stream splitting.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with
/// <random> distributions, though the member helpers below are preferred
/// (they are deterministic across standard library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; distinct seeds give independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  std::uint64_t operator()();

  /// Derives an independent child stream keyed by `key`. Calling split with
  /// the same key twice yields the same child; different keys (or different
  /// parents) yield unrelated streams. Does not advance this generator.
  [[nodiscard]] Rng split(std::uint64_t key) const;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire-style rejection).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (no state caching: two calls per pair
  /// would complicate reproducibility of interleaved consumers).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
};

/// splitmix64 step: the standard 64-bit mixer, exposed because several
/// modules use it to hash composite keys into seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// One-shot mix of a value (stateless convenience over splitmix64).
std::uint64_t mix64(std::uint64_t value);

/// Combines two 64-bit hashes/keys into one (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace mpte
