// Byte-level serialization for MPC messages.
//
// The MPC model prices communication in machine words/bytes: a machine may
// send and receive at most its local memory per round. To make that
// accounting honest, every message crossing machines is serialized into a
// flat byte buffer and its exact size is charged against the sender's and
// receiver's quotas. The encoding is a simple little-endian, length-prefixed
// format — deterministic and portable across the trivially copyable types
// the library exchanges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.hpp"

namespace mpte {

/// Byte size of a length-prefixed span of `count` records of type T, as
/// written by Serializer::write_span — the right reserve hint for a
/// message that is one record batch.
template <typename T>
  requires std::is_trivially_copyable_v<T>
constexpr std::size_t wire_size(std::size_t count) {
  return sizeof(std::uint64_t) + count * sizeof(T);
}

/// Append-only encoder producing the wire bytes of a message.
class Serializer {
 public:
  Serializer() = default;

  /// Size hint: reserves `reserve_bytes` of capacity up front so a message
  /// of known size is encoded with a single allocation.
  explicit Serializer(std::size_t reserve_bytes) {
    buffer_.reserve(reserve_bytes);
  }

  /// Writes a trivially copyable scalar verbatim (little-endian host order;
  /// the simulator never crosses endianness domains).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  /// Writes a length-prefixed span of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> values) {
    write(static_cast<std::uint64_t>(values.size()));
    if (!values.empty()) {
      const auto* bytes =
          reinterpret_cast<const std::uint8_t*>(values.data());
      buffer_.insert(buffer_.end(), bytes,
                     bytes + values.size() * sizeof(T));
    }
  }

  /// Writes a length-prefixed vector of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& values) {
    write_span(std::span<const T>(values));
  }

  /// Appends raw bytes verbatim, with no length prefix (for embedding an
  /// already-framed payload, e.g. a file envelope's body).
  void write_raw(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Writes a length-prefixed string.
  void write_string(const std::string& s);

  std::size_t size() const { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

  /// Releases the encoded bytes without copying. The Serializer is left
  /// empty and reusable: size() == 0 and subsequent writes start a fresh
  /// buffer.
  std::vector<std::uint8_t> take() {
    std::vector<std::uint8_t> out = std::move(buffer_);
    buffer_.clear();  // moved-from state is unspecified; make it empty
    return out;
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Cursor-based decoder over a received byte buffer. Out-of-bounds reads
/// throw MpteError (a malformed message is a programming error in the
/// simulator, not a runtime condition).
class Deserializer {
 public:
  explicit Deserializer(const std::vector<std::uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  explicit Deserializer(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Deserializer(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    require(count * sizeof(T));
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), data_ + cursor_, count * sizeof(T));
      cursor_ += count * sizeof(T);
    }
    return values;
  }

  std::string read_string();

  bool exhausted() const { return cursor_ == size_; }
  std::size_t remaining() const { return size_ - cursor_; }

 private:
  void require(std::size_t n) const {
    if (cursor_ + n > size_) {
      throw MpteError("Deserializer: read past end of message");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

}  // namespace mpte
