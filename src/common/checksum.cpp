#include "common/checksum.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/serialize.hpp"

namespace mpte {

namespace {

// "FVMP" on disk (written little-endian); distinct from the payload magics
// of hst_io ("ETPM") and embedding_io ("BEPM") so legacy files — whose
// first four bytes are those payload magics — are never mistaken for an
// envelope.
constexpr std::uint32_t kEnvelopeMagic = 0x504d5646;
constexpr std::uint32_t kEnvelopeVersion = 1;
// magic + version + payload_size up front, digest behind the payload.
constexpr std::size_t kHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
constexpr std::size_t kTrailerBytes = sizeof(std::uint64_t);

static_assert(kHeaderBytes == kEnvelopeHeaderBytes);
static_assert(kTrailerBytes == kEnvelopeTrailerBytes);

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t state) {
  for (const std::uint8_t b : bytes) {
    state ^= b;
    state *= kFnv1aPrime;
  }
  return state;
}

std::vector<std::uint8_t> wrap_checksummed(
    std::span<const std::uint8_t> payload) {
  Serializer s(kHeaderBytes + payload.size() + kTrailerBytes);
  s.write(kEnvelopeMagic);
  s.write(kEnvelopeVersion);
  s.write(static_cast<std::uint64_t>(payload.size()));
  s.write_raw(payload);
  s.write(fnv1a64(payload));
  return s.take();
}

Result<std::uint64_t> envelope_payload_size(
    std::span<const std::uint8_t> header, const std::string& context) {
  if (header.size() < kHeaderBytes) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": envelope header truncated");
  }
  Deserializer d(header.data(), header.size());
  if (d.read<std::uint32_t>() != kEnvelopeMagic) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": not a checksummed envelope (bad magic)");
  }
  const auto version = d.read<std::uint32_t>();
  if (version != kEnvelopeVersion) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": unsupported envelope version " +
                      std::to_string(version));
  }
  return d.read<std::uint64_t>();
}

bool looks_checksummed(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kEnvelopeMagic;
}

Result<std::vector<std::uint8_t>> unwrap_checksummed(
    std::vector<std::uint8_t> file_bytes, bool allow_legacy,
    const std::string& context) {
  if (!looks_checksummed(file_bytes)) {
    if (allow_legacy) return file_bytes;  // pre-envelope file: raw payload
    return Status(StatusCode::kInvalidArgument,
                  context + ": not a checksummed file (bad magic)");
  }
  if (file_bytes.size() < kHeaderBytes + kTrailerBytes) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": truncated (file shorter than envelope)");
  }
  Deserializer d(file_bytes);
  (void)d.read<std::uint32_t>();  // magic, already matched
  const auto version = d.read<std::uint32_t>();
  if (version != kEnvelopeVersion) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": unsupported envelope version " +
                      std::to_string(version));
  }
  const auto payload_size = d.read<std::uint64_t>();
  if (file_bytes.size() != kHeaderBytes + payload_size + kTrailerBytes) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": truncated (payload declares " +
                      std::to_string(payload_size) + "B, file holds " +
                      std::to_string(file_bytes.size()) + "B)");
  }
  const std::span<const std::uint8_t> payload(
      file_bytes.data() + kHeaderBytes, payload_size);
  std::uint64_t stored;
  std::memcpy(&stored, file_bytes.data() + kHeaderBytes + payload_size,
              sizeof(stored));
  const std::uint64_t computed = fnv1a64(payload);
  if (stored != computed) {
    return Status(StatusCode::kInvalidArgument,
                  context + ": checksum mismatch (stored " +
                      std::to_string(stored) + ", computed " +
                      std::to_string(computed) + ")");
  }
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status(StatusCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      return Status(StatusCode::kUnavailable, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status(StatusCode::kUnavailable,
                  "cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kUnavailable, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace mpte
