#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mpte {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t s = value;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // boost::hash_combine recipe widened to 64 bits.
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 seeding guarantees a
  // well-mixed nonzero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t key) const {
  // Derive the child seed from the *current* state and the key, without
  // advancing this generator: hash the full state with the key.
  std::uint64_t h = mix64(key);
  for (const auto word : state_) h = hash_combine(h, word);
  return Rng(h);
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box–Muller; draw u1 from (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace mpte
