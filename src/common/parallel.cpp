#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace mpte::par {

namespace {

thread_local bool t_in_worker = false;

std::atomic<std::size_t> g_default_override{0};

std::size_t env_threads() {
  static const std::size_t cached = [] {
    const char* value = std::getenv("MPTE_THREADS");
    if (value == nullptr) return std::size_t{0};
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0') return std::size_t{0};
    return static_cast<std::size_t>(parsed);
  }();
  return cached;
}

}  // namespace

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t default_threads() {
  const std::size_t override = g_default_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const std::size_t env = env_threads();
  return env > 0 ? env : hardware_threads();
}

void set_default_threads(std::size_t threads) {
  g_default_override.store(threads, std::memory_order_relaxed);
}

std::size_t resolve_threads(std::size_t threads) {
  return threads > 0 ? threads : default_threads();
}

bool in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::workers() {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (fn_ != nullptr && next_ < total_);
    });
    if (shutdown_) return;
    execute_tasks(lock);
  }
}

void ThreadPool::execute_tasks(std::unique_lock<std::mutex>& lock) {
  while (fn_ != nullptr && next_ < total_) {
    const std::size_t task = next_++;
    const auto* fn = fn_;
    lock.unlock();
    std::exception_ptr thrown;
    try {
      (*fn)(task);
    } catch (...) {
      thrown = std::current_exception();
    }
    lock.lock();
    if (thrown && (error_ == nullptr || task < error_task_)) {
      error_ = thrown;
      error_task_ = task;
    }
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (t_in_worker) {
    // Nested dispatch from inside a worker: the outer batch owns the pool;
    // run inline (serial, ascending index — the serial semantics).
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    total_ = tasks;
    next_ = 0;
    pending_ = tasks;
    error_ = nullptr;
    error_task_ = 0;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // The calling thread participates in the batch. While it executes
    // chunk bodies it must count as "inside the pool" so a nested
    // parallel_for from a body runs inline instead of re-entering run()
    // (which would self-deadlock on run_mutex_).
    t_in_worker = true;
    execute_tasks(lock);
    t_in_worker = false;
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t begin, std::size_t end, const RangeBody& body,
                  std::size_t threads) {
  parallel_for_chunked(
      begin, end, resolve_threads(threads),
      [&body](std::size_t /*chunk*/, std::size_t b, std::size_t e) {
        body(b, e);
      },
      threads);
}

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          std::size_t num_chunks, const ChunkBody& body,
                          std::size_t threads) {
  if (end <= begin) return;
  const std::size_t length = end - begin;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(num_chunks, length));
  // Chunk c covers [begin + c*length/chunks, begin + (c+1)*length/chunks):
  // a pure function of (range, chunk count), independent of thread count.
  const auto chunk_begin = [begin, length, chunks](std::size_t c) {
    return begin + (length * c) / chunks;
  };
  const std::size_t degree =
      std::min(resolve_threads(threads), chunks);
  if (degree <= 1 || chunks == 1 || in_worker()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c, chunk_begin(c), chunk_begin(c + 1));
    }
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(degree - 1);  // the caller is the degree-th thread
  pool.run(chunks, [&](std::size_t c) {
    body(c, chunk_begin(c), chunk_begin(c + 1));
  });
}

}  // namespace mpte::par
