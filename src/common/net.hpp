// EINTR-safe blocking socket I/O shared by serve (TCP line protocol) and
// ipc (frame transport over socketpairs).
//
// Every helper retries on EINTR and never raises SIGPIPE (sends use
// MSG_NOSIGNAL), so callers see peer death as a Status instead of a
// signal. Deadlines are whole-operation budgets: recv_exact with
// timeout_ms = 250 means "the complete fill must land within 250 ms",
// not "each chunk".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace mpte::net {

/// kUnavailable tagged with the current errno text, e.g. "send: Broken
/// pipe". Capture it before any further syscall clobbers errno.
Status socket_error(const std::string& what);

/// Sends the whole span, retrying short writes and EINTR.
Status send_all(int fd, std::span<const std::uint8_t> bytes);
Status send_all(int fd, std::string_view text);

/// One recv of up to buf.size() bytes. Returns 0 on orderly EOF.
Result<std::size_t> recv_some(int fd, std::span<std::uint8_t> buf);

/// Fills `buf` completely. timeout_ms < 0 blocks indefinitely; otherwise
/// the whole fill must complete within the budget (kDeadlineExceeded).
/// EOF or a socket error before the fill completes is kUnavailable.
Status recv_exact(int fd, std::span<std::uint8_t> buf, int timeout_ms = -1);

/// Waits until `fd` is readable (or has been closed by the peer, which
/// also reports readable). false = the timeout expired first.
Result<bool> wait_readable(int fd, int timeout_ms);

/// Completes a connect() that a signal interrupted: per POSIX the attempt
/// proceeds asynchronously, so retrying connect() would yield EALREADY.
/// Waits for writability, then reads the outcome from SO_ERROR.
Status finish_connect(int fd);

}  // namespace mpte::net
