// Shared-memory parallel runtime (mpte::par).
//
// The paper's algorithms are parallel by construction: every machine's
// per-round work in Algorithm 2 / the MPC FJLT is independent, and the
// point-level kernels (FWHT, JL projections, ball assignment, distortion
// sampling) are embarrassingly parallel over points. This layer turns that
// structural parallelism into wall-clock speedup on one host:
//
//  * One lazily-created global ThreadPool with reusable workers (threads
//    are spawned once, not per call) that grows on demand up to the
//    largest degree ever requested.
//  * parallel_for / parallel_for_chunked split an index range into
//    *statically determined* contiguous chunks. Which worker executes a
//    chunk is scheduling noise; *what* each chunk computes is a pure
//    function of (range, chunk count), so any kernel whose chunks write
//    disjoint outputs — or whose per-chunk accumulators are merged in
//    chunk order — is deterministic at every thread count.
//  * Degree 1 (or a 0/1-length range, or a call from inside a worker —
//    nesting runs serial) executes the body inline on the calling thread,
//    bit-identical to the pre-parallel serial code path.
//  * The default degree is the MPTE_THREADS environment variable when set
//    to a positive integer, else std::thread::hardware_concurrency();
//    set_default_threads() overrides both at runtime (benches/tests).
//  * Exceptions thrown by chunk bodies are captured and the one from the
//    lowest-numbered chunk is rethrown on the calling thread after all
//    chunks finish, mirroring the serial failure order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpte::par {

/// std::thread::hardware_concurrency(), floored at 1.
std::size_t hardware_threads();

/// Degree used when a call site passes threads = 0: the runtime override
/// from set_default_threads() if any, else MPTE_THREADS (positive integer)
/// if set, else hardware_threads().
std::size_t default_threads();

/// Overrides default_threads() process-wide; 0 restores the env/hardware
/// default. Intended for benches and tests that sweep thread counts.
void set_default_threads(std::size_t threads);

/// Resolves a requested thread count: `threads` if positive, else
/// default_threads().
std::size_t resolve_threads(std::size_t threads);

/// True on pool worker threads. Nested parallel_for calls detect this and
/// run serially (the outer loop already owns the available parallelism).
bool in_worker();

/// Body over a half-open index subrange [begin, end).
using RangeBody = std::function<void(std::size_t begin, std::size_t end)>;

/// Body with chunk identity, for per-chunk accumulator patterns.
using ChunkBody =
    std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;

/// Runs `body` over [begin, end) split into min(threads, length) contiguous
/// chunks executed concurrently. threads = 0 means default_threads().
/// Blocks until every chunk finished; rethrows the lowest-chunk exception.
void parallel_for(std::size_t begin, std::size_t end, const RangeBody& body,
                  std::size_t threads = 0);

/// Like parallel_for but with an explicit chunk count (capped at the range
/// length) and a body that receives the chunk index — the building block
/// for deterministic reductions: size the accumulator array by chunk count,
/// let chunk c write slot c, merge slots in chunk order afterwards.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          std::size_t num_chunks, const ChunkBody& body,
                          std::size_t threads = 0);

/// The process-wide worker pool behind parallel_for. Exposed for tests and
/// for callers that want task-index (rather than range) dispatch.
class ThreadPool {
 public:
  /// The lazily-constructed global pool (workers are spawned on demand by
  /// ensure_workers/run, so merely linking this layer costs nothing).
  static ThreadPool& global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current number of worker threads.
  std::size_t workers();

  /// Grows the pool to at least `n` workers (never shrinks).
  void ensure_workers(std::size_t n);

  /// Executes fn(i) for every i in [0, tasks) across the workers and the
  /// calling thread, blocking until all complete. Tasks are claimed
  /// dynamically but are identified by index, so outputs keyed by task
  /// index are deterministic. Rethrows the lowest-index exception. Called
  /// from inside a worker, runs every task inline (serial).
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  ThreadPool() = default;

 private:
  void worker_loop();
  /// Claims and runs tasks of the current batch until none remain.
  /// Expects `lock` held on mutex_; releases it around each body call.
  void execute_tasks(std::unique_lock<std::mutex>& lock);

  std::mutex run_mutex_;  // serializes concurrent top-level run() calls
  std::mutex mutex_;      // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;    // tasks in the current batch
  std::size_t next_ = 0;     // next unclaimed task index
  std::size_t pending_ = 0;  // tasks not yet finished
  std::size_t error_task_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;
};

}  // namespace mpte::par
