#include "common/net.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace mpte::net {

Status socket_error(const std::string& what) {
  return Status(StatusCode::kUnavailable,
                what + ": " + std::strerror(errno));
}

Status send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return socket_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status send_all(int fd, std::string_view text) {
  return send_all(fd, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()));
}

Result<std::size_t> recv_some(int fd, std::span<std::uint8_t> buf) {
  while (true) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return socket_error("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

Result<bool> wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  while (true) {
    const int polled = ::poll(&pfd, 1, timeout_ms);
    if (polled < 0) {
      if (errno == EINTR) continue;  // conservatively restart the budget
      return socket_error("poll");
    }
    return polled > 0;
  }
}

Status recv_exact(int fd, std::span<std::uint8_t> buf, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                              : timeout_ms);
  std::size_t filled = 0;
  while (filled < buf.size()) {
    if (timeout_ms >= 0) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "recv: deadline expired with " +
                          std::to_string(buf.size() - filled) +
                          "B outstanding");
      }
      const auto readable =
          wait_readable(fd, static_cast<int>(remaining.count()));
      if (!readable.ok()) return readable.status();
      if (!*readable) {
        return Status(StatusCode::kDeadlineExceeded,
                      "recv: deadline expired with " +
                          std::to_string(buf.size() - filled) +
                          "B outstanding");
      }
    }
    const auto n = recv_some(fd, buf.subspan(filled));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status(StatusCode::kUnavailable,
                    "recv: connection closed with " +
                        std::to_string(buf.size() - filled) +
                        "B outstanding");
    }
    filled += *n;
  }
  return Status::Ok();
}

Status finish_connect(int fd) {
  pollfd pfd{fd, POLLOUT, 0};
  int polled;
  do {
    polled = ::poll(&pfd, 1, -1);
  } while (polled < 0 && errno == EINTR);
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (polled < 0 ||
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    return socket_error("connect");
  }
  if (so_error != 0) {
    errno = so_error;
    return socket_error("connect");
  }
  return Status::Ok();
}

}  // namespace mpte::net
