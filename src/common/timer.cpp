#include "common/timer.hpp"

namespace mpte {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count();
}

double Timer::milliseconds() const { return seconds() * 1e3; }

}  // namespace mpte
