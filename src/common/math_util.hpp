// Small numeric helpers shared across modules: power-of-two arithmetic for
// the Walsh–Hadamard transform, unit-ball volumes for ball-partition
// coverage probabilities (Lemmas 6–7), and statistics helpers used by the
// distortion-measurement utilities and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpte {

/// True iff x is a power of two (and nonzero).
bool is_power_of_two(std::uint64_t x);

/// Smallest power of two >= x (x = 0 maps to 1).
std::uint64_t next_power_of_two(std::uint64_t x);

/// floor(log2(x)); requires x >= 1.
unsigned floor_log2(std::uint64_t x);

/// ceil(log2(x)); requires x >= 1 (returns 0 for x = 1).
unsigned ceil_log2(std::uint64_t x);

/// Ceiling division for nonnegative integers; requires divisor > 0.
std::uint64_t ceil_div(std::uint64_t numerator, std::uint64_t divisor);

/// Volume of the k-dimensional unit ball, pi^{k/2} / Gamma(k/2 + 1).
double unit_ball_volume(unsigned k);

/// Probability that a fixed point is covered by one random shifted grid of
/// radius-w balls on a cell of width 4w in k dimensions: V_k(1) / 4^k.
/// Independent of w by scaling.
double ball_grid_cover_probability(unsigned k);

/// Arithmetic mean; returns 0 for an empty range.
double mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); returns 0 for size < 2.
double sample_stddev(const std::vector<double>& values);

/// p-th percentile by linear interpolation on the sorted copy, p in [0,1].
double percentile(std::vector<double> values, double p);

/// Maximum element; returns 0 for an empty range.
double max_value(const std::vector<double>& values);

}  // namespace mpte
