#include "common/math_util.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>

namespace mpte {

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t next_power_of_two(std::uint64_t x) {
  if (x <= 1) return 1;
  return std::bit_ceil(x);
}

unsigned floor_log2(std::uint64_t x) {
  assert(x >= 1);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  const unsigned f = floor_log2(x);
  return is_power_of_two(x) ? f : f + 1;
}

std::uint64_t ceil_div(std::uint64_t numerator, std::uint64_t divisor) {
  assert(divisor > 0);
  return (numerator + divisor - 1) / divisor;
}

double unit_ball_volume(unsigned k) {
  // V_k = pi^{k/2} / Gamma(k/2 + 1); std::lgamma keeps it stable for large k.
  const double half_k = 0.5 * static_cast<double>(k);
  return std::exp(half_k * std::log(std::numbers::pi) -
                  std::lgamma(half_k + 1.0));
}

double ball_grid_cover_probability(unsigned k) {
  // Ball volume V_k(w) = V_k(1) w^k over cell volume (4w)^k.
  return unit_ball_volume(k) / std::pow(4.0, static_cast<double>(k));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  assert(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double max_value(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

}  // namespace mpte
