// Integrity primitives shared by every on-disk artifact.
//
// Trees (hst_io), embeddings (embedding_io), and cluster snapshots
// (ckpt/snapshot) all persist Serializer-encoded payloads. This header
// gives them one checksum (FNV-1a 64) and one file envelope — a small
// header plus trailing digest — so a truncated or bit-flipped file is
// rejected with a Status instead of being deserialized into garbage.
// The envelope wraps the payload without altering it: in-memory byte
// formats (and the golden fingerprints hashed over them) stay stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace mpte {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over `bytes`, continuing from `state` (chain calls to digest
/// discontiguous regions).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t state = kFnv1aOffsetBasis);

/// Wraps a payload in the checksummed file envelope:
///   u32 magic, u32 version, u64 payload_size, payload, u64 fnv1a(payload).
std::vector<std::uint8_t> wrap_checksummed(
    std::span<const std::uint8_t> payload);

/// Envelope geometry, exposed for streaming readers (the ipc frame
/// transport) that must learn the payload size from the fixed-size prefix
/// before the rest of the envelope has arrived.
inline constexpr std::size_t kEnvelopeHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
inline constexpr std::size_t kEnvelopeTrailerBytes = sizeof(std::uint64_t);

/// Validates a kEnvelopeHeaderBytes-long prefix (magic + version) and
/// returns the declared payload size; kInvalidArgument mentions `context`.
Result<std::uint64_t> envelope_payload_size(
    std::span<const std::uint8_t> header, const std::string& context);

/// True if `bytes` begin with the envelope magic.
bool looks_checksummed(std::span<const std::uint8_t> bytes);

/// Validates the envelope and returns the payload. Files that do not start
/// with the envelope magic are returned whole when `allow_legacy` is set
/// (pre-envelope files had no integrity header) and rejected otherwise.
/// Truncation, size mismatch, and checksum mismatch all yield
/// kInvalidArgument mentioning `context` (typically the file path).
Result<std::vector<std::uint8_t>> unwrap_checksummed(
    std::vector<std::uint8_t> file_bytes, bool allow_legacy,
    const std::string& context);

/// Writes `bytes` to `path` via a same-directory temp file + rename, so a
/// crash mid-write never leaves a partially written file at `path`.
Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes);

/// Reads a whole file; kUnavailable if it cannot be opened.
Result<std::vector<std::uint8_t>> read_file_bytes(const std::string& path);

}  // namespace mpte
