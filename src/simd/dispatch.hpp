// Runtime backend selection for the mpte::simd kernels.
//
// The build compiles up to three instantiations of the kernel table
// (scalar always; SSE2 and AVX2 on x86 builds with the MPTE_SIMD CMake
// option ON, the default). At first use the process picks the best backend
// the CPU supports — overridable by the MPTE_SIMD environment variable
// ("scalar", "sse2", "avx2", or "auto") — and every kernel call site reads
// the active table through ops(). Because the backends are byte-identical
// (simd/kernels.hpp), the choice affects throughput only, never results;
// the golden-fingerprint tests assert exactly that.
//
// set_backend() overrides the selection at runtime (tests sweep the
// backend matrix with it); an override naming a backend that is not
// compiled in or not supported by this CPU is refused.
#pragma once

#include <string>
#include <vector>

#include "simd/kernels.hpp"

namespace mpte::simd {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar" / "sse2" / "avx2".
const char* backend_name(Backend backend);

/// Parses a backend name as accepted by the MPTE_SIMD environment
/// variable. Returns true and sets *backend for "scalar"/"sse2"/"avx2";
/// returns false for anything else (including "auto" and "").
bool backend_from_name(const std::string& name, Backend* backend);

/// Backends compiled into this binary AND supported by this CPU, in
/// ascending preference order (scalar first).
std::vector<Backend> available_backends();

/// The best available backend (the dispatch default when MPTE_SIMD is
/// unset or "auto").
Backend best_backend();

/// The backend ops() currently resolves to.
Backend active_backend();

/// Forces the active backend. Returns false (and changes nothing) if the
/// requested backend is not available in this binary/CPU. Not intended for
/// concurrent use with running kernels: callers (tests, benches) switch
/// backends between, not during, parallel regions.
bool set_backend(Backend backend);

/// The active kernel table. First call resolves MPTE_SIMD; subsequent
/// calls are a single atomic load.
const Ops& ops();

}  // namespace mpte::simd
