#include "simd/kernels-inl.hpp"
#include "simd/vecd_scalar.hpp"

namespace mpte::simd {

const Ops& scalar_ops() {
  static constexpr Ops kOps = make_ops<VecScalar>("scalar");
  return kOps;
}

}  // namespace mpte::simd
