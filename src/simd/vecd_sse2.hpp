// SSE2 implementation of the VecD contract: four virtual lanes as two
// 128-bit registers. SSE2 is the x86-64 baseline, so this backend exists
// on every x86-64 host. SSE2 has no packed floor/round, so those two ops
// fall back to lane-wise libm calls — bit-identical to the scalar backend
// by definition, and the arithmetic (add/sub/mul) still runs two lanes per
// instruction.
#pragma once

#include <emmintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mpte::simd {

struct VecSse2 {
  static constexpr std::size_t kLanes = 4;

  __m128d lo;  // lanes 0, 1
  __m128d hi;  // lanes 2, 3

  static VecSse2 zero() {
    return VecSse2{_mm_setzero_pd(), _mm_setzero_pd()};
  }

  static VecSse2 broadcast(double x) {
    return VecSse2{_mm_set1_pd(x), _mm_set1_pd(x)};
  }

  static VecSse2 load(const double* p) {
    return VecSse2{_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }

  static VecSse2 load_partial(const double* p, std::size_t n) {
    double tmp[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t l = 0; l < n; ++l) tmp[l] = p[l];
    return load(tmp);
  }

  static VecSse2 gather(const double* base, const std::uint32_t* idx) {
    return VecSse2{_mm_set_pd(base[idx[1]], base[idx[0]]),
                   _mm_set_pd(base[idx[3]], base[idx[2]])};
  }

  static VecSse2 gather_partial(const double* base, const std::uint32_t* idx,
                                std::size_t n) {
    double tmp[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t l = 0; l < n; ++l) tmp[l] = base[idx[l]];
    return load(tmp);
  }

  void store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }

  double lane(std::size_t l) const {
    double tmp[kLanes];
    store(tmp);
    return tmp[l];
  }

  friend VecSse2 operator+(VecSse2 a, VecSse2 b) {
    return VecSse2{_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  friend VecSse2 operator-(VecSse2 a, VecSse2 b) {
    return VecSse2{_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  friend VecSse2 operator*(VecSse2 a, VecSse2 b) {
    return VecSse2{_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }

  /// FWHT level half=1: each 128-bit half [x0, x1] -> [x0 + x1, x0 - x1].
  static VecSse2 butterfly1(VecSse2 a) {
    const auto pair = [](__m128d x) {
      const __m128d d0 = _mm_unpacklo_pd(x, x);  // [x0, x0]
      const __m128d d1 = _mm_unpackhi_pd(x, x);  // [x1, x1]
      return _mm_shuffle_pd(_mm_add_pd(d0, d1), _mm_sub_pd(d0, d1), 0);
    };
    return VecSse2{pair(a.lo), pair(a.hi)};
  }

  /// FWHT level half=2: lanes (0,2) and (1,3) pair, i.e. lo with hi.
  static VecSse2 butterfly2(VecSse2 a) {
    return VecSse2{_mm_add_pd(a.lo, a.hi), _mm_sub_pd(a.lo, a.hi)};
  }

  static VecSse2 floor(VecSse2 a) {
    double tmp[kLanes];
    a.store(tmp);
    for (double& x : tmp) x = std::floor(x);
    return load(tmp);
  }

  static VecSse2 round_even(VecSse2 a) {
    double tmp[kLanes];
    a.store(tmp);
    for (double& x : tmp) x = std::nearbyint(x);
    return load(tmp);
  }
};

}  // namespace mpte::simd
