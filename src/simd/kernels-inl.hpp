// Shared kernel templates over a 4-lane VecD type. This header is included
// by exactly three TUs — kernels_scalar.cpp, kernels_sse2.cpp,
// kernels_avx2.cpp — each of which instantiates make_ops<V>() with its
// backend's vector type. The template is the determinism contract: because
// every backend runs this same code, with VecD operations that are all
// exactly-rounded IEEE-754 double ops, the three instantiations are
// byte-identical on every input (see simd/kernels.hpp and
// docs/simd-kernels.md). Those TUs are compiled with -ffp-contract=off so
// no backend fuses a multiply-add the others round twice.
//
// Reduction scheme: sixteen virtual accumulator lanes, laid out as four
// vectors of four — element k of a (block-aligned) stream feeds vector
// k/4 mod 4, lane k mod 4. Four independent accumulator vectors matter
// for throughput, not just width: a single accumulator serializes on
// floating-point add latency, which is exactly the ILP the pre-SIMD
// scalar code got for free from its four independent double chains.
// Merging is pinned: vectors combine as (v0 + v1) + (v2 + v3) (lanewise),
// then the surviving vector's lanes as (l0 + l1) + (l2 + l3). Tails
// shorter than a block are padded with +0.0 operands
// (load_partial/gather_partial) rather than handled by a differently-
// shaped scalar loop, so the merge tree never depends on n mod 16.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace mpte::simd {

template <class V>
void fwht_row_impl(double* data, std::size_t n) {
  if (n < 4) {
    if (n == 2) {
      const double a = data[0];
      const double b = data[1];
      data[0] = a + b;
      data[1] = a - b;
    }
    return;
  }
  // Levels half = 1 and half = 2 fused into one in-register pass: each
  // 4-element block is loaded once, butterflied twice with lane shuffles,
  // and stored once. Same IEEE adds/subs as the generic level loop, at a
  // quarter of its memory traffic — without this the two sub-vector levels
  // run scalar and cap the whole transform (Amdahl) at ~2x.
  for (std::size_t i = 0; i < n; i += V::kLanes) {
    V::butterfly2(V::butterfly1(V::load(data + i))).store(data + i);
  }
  std::size_t half = V::kLanes;
  // Radix-4 passes: two consecutive levels per sweep. The intermediates
  // u = (a±b, c±d) are exactly what level `half` would have stored, and
  // the outputs u0±u2, u1±u3 are exactly what level `2*half` would then
  // have computed — same IEEE ops, same association, half the loads and
  // stores. Butterfly kernels here are store-throughput-bound, so the
  // traffic, not the adds, is what the fusion buys back.
  for (; (half << 1) < n; half <<= 2) {
    for (std::size_t base = 0; base < n; base += half << 2) {
      for (std::size_t i = base; i < base + half; i += V::kLanes) {
        const V a = V::load(data + i);
        const V b = V::load(data + i + half);
        const V c = V::load(data + i + 2 * half);
        const V d = V::load(data + i + 3 * half);
        const V u0 = a + b;
        const V u1 = a - b;
        const V u2 = c + d;
        const V u3 = c - d;
        (u0 + u2).store(data + i);
        (u1 + u3).store(data + i + half);
        (u0 - u2).store(data + i + 2 * half);
        (u1 - u3).store(data + i + 3 * half);
      }
    }
  }
  // One radix-2 level remains when log2(n) - 2 is odd.
  if (half < n) {
    for (std::size_t base = 0; base < n; base += half << 1) {
      for (std::size_t i = base; i < base + half; i += V::kLanes) {
        const V a = V::load(data + i);
        const V b = V::load(data + i + half);
        (a + b).store(data + i);
        (a - b).store(data + i + half);
      }
    }
  }
}

template <class V>
void scale_impl(double* data, std::size_t n, double s) {
  const V vs = V::broadcast(s);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    (V::load(data + i) * vs).store(data + i);
  }
  for (; i < n; ++i) data[i] *= s;
}

/// Pinned-order merge of one accumulator vector's four lanes.
template <class V>
double merge_lanes(const V& acc) {
  return (acc.lane(0) + acc.lane(1)) + (acc.lane(2) + acc.lane(3));
}

/// The four accumulator vectors of the sixteen-virtual-lane reduction.
/// Named members (not an array) so compilers keep each in a register
/// instead of spilling an indexed aggregate; add_tail routes a tail
/// sub-block to the right chain without indexing.
template <class V>
struct Acc4 {
  V v0 = V::zero();
  V v1 = V::zero();
  V v2 = V::zero();
  V v3 = V::zero();

  void add_tail(std::size_t j, const V& term) {
    if (j == 0) {
      v0 = v0 + term;
    } else if (j == 1) {
      v1 = v1 + term;
    } else if (j == 2) {
      v2 = v2 + term;
    } else {
      v3 = v3 + term;
    }
  }

  /// Pinned merge: vectors as (v0 + v1) + (v2 + v3), then lanes.
  double merge() const { return merge_lanes((v0 + v1) + (v2 + v3)); }
};

template <class V>
double l2sq_impl(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t kSub = V::kLanes;
  constexpr std::size_t kBlock = 4 * kSub;
  Acc4<V> acc;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    const V d0 = V::load(a + i) - V::load(b + i);
    const V d1 = V::load(a + i + kSub) - V::load(b + i + kSub);
    const V d2 = V::load(a + i + 2 * kSub) - V::load(b + i + 2 * kSub);
    const V d3 = V::load(a + i + 3 * kSub) - V::load(b + i + 3 * kSub);
    acc.v0 = acc.v0 + d0 * d0;
    acc.v1 = acc.v1 + d1 * d1;
    acc.v2 = acc.v2 + d2 * d2;
    acc.v3 = acc.v3 + d3 * d3;
  }
  for (std::size_t j = 0; i < n; i += kSub, ++j) {
    const std::size_t m = std::min(kSub, n - i);
    const V d = V::load_partial(a + i, m) - V::load_partial(b + i, m);
    acc.add_tail(j, d * d);
  }
  return acc.merge();
}

template <class V>
double sumsq_impl(const double* a, std::size_t n) {
  constexpr std::size_t kSub = V::kLanes;
  constexpr std::size_t kBlock = 4 * kSub;
  Acc4<V> acc;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    const V x0 = V::load(a + i);
    const V x1 = V::load(a + i + kSub);
    const V x2 = V::load(a + i + 2 * kSub);
    const V x3 = V::load(a + i + 3 * kSub);
    acc.v0 = acc.v0 + x0 * x0;
    acc.v1 = acc.v1 + x1 * x1;
    acc.v2 = acc.v2 + x2 * x2;
    acc.v3 = acc.v3 + x3 * x3;
  }
  for (std::size_t j = 0; i < n; i += kSub, ++j) {
    const std::size_t m = std::min(kSub, n - i);
    const V x = V::load_partial(a + i, m);
    acc.add_tail(j, x * x);
  }
  return acc.merge();
}

template <class V>
double dot_impl(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t kSub = V::kLanes;
  constexpr std::size_t kBlock = 4 * kSub;
  Acc4<V> acc;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    acc.v0 = acc.v0 + V::load(a + i) * V::load(b + i);
    acc.v1 = acc.v1 + V::load(a + i + kSub) * V::load(b + i + kSub);
    acc.v2 = acc.v2 + V::load(a + i + 2 * kSub) * V::load(b + i + 2 * kSub);
    acc.v3 = acc.v3 + V::load(a + i + 3 * kSub) * V::load(b + i + 3 * kSub);
  }
  for (std::size_t j = 0; i < n; i += kSub, ++j) {
    const std::size_t m = std::min(kSub, n - i);
    acc.add_tail(j, V::load_partial(a + i, m) * V::load_partial(b + i, m));
  }
  return acc.merge();
}

template <class V>
void gemv_impl(const double* m, std::size_t rows, std::size_t cols,
               const double* p, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot_impl<V>(m + r * cols, p, cols);
  }
}

template <class V>
double csr_row_dot_impl(const double* vals, const std::uint32_t* cols,
                        std::size_t nnz, const double* x) {
  constexpr std::size_t kSub = V::kLanes;
  constexpr std::size_t kBlock = 4 * kSub;
  Acc4<V> acc;
  std::size_t k = 0;
  for (; k + kBlock <= nnz; k += kBlock) {
    acc.v0 = acc.v0 + V::load(vals + k) * V::gather(x, cols + k);
    acc.v1 = acc.v1 + V::load(vals + k + kSub) * V::gather(x, cols + k + kSub);
    acc.v2 = acc.v2 +
             V::load(vals + k + 2 * kSub) * V::gather(x, cols + k + 2 * kSub);
    acc.v3 = acc.v3 +
             V::load(vals + k + 3 * kSub) * V::gather(x, cols + k + 3 * kSub);
  }
  for (std::size_t j = 0; k < nnz; k += kSub, ++j) {
    const std::size_t m = std::min(kSub, nnz - k);
    acc.add_tail(j,
                 V::load_partial(vals + k, m) * V::gather_partial(x, cols + k, m));
  }
  return acc.merge();
}

template <class V>
void lattice_floor_impl(const double* p, const double* shifts, std::size_t n,
                        double inv_cell, double* z) {
  const V vinv = V::broadcast(inv_cell);
  std::size_t t = 0;
  for (; t + V::kLanes <= n; t += V::kLanes) {
    V::floor((V::load(p + t) - V::load(shifts + t)) * vinv).store(z + t);
  }
  for (; t < n; ++t) {
    z[t] = std::floor((p[t] - shifts[t]) * inv_cell);
  }
}

template <class V>
std::size_t ball_first_cover_impl(const double* p, std::size_t dim,
                                  const double* shifts_by_dim,
                                  std::size_t num_grids, double cell,
                                  double inv_cell, double radius_sq) {
  const V vcell = V::broadcast(cell);
  const V vinv = V::broadcast(inv_cell);
  for (std::size_t u0 = 0; u0 < num_grids; u0 += V::kLanes) {
    const std::size_t lanes =
        num_grids - u0 < V::kLanes ? num_grids - u0 : V::kLanes;
    // Lanes are grids u0..u0+lanes-1; each lane accumulates its grid's
    // squared distance to the nearest lattice ball center in dimension
    // order, the same order the pre-SIMD per-grid loop used. (That loop
    // broke out early once the partial sum exceeded radius_sq; since the
    // summands are squares the full sum exceeds iff some prefix does, so
    // the cover decision is unchanged.)
    V dist = V::zero();
    for (std::size_t t = 0; t < dim; ++t) {
      const double* row = shifts_by_dim + t * num_grids + u0;
      const V s = lanes == V::kLanes ? V::load(row)
                                     : V::load_partial(row, lanes);
      const V pt = V::broadcast(p[t]);
      const V z = V::round_even((pt - s) * vinv);
      const V diff = pt - (z * vcell + s);
      dist = dist + diff * diff;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      // "Covers" is !(dist > r^2) rather than dist <= r^2 so that a NaN
      // coordinate keeps the legacy scalar behavior (its prefix sums never
      // exceeded the radius, so the first grid claimed the point).
      if (!(dist.lane(l) > radius_sq)) return u0 + l;
    }
  }
  return num_grids;
}

template <class V>
constexpr Ops make_ops(const char* name) {
  return Ops{
      name,
      &fwht_row_impl<V>,
      &scale_impl<V>,
      &l2sq_impl<V>,
      &sumsq_impl<V>,
      &dot_impl<V>,
      &gemv_impl<V>,
      &csr_row_dot_impl<V>,
      &lattice_floor_impl<V>,
      &ball_first_cover_impl<V>,
  };
}

}  // namespace mpte::simd
