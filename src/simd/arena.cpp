#include "simd/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace mpte::simd {
namespace {

constexpr std::size_t kMinBlockBytes = std::size_t{1} << 16;  // 64 KiB

std::size_t align_up(std::size_t n) {
  return (n + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

}  // namespace

void* Arena::alloc_bytes(std::size_t bytes) {
  bytes = align_up(bytes);
  if (blocks_.empty() || offset_ + bytes > blocks_[active_].size) {
    // Move to (or create) a block that fits. Existing later blocks are
    // reused if large enough; otherwise grow geometrically.
    std::size_t next = blocks_.empty() ? 0 : active_ + 1;
    while (next < blocks_.size() && blocks_[next].size < bytes) ++next;
    if (next == blocks_.size()) {
      const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
      const std::size_t size =
          std::max({kMinBlockBytes, prev * 2, bytes});
      Block block;
      // Over-allocate so the bump base can be 64-byte aligned regardless
      // of what operator new[] returns.
      block.data = std::make_unique<std::byte[]>(size + kAlignment);
      block.size = size;
      blocks_.push_back(std::move(block));
    }
    active_ = next;
    offset_ = 0;
  }
  Block& block = blocks_[active_];
  auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
  base = (base + kAlignment - 1) & ~(std::uintptr_t{kAlignment} - 1);
  void* out = reinterpret_cast<void*>(base + offset_);
  offset_ += bytes;
  block.offset = offset_;
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return out;
}

void Arena::release(const Mark& m) {
  for (std::size_t b = m.block + 1; b < blocks_.size(); ++b) {
    blocks_[b].offset = 0;
  }
  if (!blocks_.empty()) {
    active_ = m.block;
    offset_ = m.offset;
    blocks_[active_].offset = m.offset;
  }
  used_ = m.used;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Spilled: replace the chain with one block the whole round fits in.
    const std::size_t size = std::max(kMinBlockBytes, align_up(high_water_));
    blocks_.clear();
    Block block;
    block.data = std::make_unique<std::byte[]>(size + kAlignment);
    block.size = size;
    blocks_.push_back(std::move(block));
  }
  for (Block& block : blocks_) block.offset = 0;
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

Arena& scratch() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace mpte::simd
