// Compiled only on x86 builds with MPTE_SIMD=ON, with -mavx2 (see
// src/CMakeLists.txt); dispatch.cpp guards calls behind a CPUID check.
#include "simd/kernels-inl.hpp"
#include "simd/vecd_avx2.hpp"

namespace mpte::simd {

const Ops* avx2_ops() {
  static constexpr Ops kOps = make_ops<VecAvx2>("avx2");
  return &kOps;
}

}  // namespace mpte::simd
