// Scalar reference implementation of the VecD contract (simd/vecd.hpp):
// four virtual lanes held in a plain double array. Every operation is the
// exact IEEE-754 double operation the vector backends perform lane-wise,
// so instantiating the shared kernel templates (simd/kernels-inl.hpp) with
// this type defines the bit-level semantics the SSE2/AVX2 instantiations
// must (and do) reproduce.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mpte::simd {

struct VecScalar {
  static constexpr std::size_t kLanes = 4;

  double v[kLanes];

  static VecScalar zero() { return VecScalar{{0.0, 0.0, 0.0, 0.0}}; }

  static VecScalar broadcast(double x) { return VecScalar{{x, x, x, x}}; }

  static VecScalar load(const double* p) {
    return VecScalar{{p[0], p[1], p[2], p[3]}};
  }

  /// Loads n < 4 leading lanes; the rest are +0.0.
  static VecScalar load_partial(const double* p, std::size_t n) {
    VecScalar r = zero();
    for (std::size_t l = 0; l < n; ++l) r.v[l] = p[l];
    return r;
  }

  static VecScalar gather(const double* base, const std::uint32_t* idx) {
    return VecScalar{{base[idx[0]], base[idx[1]], base[idx[2]],
                      base[idx[3]]}};
  }

  /// Gathers n < 4 leading lanes; the rest are +0.0.
  static VecScalar gather_partial(const double* base,
                                  const std::uint32_t* idx, std::size_t n) {
    VecScalar r = zero();
    for (std::size_t l = 0; l < n; ++l) r.v[l] = base[idx[l]];
    return r;
  }

  void store(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }

  double lane(std::size_t l) const { return v[l]; }

  friend VecScalar operator+(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
                      a.v[3] + b.v[3]}};
  }
  friend VecScalar operator-(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
                      a.v[3] - b.v[3]}};
  }
  friend VecScalar operator*(VecScalar a, VecScalar b) {
    return VecScalar{{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
                      a.v[3] * b.v[3]}};
  }

  /// FWHT level half=1 within the block: pairs (0,1) and (2,3) become
  /// (sum, difference). Same IEEE add/sub the generic butterfly loop does;
  /// vector backends perform it with in-register shuffles.
  static VecScalar butterfly1(VecScalar a) {
    return VecScalar{{a.v[0] + a.v[1], a.v[0] - a.v[1], a.v[2] + a.v[3],
                      a.v[2] - a.v[3]}};
  }

  /// FWHT level half=2 within the block: pairs (0,2) and (1,3).
  static VecScalar butterfly2(VecScalar a) {
    return VecScalar{{a.v[0] + a.v[2], a.v[1] + a.v[3], a.v[0] - a.v[2],
                      a.v[1] - a.v[3]}};
  }

  static VecScalar floor(VecScalar a) {
    return VecScalar{{std::floor(a.v[0]), std::floor(a.v[1]),
                      std::floor(a.v[2]), std::floor(a.v[3])}};
  }

  /// Round to nearest, ties to even (the default FP environment); the
  /// semantics of _mm256_round_pd(_MM_FROUND_TO_NEAREST_INT).
  static VecScalar round_even(VecScalar a) {
    return VecScalar{{std::nearbyint(a.v[0]), std::nearbyint(a.v[1]),
                      std::nearbyint(a.v[2]), std::nearbyint(a.v[3])}};
  }
};

}  // namespace mpte::simd
