// Per-round scratch arena: a bump allocator for kernel-sized temporaries.
//
// The hot loops need short-lived buffers — a bucket's projected
// coordinates per point in core/mpc_stages, a lattice-coordinate row in
// grid_partition, staging rows in the transforms. Allocating a
// std::vector per point (or per machine step) puts malloc/free on the
// per-point path; the arena replaces that with a pointer bump into
// thread-local storage that is reset at natural boundaries (an MPC round,
// a parallel chunk) and reuses its high-water capacity forever after.
//
// Concurrency model ("par-friendly"): arenas are not thread-safe and are
// not meant to be shared. scratch() returns a thread-local arena, so every
// mpte::par worker bumps its own; Cluster::run_round wraps each machine
// step in a ScratchScope so one step's spill never grows the next step's
// footprint, and resets the coordinator's arena at round boundaries.
//
// Allocations are 64-byte aligned (cache line / any vector width) and
// uninitialized; only trivially copyable, trivially destructible element
// types are allowed.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace mpte::simd {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized span of n elements, 64-byte aligned. n = 0 returns an
  /// empty span without touching the arena.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena holds raw bytes: no constructors/destructors run");
    if (n == 0) return {};
    return {static_cast<T*>(alloc_bytes(n * sizeof(T))), n};
  }

  /// Position to rewind to; see release().
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t used = 0;
  };

  Mark mark() const { return Mark{active_, offset_, used_}; }

  /// Rewinds to a mark taken earlier on this arena. Later blocks keep
  /// their capacity but their contents are dead.
  void release(const Mark& m);

  /// Releases everything. If allocation ever spilled into a second block,
  /// the blocks are coalesced into one sized to the high-water mark, so a
  /// steady-state round bumps within a single contiguous block.
  void reset();

  /// Live bytes (including alignment padding).
  std::size_t used() const { return used_; }
  /// Total bytes owned across blocks.
  std::size_t capacity() const;
  /// Largest value used() has reached.
  std::size_t high_water() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;  // bump position within this block
  };

  void* alloc_bytes(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // block currently bumped
  std::size_t offset_ = 0;  // == blocks_[active_].offset (cached)
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

/// This thread's scratch arena (lazily created, lives for the thread).
Arena& scratch();

/// RAII watermark over an arena (default: this thread's scratch()):
/// everything allocated inside the scope is released at scope exit.
class ScratchScope {
 public:
  ScratchScope() : arena_(scratch()), mark_(arena_.mark()) {}
  explicit ScratchScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ScratchScope() { arena_.release(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace mpte::simd
