// The dispatched kernel table (mpte::simd).
//
// Every hot point kernel in the pipeline — FWHT butterflies, squared-L2 /
// norm / dot reductions, the dense GEMV and sparse CSR row products behind
// the JL transforms, and the lattice scans behind ShiftedGrid / BallGrids —
// is implemented once as a template over a 4-lane vector type `VecD`
// (simd/kernels-inl.hpp) and instantiated per backend (scalar, SSE2,
// AVX2). Call sites reach the active instantiation through simd::ops()
// (simd/dispatch.hpp).
//
// Determinism contract (docs/simd-kernels.md):
//  * One template defines every kernel; backends differ only in the VecD
//    type, whose operations are all exactly-rounded IEEE-754 double ops
//    (add/sub/mul, true floor, round-half-to-even). The op sequence —
//    including which elements meet which accumulator — is therefore
//    identical on every backend, so outputs are byte-identical across
//    scalar/SSE2/AVX2 and at any thread count.
//  * Reductions use sixteen fixed virtual accumulator lanes (four vectors
//    of four, independent so no backend serializes on one add chain):
//    element k of a (block-aligned) stream feeds vector k/4 mod 4, lane
//    k mod 4, and the merge order is pinned — vectors as
//    (v0 + v1) + (v2 + v3), then lanes as (l0 + l1) + (l2 + l3). The
//    scalar backend performs the same sixteen-lane scheme, so vector
//    width never changes a sum.
//  * Kernel TUs are compiled with -ffp-contract=off: no backend may fuse
//    a multiply-add the others perform as two rounded ops.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mpte::simd {

/// Function-pointer table of one backend's kernel instantiations.
struct Ops {
  /// Backend name ("scalar", "sse2", "avx2") for logs/metrics labels.
  const char* name;

  /// In-place unnormalized Walsh–Hadamard butterflies over one row.
  /// n must be a power of two (callers validate).
  void (*fwht_row)(double* data, std::size_t n);

  /// data[i] *= s for i in [0, n).
  void (*scale)(double* data, std::size_t n, double s);

  /// Sum of (a[i] - b[i])^2 under the virtual-lane scheme.
  double (*l2sq)(const double* a, const double* b, std::size_t n);

  /// Sum of a[i]^2 under the virtual-lane scheme.
  double (*sumsq)(const double* a, std::size_t n);

  /// Dot product under the virtual-lane scheme.
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// Dense row-major GEMV: out[r] = dot(m + r*cols, p) for r in [0, rows).
  void (*gemv)(const double* m, std::size_t rows, std::size_t cols,
               const double* p, double* out);

  /// One CSR row product: sum of vals[k] * x[cols[k]] for k in [0, nnz)
  /// under the virtual-lane scheme.
  double (*csr_row_dot)(const double* vals, const std::uint32_t* cols,
                        std::size_t nnz, const double* x);

  /// z[t] = floor((p[t] - shifts[t]) * inv_cell) for t in [0, n):
  /// the ShiftedGrid cell-coordinate kernel (elementwise, no reduction).
  void (*lattice_floor)(const double* p, const double* shifts, std::size_t n,
                        double inv_cell, double* z);

  /// BallGrids lattice scan with grids in the vector lanes: for grid u,
  /// the nearest lattice ball center is c_t = z_t * cell + s_{u,t} with
  /// z_t = round_even((p[t] - s_{u,t}) * inv_cell), and grid u covers p iff
  /// sum_t (p[t] - c_t)^2 <= radius_sq, the per-grid sum accumulated in
  /// dimension order exactly like the pre-SIMD scalar loop. `shifts_by_dim`
  /// is the transposed shift table, shifts_by_dim[t * num_grids + u].
  /// Returns the first covering grid index, or num_grids if none covers.
  std::size_t (*ball_first_cover)(const double* p, std::size_t dim,
                                  const double* shifts_by_dim,
                                  std::size_t num_grids, double cell,
                                  double inv_cell, double radius_sq);
};

/// The always-available scalar reference instantiation.
const Ops& scalar_ops();

#if defined(__x86_64__) || defined(__i386__)
#define MPTE_SIMD_X86 1
/// x86 vector instantiations; compiled only when the build enables them
/// (MPTE_SIMD=ON, the default). When compiled out these return nullptr.
const Ops* sse2_ops();
const Ops* avx2_ops();
#else
#define MPTE_SIMD_X86 0
#endif

/// Scalar round-to-nearest-even, matching VecD::round_even bit-for-bit.
/// Used by callers that re-derive a lattice coordinate the vector kernel
/// computed (e.g. the BallGrids ball-id hash).
inline double round_nearest_even(double x) { return std::nearbyint(x); }

}  // namespace mpte::simd
