// AVX2 implementation of the VecD contract: the four virtual lanes are one
// 256-bit register, so every kernel step is a single instruction. Packed
// floor/round use VROUNDPD, whose to-nearest mode is ties-to-even — the
// same result std::nearbyint produces under the default FP environment, so
// this backend is bit-identical to the scalar reference. The CSR kernel
// uses VGATHERDPD for the column loads. Compiled only in the -mavx2 TU;
// never include this header elsewhere.
#pragma once

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace mpte::simd {

struct VecAvx2 {
  static constexpr std::size_t kLanes = 4;

  __m256d v;

  static VecAvx2 zero() { return VecAvx2{_mm256_setzero_pd()}; }

  static VecAvx2 broadcast(double x) { return VecAvx2{_mm256_set1_pd(x)}; }

  static VecAvx2 load(const double* p) {
    return VecAvx2{_mm256_loadu_pd(p)};
  }

  static VecAvx2 load_partial(const double* p, std::size_t n) {
    double tmp[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t l = 0; l < n; ++l) tmp[l] = p[l];
    return load(tmp);
  }

  static VecAvx2 gather(const double* base, const std::uint32_t* idx) {
    const __m128i vindex =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    // Masked form with an explicit zero source: the plain
    // _mm256_i32gather_pd expands through _mm256_undefined_pd, which trips
    // GCC's -Wmaybe-uninitialized under -Werror.
    const __m256d ones =
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return VecAvx2{
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, vindex, ones, 8)};
  }

  static VecAvx2 gather_partial(const double* base, const std::uint32_t* idx,
                                std::size_t n) {
    double tmp[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t l = 0; l < n; ++l) tmp[l] = base[idx[l]];
    return load(tmp);
  }

  void store(double* p) const { _mm256_storeu_pd(p, v); }

  double lane(std::size_t l) const {
    double tmp[kLanes];
    store(tmp);
    return tmp[l];
  }

  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_add_pd(a.v, b.v)};
  }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_sub_pd(a.v, b.v)};
  }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) {
    return VecAvx2{_mm256_mul_pd(a.v, b.v)};
  }

  /// FWHT level half=1: [x0, x1, x2, x3] -> [x0+x1, x0-x1, x2+x3, x2-x3].
  /// The blend picks sums from x + swapped and differences from
  /// swapped - x so every selected lane is exactly a+b or a-b in the
  /// scalar orientation — no sign trick, bit-identical to the reference.
  static VecAvx2 butterfly1(VecAvx2 a) {
    const __m256d y = _mm256_permute_pd(a.v, 0b0101);  // [x1, x0, x3, x2]
    return VecAvx2{_mm256_blend_pd(_mm256_add_pd(a.v, y),
                                   _mm256_sub_pd(y, a.v), 0b1010)};
  }

  /// FWHT level half=2: [x0, x1, x2, x3] -> [x0+x2, x1+x3, x0-x2, x1-x3].
  static VecAvx2 butterfly2(VecAvx2 a) {
    const __m256d y = _mm256_permute4x64_pd(a.v, 0x4E);  // [x2, x3, x0, x1]
    return VecAvx2{_mm256_blend_pd(_mm256_add_pd(a.v, y),
                                   _mm256_sub_pd(y, a.v), 0b1100)};
  }

  static VecAvx2 floor(VecAvx2 a) {
    return VecAvx2{_mm256_floor_pd(a.v)};
  }

  static VecAvx2 round_even(VecAvx2 a) {
    return VecAvx2{_mm256_round_pd(
        a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }
};

}  // namespace mpte::simd
