// Compiled only on x86 builds with MPTE_SIMD=ON (see src/CMakeLists.txt).
#include "simd/kernels-inl.hpp"
#include "simd/vecd_sse2.hpp"

namespace mpte::simd {

const Ops* sse2_ops() {
  static constexpr Ops kOps = make_ops<VecSse2>("sse2");
  return &kOps;
}

}  // namespace mpte::simd
