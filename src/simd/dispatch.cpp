#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace mpte::simd {

#if MPTE_SIMD_X86 && !defined(MPTE_SIMD_ENABLE_VECTOR)
// The build compiled the scalar backend only (MPTE_SIMD=OFF): satisfy the
// declarations with "not compiled in" stubs so dispatch stays uniform.
const Ops* sse2_ops() { return nullptr; }
const Ops* avx2_ops() { return nullptr; }
#endif

namespace {

/// Table for a backend, or nullptr if compiled out / non-x86.
const Ops* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &scalar_ops();
#if MPTE_SIMD_X86
    case Backend::kSse2:
      return sse2_ops();
    case Backend::kAvx2:
      return avx2_ops();
#else
    case Backend::kSse2:
    case Backend::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

/// CPU support for a backend (compile-time availability checked separately).
bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
#if MPTE_SIMD_X86
    case Backend::kSse2:
      return true;  // SSE2 is the x86-64 baseline.
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2");
#else
    case Backend::kSse2:
    case Backend::kAvx2:
      return false;
#endif
  }
  return false;
}

bool is_available(Backend backend) {
  return table_for(backend) != nullptr && cpu_supports(backend);
}

std::atomic<const Ops*> g_active{nullptr};
std::mutex g_init_mutex;

/// Resolves the initial backend: MPTE_SIMD if set to an available backend,
/// else the best available. An MPTE_SIMD value that names an unavailable
/// or unknown backend falls back to auto (the env override is a tuning
/// knob; refusing to start would turn a perf setting into an outage).
const Ops* resolve_initial() {
  Backend choice = best_backend();
  if (const char* env = std::getenv("MPTE_SIMD")) {
    Backend forced;
    if (backend_from_name(env, &forced) && is_available(forced)) {
      choice = forced;
    }
  }
  return table_for(choice);
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool backend_from_name(const std::string& name, Backend* backend) {
  if (name == "scalar") {
    *backend = Backend::kScalar;
    return true;
  }
  if (name == "sse2") {
    *backend = Backend::kSse2;
    return true;
  }
  if (name == "avx2") {
    *backend = Backend::kAvx2;
    return true;
  }
  return false;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (is_available(b)) out.push_back(b);
  }
  return out;
}

Backend best_backend() {
  if (is_available(Backend::kAvx2)) return Backend::kAvx2;
  if (is_available(Backend::kSse2)) return Backend::kSse2;
  return Backend::kScalar;
}

Backend active_backend() {
  const Ops& active = ops();
  for (const Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (table_for(b) == &active) return b;
  }
  return Backend::kScalar;
}

bool set_backend(Backend backend) {
  if (!is_available(backend)) return false;
  g_active.store(table_for(backend), std::memory_order_release);
  return true;
}

const Ops& ops() {
  const Ops* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) return *active;
  std::lock_guard<std::mutex> lock(g_init_mutex);
  active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    active = resolve_initial();
    g_active.store(active, std::memory_order_release);
  }
  return *active;
}

}  // namespace mpte::simd
