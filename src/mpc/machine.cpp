#include "mpc/machine.hpp"

#include <algorithm>

namespace mpte::mpc {

void LocalStore::set_blob(const std::string& key, Buffer blob) {
  dirty_.insert(key);
  auto it = blobs_.find(key);
  if (it != blobs_.end()) {
    resident_bytes_ -= it->second.size();
    it->second = std::move(blob);
    resident_bytes_ += it->second.size();
  } else {
    resident_bytes_ += blob.size();
    blobs_.emplace(key, std::move(blob));
  }
}

const Buffer& LocalStore::blob(const std::string& key) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    throw MpteError("LocalStore: missing key '" + key + "'");
  }
  return it->second;
}

bool LocalStore::contains(const std::string& key) const {
  return blobs_.contains(key);
}

void LocalStore::erase(const std::string& key) {
  auto it = blobs_.find(key);
  if (it != blobs_.end()) {
    dirty_.insert(key);
    resident_bytes_ -= it->second.size();
    blobs_.erase(it);
  }
}

std::vector<std::pair<std::string, Buffer>> LocalStore::entries() const {
  std::vector<std::pair<std::string, Buffer>> out(blobs_.begin(),
                                                  blobs_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void LocalStore::clear() {
  for (const auto& [key, blob] : blobs_) dirty_.insert(key);
  blobs_.clear();
  resident_bytes_ = 0;
}

std::size_t Machine::inbox_bytes() const {
  std::size_t total = 0;
  for (const auto& msg : inbox) total += msg.payload.size();
  return total;
}

}  // namespace mpte::mpc
