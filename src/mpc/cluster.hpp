// The MPC cluster simulator.
//
// A Cluster owns M machines and executes *rounds*: every machine runs the
// same step function (SPMD, as in MapReduce/MPI) against its own state,
// queueing messages; at the round boundary the runtime audits the model's
// constraints — per-machine bytes sent <= local memory, bytes received <=
// local memory, residency <= local memory — then delivers all messages.
// Violations throw MpcViolation when enforcement is on, so an algorithm
// that exceeds the fully-scalable regime fails loudly in tests rather than
// silently consuming unrealistic resources. With enforcement off the
// breaches are still counted (RoundRecord::violations) so a run can report
// how far outside the model it strayed.
//
// Payloads are mpc::Buffer slabs: queueing, delivering, and storing a
// message shares one slab (refcount) rather than deep-copying, so e.g. a
// fan-out broadcast materializes its blob exactly once no matter how many
// machines receive it. Sends are attributed to named *channels* (see
// mpc/channel.hpp) and RoundStats reports bytes per channel.
//
// Machine steps within a round may execute concurrently on host threads
// (ClusterConfig::num_threads): steps are SPMD and touch only their own
// Machine and their own outbox row, so threading them is race-free by
// construction, and auditing + delivery stay in rank order, so runs remain
// bit-reproducible at every thread count. This is sound because MPC prices
// rounds and communication, not intra-round interleaving — see
// docs/mpc-model.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "mpc/machine.hpp"
#include "mpc/round_stats.hpp"
#include "mpc/step.hpp"

namespace mpte::obs {
class Registry;
}  // namespace mpte::obs

namespace mpte::mpc {

/// Thrown when an execution breaks an MPC model constraint.
class MpcViolation : public MpteError {
 public:
  explicit MpcViolation(const std::string& what) : MpteError(what) {}
};

/// Thrown by run_round when the attached ClusterHooks inject a rank crash —
/// the simulated analogue of a worker dying between rounds. Caught by
/// recovery drivers (ckpt::run_with_recovery), never by the mpc layer.
class RankCrashed : public MpteError {
 public:
  RankCrashed(MachineId rank, std::size_t round)
      : RankCrashed(rank, round,
                    "machine " + std::to_string(rank) +
                        " crashed entering round " + std::to_string(round)) {}

  MachineId rank() const { return rank_; }
  std::size_t round() const { return round_; }

 protected:
  /// For derived crash kinds (ipc::WorkerLost) that carry their own
  /// message but must still be caught by the same recovery drivers.
  RankCrashed(MachineId rank, std::size_t round, const std::string& what)
      : MpteError(what), rank_(rank), round_(round) {}

 private:
  MachineId rank_;
  std::size_t round_;
};

/// When (if ever) the attached checkpoint coordinator snapshots cluster
/// state. Plain data hung off ClusterConfig; the mpc layer itself never
/// touches disk — src/ckpt/ interprets the policy (see ckpt/manager.hpp).
struct CheckpointPolicy {
  enum class Mode : std::uint8_t {
    kOff = 0,
    /// Snapshot after every k-th committed round.
    kEveryK = 1,
    /// Snapshot once >= `byte_budget` message bytes have been exchanged
    /// since the last snapshot.
    kByteBudget = 2,
  };
  Mode mode = Mode::kOff;
  /// Directory snapshots are written into (created on demand).
  std::string directory;
  std::size_t every_k = 1;
  std::size_t byte_budget = 0;
  /// Snapshots retained on disk; older files are pruned after each write.
  std::size_t keep = 2;

  bool enabled() const { return mode != Mode::kOff; }
};

/// Which substrate executes machine steps. kInProcess simulates every
/// machine inside this process (threaded over ranks); kMultiProcess forks
/// one OS worker process per rank per round (src/ipc/) and ships results
/// back over sockets. The backends are byte-identical: audits, delivery,
/// and stats all run on the same coordinator-side code path, so the
/// golden fingerprints and per-channel byte totals never depend on the
/// choice. See docs/mpc-model.md "The process backend".
enum class Backend : std::uint8_t { kInProcess = 0, kMultiProcess = 1 };

/// Knobs for the multi-process backend; ignored under kInProcess.
struct IpcOptions {
  /// How workers are provisioned. kPersistent (the default) forks each
  /// rank once, keeps its LocalStore resident, and ships a kStep frame
  /// (StepSpec + delivered inbox) down each round — rounds that run a
  /// hosted closure fall back to fork-per-round transparently.
  /// kForkPerRound forks every rank every round (the pre-persistent
  /// behavior; closures and named steps alike inherit state copy-on-write).
  enum class WorkerMode : std::uint8_t { kForkPerRound = 0, kPersistent = 1 };
  WorkerMode workers = WorkerMode::kPersistent;
  /// Byte substrate for coordinator<->worker frames. kShmRing (the
  /// default) carries frames over per-worker shared-memory SPSC rings
  /// with large blobs passed by reference through a shared arena; frames
  /// that exceed ring capacity fall back to the socketpair (counted in
  /// mpte_ipc_fallback_frames_total, never truncated). kSocketpair is
  /// the plain-sockets path. Decoded frames are identical either way, so
  /// the choice never affects results — see docs/ipc-transport.md.
  enum class Transport : std::uint8_t { kSocketpair = 0, kShmRing = 1 };
  Transport transport = Transport::kShmRing;
  /// Per-direction ring data capacity (rounded up to a power of two) and
  /// per-direction blob arena capacity, per worker, kShmRing only.
  std::size_t shm_ring_bytes = 1u << 20;
  std::size_t shm_arena_bytes = 4u << 20;
  /// Wall-clock budget for one round barrier (provision every worker,
  /// execute the step, collect every result frame). A worker that misses
  /// it is lost: run_round throws ipc::WorkerLost (Cause::kDeadline).
  int round_deadline_ms = 60'000;
  /// Test-only fault injection: worker `kill_rank` _exits without sending
  /// its result frame when executing round `kill_at_round` (< 0 = off).
  /// Fires once per executor, so a recovered run passes the round.
  std::int64_t kill_at_round = -1;
  MachineId kill_rank = 0;
};

/// Static description of the simulated cluster.
struct ClusterConfig {
  /// Number of machines M.
  std::size_t num_machines = 4;
  /// Local memory per machine s, in bytes. In the fully scalable regime
  /// s = O((nd)^eps); see local_memory_for_input() below.
  std::size_t local_memory_bytes = 1 << 20;
  /// If true (default), constraint violations throw MpcViolation. Turning
  /// this off still records violation counts and stats — useful for
  /// measuring how much an algorithm *would* need.
  bool enforce_limits = true;
  /// Host threads executing machine steps within a round. 0 = auto
  /// (MPTE_THREADS env var, else hardware concurrency); 1 = the serial
  /// path. Results are identical at every setting; only wall-clock
  /// changes. See par::parallel_for.
  std::size_t num_threads = 0;
  /// Round-level checkpointing policy, interpreted by an attached
  /// ckpt::Coordinator (off by default; the Cluster alone never snapshots).
  CheckpointPolicy checkpoint{};
  /// Execution substrate for machine steps (see Backend above).
  Backend backend = Backend::kInProcess;
  /// Multi-process transport knobs (used only when backend selects it).
  IpcOptions ipc{};
};

/// Suggested local memory (bytes) for an input of `input_bytes` at exponent
/// eps: ceil(input_bytes^eps) * word, floored at `min_bytes` so that tiny
/// test inputs still admit nontrivial machines.
std::size_t local_memory_for_input(std::size_t input_bytes, double eps,
                                   std::size_t min_bytes = 4096);

/// One machine's queued output for a round: payload fragments per
/// destination plus per-channel byte attribution. Owned by the Cluster,
/// written only by that machine's step (race-free under threading).
struct Outbox {
  /// fragments[dst] = payloads queued to dst this round, in send order.
  std::vector<std::vector<Buffer>> fragments;
  /// Bytes queued this round keyed by channel name.
  std::map<std::string, std::size_t> channel_bytes;
};

/// Per-machine handle passed to step functions: local state access plus
/// message sending. Only valid during the round that supplied it.
class MachineContext {
 public:
  MachineContext(MachineId id, std::size_t num_machines, Machine& machine,
                 Outbox& outbox)
      : id_(id),
        num_machines_(num_machines),
        machine_(machine),
        outbox_(outbox) {}

  MachineId id() const { return id_; }
  std::size_t num_machines() const { return num_machines_; }

  LocalStore& store() { return machine_.store; }
  const LocalStore& store() const { return machine_.store; }

  /// Messages delivered at the previous round boundary, ordered by source
  /// rank (deterministic).
  const std::vector<Message>& inbox() const { return machine_.inbox; }

  /// Queues `payload` for delivery to machine `to` at the round boundary,
  /// sharing the slab (no copy). `channel` attributes the bytes in
  /// RoundStats; empty means kUntypedChannel. Typed code should go
  /// through Channel<T>::send, which names the channel for you.
  void send(MachineId to, Buffer payload, std::string_view channel = {});

  /// Queues owned bytes (wrapped into a Buffer without copying).
  void send(MachineId to, std::vector<std::uint8_t> payload,
            std::string_view channel = {}) {
    send(to, Buffer(std::move(payload)), channel);
  }

  /// Convenience: queue the contents of a Serializer.
  void send(MachineId to, Serializer serializer,
            std::string_view channel = {}) {
    send(to, Buffer(serializer.take()), channel);
  }

 private:
  MachineId id_;
  std::size_t num_machines_;
  Machine& machine_;
  Outbox& outbox_;
};

class Cluster;

/// Strategy that executes the machine steps of one round, leaving each
/// rank's post-step store in machines[rank] and its queued sends in
/// outboxes[rank]. The in-process path is inlined in run_round; the
/// multi-process backend (src/ipc/) implements this interface. Everything
/// *after* step execution — quota audits, channel merging, delivery,
/// stats — is shared coordinator-side code, which is what makes the two
/// backends byte-identical by construction.
class RoundExecutor {
 public:
  virtual ~RoundExecutor() = default;

  /// Executes `spec` for every rank of round `round`. Must either leave
  /// machines/outboxes in the exact post-step state the in-process path
  /// would produce, or throw without mutating them (so a failed round can
  /// be retried from a checkpoint).
  virtual void run_steps(const ClusterConfig& config,
                         std::vector<Machine>& machines,
                         std::vector<Outbox>& outboxes, const StepSpec& spec,
                         std::size_t round) = 0;

  /// Mirrors the executor's transport counters into `registry` under the
  /// mpte_ipc_* names (docs/observability.md).
  virtual void export_metrics(obs::Registry& registry) const = 0;

  /// Any state workers hold resident (stores shipped across rounds) is no
  /// longer authoritative — the coordinator rewrote its machines out of
  /// band (resume_from, reset_to_start). Persistent backends must tear
  /// down or resync; the default (and the fork path) has nothing to do.
  virtual void invalidate_workers() {}
};

/// Builds the multi-process executor. Declared here, defined in
/// src/ipc/proc_backend.cpp: the mpc layer stays free of fork/socket
/// code, and the two static libraries link cyclically (mpte_mpc needs
/// this factory, mpte_ipc needs the cluster machinery).
std::unique_ptr<RoundExecutor> make_multiprocess_executor();

/// Fault-injection + checkpointing interface consulted by run_round on
/// live (non-fast-forwarded) rounds only. The mpc layer defines the
/// interface; src/ckpt/ provides the concrete Coordinator (seeded
/// FaultPlan + snapshot writer). All calls happen on the driver thread.
class ClusterHooks {
 public:
  virtual ~ClusterHooks() = default;

  /// Consulted at round entry. Returning a rank makes run_round throw
  /// RankCrashed before executing any step. Implementations should
  /// consume the event (fire it once) so recovery can progress past it.
  virtual std::optional<MachineId> crash_rank(std::size_t) {
    return std::nullopt;
  }

  struct DeliveryFaults {
    std::uint32_t dropped = 0;
    std::uint32_t duplicated = 0;
  };

  /// Consulted once per (src, dst) pair that delivers a message this
  /// round. Injected faults are *masked* by the simulated substrate — a
  /// dropped message is retransmitted, a duplicate suppressed — so the
  /// delivered bytes never change and runs stay bit-reproducible; the
  /// counts surface in ResilienceCounters.
  virtual DeliveryFaults delivery_faults(std::size_t /*round*/,
                                         MachineId /*src*/,
                                         MachineId /*dst*/) {
    return {};
  }

  /// Wall-clock attribution of one committed round to the runtime's three
  /// phases: executing machine steps (compute), auditing send/recv quotas
  /// and merging channel attributions (audit), and coalescing + delivering
  /// messages + auditing residency (deliver). Purely observational — the
  /// timings never feed back into execution.
  struct RoundProfile {
    std::string_view label;
    double compute_seconds = 0.0;
    double audit_seconds = 0.0;
    double deliver_seconds = 0.0;
  };

  /// Called just before round_committed with the round's phase timings.
  /// Benches attach an obs::ProfilingHooks (src/obs/profile.hpp) to
  /// attribute time to compute vs. routing vs. audit without touching
  /// algorithm code. Timings are only measured while hooks are attached,
  /// so the hook-free hot path never reads the clock.
  virtual void round_profile(std::size_t /*round*/, const RoundProfile&) {}

  /// Called after a round is audited, delivered, and recorded. The
  /// checkpoint coordinator snapshots here: the boundary "just after
  /// run_round(round) returned" is exactly where resume_from re-enters.
  virtual void round_committed(Cluster& /*cluster*/, std::size_t /*round*/) {}
};

/// Restorable execution state — what a snapshot captures (ckpt/snapshot.hpp
/// defines the on-disk form). `records` double as the round counter:
/// resume_from skips exactly records.size() run_round calls.
struct ClusterState {
  std::vector<Machine> machines;
  std::vector<RoundRecord> records;
  Buffer driver_note;
};

/// The simulated cluster.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  std::size_t num_machines() const { return machines_.size(); }
  const ClusterConfig& config() const { return config_; }

  /// Executes one MPC round: run the spec's step on every machine, audit
  /// the model constraints, deliver messages. `label` tags the round in
  /// the stats; empty defaults to the spec's step name.
  void run_round(const StepSpec& spec, std::string label = "");

  /// Closure adapter: wraps `step` into a hosted (unnamed) StepSpec. Fine
  /// for tests and one-off drivers; under the multi-process backend a
  /// hosted step always executes via fork-per-round, since a closure
  /// cannot be shipped to a persistent worker.
  void run_round(const Step& step, std::string label = "") {
    StepSpec spec;
    spec.hosted = step;
    run_round(spec, std::move(label));
  }

  /// Host-side access to a machine's store. Loading the initial input and
  /// reading the final output happen through this (the model assumes input
  /// arrives distributed and output remains distributed; neither transfer
  /// counts as a round).
  LocalStore& store(MachineId id) { return machines_.at(id).store; }
  const LocalStore& store(MachineId id) const {
    return machines_.at(id).store;
  }

  const RoundStats& stats() const { return stats_; }
  RoundStats& stats() { return stats_; }

  // --- Fault tolerance (src/ckpt/; docs/mpc-model.md "Failure model") ---

  /// Attaches (nullptr detaches) the fault-injection / checkpointing
  /// hooks. Non-owning; the hooks must outlive their attachment.
  void set_hooks(ClusterHooks* hooks) { hooks_ = hooks; }
  ClusterHooks* hooks() const { return hooks_; }

  /// Copies the restorable state: map skeletons are copied, payload slabs
  /// are shared — immutable, so later rounds cannot corrupt the capture.
  ClusterState capture_state() const;

  /// Restores a captured/deserialized state and arms fast-forward: the
  /// next records.size() run_round calls are skipped (no steps, no hooks,
  /// no new stats records) because their effects are already in the
  /// restored stores. The driver then re-runs its pipeline from the top;
  /// host-side code between rounds keys off fast_forwarding() to suppress
  /// writes and to avoid decision-reads against fast-forwarded state.
  void resume_from(ClusterState state);

  /// Restores the pristine post-construction state — recovery when no
  /// snapshot exists yet. Resilience counters are preserved.
  void reset_to_start();

  /// True while resume_from's skip budget is unconsumed.
  bool fast_forwarding() const { return skip_rounds_ > 0; }

  /// Driver-owned annotation included in every snapshot: pipelines record
  /// host-side decisions (chosen delta, retry attempt) here so a resumed
  /// run can bypass recomputing them from state it fast-forwards over.
  void set_driver_note(Buffer note) { driver_note_ = std::move(note); }
  const Buffer& driver_note() const { return driver_note_; }

  /// The backend executor, created lazily on the first multi-process
  /// round (nullptr until then, and always under kInProcess). Tests and
  /// the CLI reach through this for transport stats and metrics.
  RoundExecutor* round_executor() const { return executor_.get(); }

 private:
  ClusterConfig config_;
  std::vector<Machine> machines_;
  RoundStats stats_;
  ClusterHooks* hooks_ = nullptr;
  std::size_t skip_rounds_ = 0;
  Buffer driver_note_;
  /// Reusable per-machine outboxes: outboxes_[src].fragments[dst] holds the
  /// Buffers queued from src to dst this round. A member (not a run_round
  /// local) so the O(M²) vector skeleton is allocated once, not rebuilt
  /// every round; cells are cleared (capacity kept) between rounds.
  std::vector<Outbox> outboxes_;
  std::unique_ptr<RoundExecutor> executor_;
};

}  // namespace mpte::mpc
