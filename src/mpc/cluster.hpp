// The MPC cluster simulator.
//
// A Cluster owns M machines and executes *rounds*: every machine runs the
// same step function (SPMD, as in MapReduce/MPI) against its own state,
// queueing messages; at the round boundary the runtime audits the model's
// constraints — per-machine bytes sent <= local memory, bytes received <=
// local memory, residency <= local memory — then delivers all messages.
// Violations throw MpcViolation when enforcement is on, so an algorithm
// that exceeds the fully-scalable regime fails loudly in tests rather than
// silently consuming unrealistic resources.
//
// Machine steps within a round may execute concurrently on host threads
// (ClusterConfig::num_threads): steps are SPMD and touch only their own
// Machine and their own outbox row, so threading them is race-free by
// construction, and auditing + delivery stay in rank order, so runs remain
// bit-reproducible at every thread count. This is sound because MPC prices
// rounds and communication, not intra-round interleaving — see
// docs/mpc-model.md.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mpc/machine.hpp"
#include "mpc/round_stats.hpp"

namespace mpte::mpc {

/// Thrown when an execution breaks an MPC model constraint.
class MpcViolation : public MpteError {
 public:
  explicit MpcViolation(const std::string& what) : MpteError(what) {}
};

/// Static description of the simulated cluster.
struct ClusterConfig {
  /// Number of machines M.
  std::size_t num_machines = 4;
  /// Local memory per machine s, in bytes. In the fully scalable regime
  /// s = O((nd)^eps); see local_memory_for_input() below.
  std::size_t local_memory_bytes = 1 << 20;
  /// If true (default), constraint violations throw MpcViolation. Turning
  /// this off still records stats — useful for measuring how much an
  /// algorithm *would* need.
  bool enforce_limits = true;
  /// Host threads executing machine steps within a round. 0 = auto
  /// (MPTE_THREADS env var, else hardware concurrency); 1 = the serial
  /// path. Results are identical at every setting; only wall-clock
  /// changes. See par::parallel_for.
  std::size_t num_threads = 0;
};

/// Suggested local memory (bytes) for an input of `input_bytes` at exponent
/// eps: ceil(input_bytes^eps) * word, floored at `min_bytes` so that tiny
/// test inputs still admit nontrivial machines.
std::size_t local_memory_for_input(std::size_t input_bytes, double eps,
                                   std::size_t min_bytes = 4096);

/// Per-machine handle passed to step functions: local state access plus
/// message sending. Only valid during the round that supplied it.
class MachineContext {
 public:
  MachineContext(MachineId id, std::size_t num_machines, Machine& machine,
                 std::vector<std::vector<std::uint8_t>>& outbox)
      : id_(id),
        num_machines_(num_machines),
        machine_(machine),
        outbox_(outbox) {}

  MachineId id() const { return id_; }
  std::size_t num_machines() const { return num_machines_; }

  LocalStore& store() { return machine_.store; }
  const LocalStore& store() const { return machine_.store; }

  /// Messages delivered at the previous round boundary, ordered by source
  /// rank (deterministic).
  const std::vector<Message>& inbox() const { return machine_.inbox; }

  /// Queues `payload` for delivery to machine `to` at the round boundary.
  void send(MachineId to, std::vector<std::uint8_t> payload);

  /// Convenience: queue the contents of a Serializer.
  void send(MachineId to, Serializer serializer) {
    send(to, serializer.take());
  }

 private:
  MachineId id_;
  std::size_t num_machines_;
  Machine& machine_;
  std::vector<std::vector<std::uint8_t>>& outbox_;  // indexed by dest rank
};

/// Step function executed by every machine in a round.
using Step = std::function<void(MachineContext&)>;

/// The simulated cluster.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  std::size_t num_machines() const { return machines_.size(); }
  const ClusterConfig& config() const { return config_; }

  /// Executes one MPC round: run `step` on every machine, audit the model
  /// constraints, deliver messages. `label` tags the round in the stats.
  void run_round(const Step& step, std::string label = "");

  /// Host-side access to a machine's store. Loading the initial input and
  /// reading the final output happen through this (the model assumes input
  /// arrives distributed and output remains distributed; neither transfer
  /// counts as a round).
  LocalStore& store(MachineId id) { return machines_.at(id).store; }
  const LocalStore& store(MachineId id) const {
    return machines_.at(id).store;
  }

  const RoundStats& stats() const { return stats_; }
  RoundStats& stats() { return stats_; }

 private:
  ClusterConfig config_;
  std::vector<Machine> machines_;
  RoundStats stats_;
  /// Reusable M×M outbox matrix: outboxes_[src][dst] = bytes queued from
  /// src to dst this round. A member (not a run_round local) so the O(M²)
  /// vector skeleton is allocated once, not rebuilt every round; cells are
  /// cleared (capacity kept) between rounds.
  std::vector<std::vector<std::vector<std::uint8_t>>> outboxes_;
};

}  // namespace mpte::mpc
