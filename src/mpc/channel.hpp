// Typed handles over the MPC byte substrate.
//
// The simulator moves raw bytes: LocalStore maps string keys to Buffers,
// MachineContext::send ships Buffers. Algorithms, though, think in records
// — "the KV edges under 'emb/edges'", "a stream of ElemRecord chunks".
// This header provides the thin typed layer between the two:
//
//   Key<T>       a named LocalStore slot holding a vector<T>
//   ValueKey<T>  a named LocalStore slot holding a single T
//   Channel<T>   a named message stream carrying batches (or raw records)
//                of T between machines
//
// Handles are just names plus a type; they hold no state and are cheap to
// copy or declare `inline const` next to the algorithm that owns them.
// Every Channel send is attributed to the channel's name in RoundStats
// (see RoundRecord::channel_bytes), so a run can report which logical
// stream dominates communication. Names travel as metadata, not on the
// wire — in the MPC model, program constants are free.
//
// Wire formats (unchanged from the untyped call sites they replace):
//   Channel<T>::send(span)   one length-prefixed batch per call
//                            (Serializer::write_span), so multiple sends
//                            to the same peer frame themselves and
//                            receive() can split them back apart.
//   Channel<T>::send_one(v)  sizeof(T) raw bytes, no prefix — for
//                            single-record reductions where the prefix
//                            would double the message size.
#pragma once

#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/serialize.hpp"
#include "mpc/cluster.hpp"
#include "mpc/machine.hpp"

namespace mpte::mpc {

/// Typed handle to a LocalStore slot holding a vector<T>.
template <typename T>
  requires std::is_trivially_copyable_v<T>
struct Key {
  std::string name;

  void set(LocalStore& store, std::span<const T> values) const {
    Serializer s(wire_size<T>(values.size()));
    s.write_span(values);
    store.set_blob(name, Buffer(s.take()));
  }
  void set(LocalStore& store, const std::vector<T>& values) const {
    set(store, std::span<const T>(values));
  }

  std::vector<T> get(const LocalStore& store) const {
    return store.get_vector<T>(name);
  }

  bool in(const LocalStore& store) const { return store.contains(name); }
  void erase(LocalStore& store) const { store.erase(name); }
};

/// Typed handle to a LocalStore slot holding a single T.
template <typename T>
  requires std::is_trivially_copyable_v<T>
struct ValueKey {
  std::string name;

  void set(LocalStore& store, const T& value) const {
    store.set_value(name, value);
  }
  T get(const LocalStore& store) const { return store.get_value<T>(name); }

  bool in(const LocalStore& store) const { return store.contains(name); }
  void erase(LocalStore& store) const { store.erase(name); }
};

/// Typed handle to a named message stream carrying records of T.
template <typename T>
  requires std::is_trivially_copyable_v<T>
struct Channel {
  std::string name;

  /// Sends one length-prefixed batch of records to `to`.
  void send(MachineContext& ctx, MachineId to,
            std::span<const T> records) const {
    Serializer s(wire_size<T>(records.size()));
    s.write_span(records);
    ctx.send(to, Buffer(s.take()), name);
  }
  void send(MachineContext& ctx, MachineId to,
            const std::vector<T>& records) const {
    send(ctx, to, std::span<const T>(records));
  }

  /// Sends a single record raw (sizeof(T) bytes, no length prefix).
  /// Receive with receive_raw(); mixing send and send_one on one channel
  /// in one round is a framing error.
  void send_one(MachineContext& ctx, MachineId to, const T& record) const {
    Serializer s(sizeof(T));
    s.write(record);
    ctx.send(to, Buffer(s.take()), name);
  }

  /// Reads every batch from every inbox message, concatenated in source
  /// rank order (deterministic). Messages may carry several batches (one
  /// per send to this receiver).
  std::vector<T> receive(MachineContext& ctx) const {
    std::vector<T> records;
    for (const auto& msg : ctx.inbox()) {
      Deserializer d(msg.payload);
      while (!d.exhausted()) {
        auto batch = d.read_vector<T>();
        records.insert(records.end(), batch.begin(), batch.end());
      }
    }
    return records;
  }

  /// Reads records sent with send_one: each inbox message is a run of raw
  /// sizeof(T) records, concatenated in source rank order.
  std::vector<T> receive_raw(MachineContext& ctx) const {
    std::vector<T> records;
    for (const auto& msg : ctx.inbox()) {
      Deserializer d(msg.payload);
      while (!d.exhausted()) records.push_back(d.read<T>());
    }
    return records;
  }
};

}  // namespace mpte::mpc
