#include "mpc/sort.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "mpc/channel.hpp"
#include "mpc/step.hpp"

namespace mpte::mpc {

namespace {

Step make_sort_sample(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  const auto seed = d.read<std::uint64_t>();
  const auto samples_per_machine = d.read<std::uint64_t>();
  return [in = Key<KV>{in_key}, samples_ch = Channel<KV>{out_key + "/__samples"},
          seed, samples_per_machine](MachineContext& ctx) {
    std::vector<KV> sample;
    if (in.in(ctx.store())) {
      const auto records = in.get(ctx.store());
      Rng rng = Rng(seed).split(ctx.id());
      if (records.size() <= samples_per_machine) {
        sample = records;
      } else {
        sample.reserve(samples_per_machine);
        for (std::size_t i = 0; i < samples_per_machine; ++i) {
          sample.push_back(records[rng.uniform_u64(records.size())]);
        }
      }
    }
    samples_ch.send(ctx, 0, sample);
  };
}

Step make_sort_select_splitters(StepParams params) {
  Deserializer d(params);
  std::string out_key = d.read_string();
  return [samples_ch = Channel<KV>{out_key + "/__samples"},
          splitters_key = Key<KV>{out_key + "/__splitters"}](
             MachineContext& ctx) {
    if (ctx.id() != 0) return;
    const std::size_t m = ctx.num_machines();
    auto samples = samples_ch.receive(ctx);
    std::sort(samples.begin(), samples.end(), kv_less);
    std::vector<KV> splitters;
    if (!samples.empty()) {
      for (std::size_t i = 1; i < m; ++i) {
        splitters.push_back(samples[i * samples.size() / m]);
      }
    }
    splitters_key.set(ctx.store(), splitters);
  };
}

Step make_sort_route(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  return [in = Key<KV>{in_key}, route_ch = Channel<KV>{in_key},
          splitters_key = Key<KV>{out_key + "/__splitters"}](
             MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    const auto splitters = splitters_key.get(ctx.store());
    splitters_key.erase(ctx.store());
    std::vector<std::vector<KV>> buckets(m);
    if (in.in(ctx.store())) {
      for (const KV& kv : in.get(ctx.store())) {
        // Bucket = number of splitters strictly less than kv.
        const auto it = std::upper_bound(splitters.begin(), splitters.end(),
                                         kv, kv_less);
        const auto bucket = static_cast<std::size_t>(it - splitters.begin());
        buckets[bucket].push_back(kv);
      }
      in.erase(ctx.store());
    }
    for (MachineId dst = 0; dst < m; ++dst) {
      if (buckets[dst].empty()) continue;
      route_ch.send(ctx, dst, buckets[dst]);
    }
  };
}

Step make_sort_local_sort(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  return [route_ch = Channel<KV>{in_key}, out = Key<KV>{out_key}](
             MachineContext& ctx) {
    auto arrived = route_ch.receive(ctx);
    std::sort(arrived.begin(), arrived.end(), kv_less);
    out.set(ctx.store(), arrived);
  };
}

const RegisterStep kRegSortSample{"sort/sample", make_sort_sample};
const RegisterStep kRegSortSelectSplitters{"sort/select-splitters",
                                           make_sort_select_splitters};
const RegisterStep kRegSortRoute{"sort/route", make_sort_route};
const RegisterStep kRegSortLocalSort{"sort/local-sort", make_sort_local_sort};

}  // namespace

void sample_sort_kv(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, const SortOptions& options) {
  const Key<KV> splitters_key{out_key + "/__splitters"};

  // Round 1: every machine sends a random sample of its records to rank 0.
  Serializer sample;
  sample.write_string(in_key);
  sample.write_string(out_key);
  sample.write(static_cast<std::uint64_t>(options.seed));
  sample.write(static_cast<std::uint64_t>(options.samples_per_machine));
  cluster.run_round(StepSpec("sort/sample", std::move(sample)));

  // Round 2: rank 0 selects M-1 splitters at even quantiles.
  Serializer select;
  select.write_string(out_key);
  cluster.run_round(StepSpec("sort/select-splitters", std::move(select)));

  broadcast_blob(cluster, 0, splitters_key.name, options.broadcast_fanout);

  // Route every record to its splitter bucket.
  Serializer route;
  route.write_string(in_key);
  route.write_string(out_key);
  cluster.run_round(StepSpec("sort/route", std::move(route)));

  // Collect and sort locally: blocks are now ordered across ranks.
  Serializer local;
  local.write_string(in_key);
  local.write_string(out_key);
  cluster.run_round(StepSpec("sort/local-sort", std::move(local)));
}

}  // namespace mpte::mpc
