#include "mpc/sort.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "mpc/channel.hpp"

namespace mpte::mpc {

void sample_sort_kv(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, const SortOptions& options) {
  const std::size_t m = cluster.num_machines();
  const Key<KV> in{in_key};
  const Key<KV> out{out_key};
  const Key<KV> splitters_key{out_key + "/__splitters"};
  const Channel<KV> samples_ch{out_key + "/__samples"};
  const Channel<KV> route_ch{in_key};

  // Round 1: every machine sends a random sample of its records to rank 0.
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<KV> sample;
        if (in.in(ctx.store())) {
          const auto records = in.get(ctx.store());
          Rng rng = Rng(options.seed).split(ctx.id());
          if (records.size() <= options.samples_per_machine) {
            sample = records;
          } else {
            sample.reserve(options.samples_per_machine);
            for (std::size_t i = 0; i < options.samples_per_machine; ++i) {
              sample.push_back(records[rng.uniform_u64(records.size())]);
            }
          }
        }
        samples_ch.send(ctx, 0, sample);
      },
      "sort/sample");

  // Round 2: rank 0 selects M-1 splitters at even quantiles.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != 0) return;
        auto samples = samples_ch.receive(ctx);
        std::sort(samples.begin(), samples.end(), kv_less);
        std::vector<KV> splitters;
        if (!samples.empty()) {
          for (std::size_t i = 1; i < m; ++i) {
            splitters.push_back(samples[i * samples.size() / m]);
          }
        }
        splitters_key.set(ctx.store(), splitters);
      },
      "sort/select-splitters");

  broadcast_blob(cluster, 0, splitters_key.name, options.broadcast_fanout);

  // Route every record to its splitter bucket.
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto splitters = splitters_key.get(ctx.store());
        splitters_key.erase(ctx.store());
        std::vector<std::vector<KV>> buckets(m);
        if (in.in(ctx.store())) {
          for (const KV& kv : in.get(ctx.store())) {
            // Bucket = number of splitters strictly less than kv.
            const auto it = std::upper_bound(splitters.begin(),
                                             splitters.end(), kv, kv_less);
            const auto bucket =
                static_cast<std::size_t>(it - splitters.begin());
            buckets[bucket].push_back(kv);
          }
          in.erase(ctx.store());
        }
        for (MachineId dst = 0; dst < m; ++dst) {
          if (buckets[dst].empty()) continue;
          route_ch.send(ctx, dst, buckets[dst]);
        }
      },
      "sort/route");

  // Collect and sort locally: blocks are now ordered across ranks.
  cluster.run_round(
      [&](MachineContext& ctx) {
        auto arrived = route_ch.receive(ctx);
        std::sort(arrived.begin(), arrived.end(), kv_less);
        out.set(ctx.store(), arrived);
      },
      "sort/local-sort");
}

}  // namespace mpte::mpc
