#include "mpc/sort.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mpte::mpc {

void sample_sort_kv(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, const SortOptions& options) {
  const std::size_t m = cluster.num_machines();
  const std::string splitters_key = out_key + "/__splitters";

  // Round 1: every machine sends a random sample of its records to rank 0.
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<KV> sample;
        if (ctx.store().contains(in_key)) {
          const auto records = ctx.store().get_vector<KV>(in_key);
          Rng rng = Rng(options.seed).split(ctx.id());
          if (records.size() <= options.samples_per_machine) {
            sample = records;
          } else {
            sample.reserve(options.samples_per_machine);
            for (std::size_t i = 0; i < options.samples_per_machine; ++i) {
              sample.push_back(records[rng.uniform_u64(records.size())]);
            }
          }
        }
        Serializer s;
        s.write_vector(sample);
        ctx.send(0, std::move(s));
      },
      "sort/sample");

  // Round 2: rank 0 selects M-1 splitters at even quantiles.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != 0) return;
        std::vector<KV> samples;
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          auto part = d.read_vector<KV>();
          samples.insert(samples.end(), part.begin(), part.end());
        }
        std::sort(samples.begin(), samples.end(), kv_less);
        std::vector<KV> splitters;
        if (!samples.empty()) {
          for (std::size_t i = 1; i < m; ++i) {
            splitters.push_back(samples[i * samples.size() / m]);
          }
        }
        ctx.store().set_vector(splitters_key, splitters);
      },
      "sort/select-splitters");

  broadcast_blob(cluster, 0, splitters_key, options.broadcast_fanout);

  // Route every record to its splitter bucket.
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto splitters = ctx.store().get_vector<KV>(splitters_key);
        ctx.store().erase(splitters_key);
        std::vector<std::vector<KV>> buckets(m);
        if (ctx.store().contains(in_key)) {
          for (const KV& kv : ctx.store().get_vector<KV>(in_key)) {
            // Bucket = number of splitters strictly less than kv.
            const auto it = std::upper_bound(splitters.begin(),
                                             splitters.end(), kv, kv_less);
            const auto bucket =
                static_cast<std::size_t>(it - splitters.begin());
            buckets[bucket].push_back(kv);
          }
          ctx.store().erase(in_key);
        }
        for (MachineId dst = 0; dst < m; ++dst) {
          if (buckets[dst].empty()) continue;
          Serializer s;
          s.write_vector(buckets[dst]);
          ctx.send(dst, std::move(s));
        }
      },
      "sort/route");

  // Collect and sort locally: blocks are now ordered across ranks.
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<KV> arrived;
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          while (!d.exhausted()) {
            auto part = d.read_vector<KV>();
            arrived.insert(arrived.end(), part.begin(), part.end());
          }
        }
        std::sort(arrived.begin(), arrived.end(), kv_less);
        ctx.store().set_vector(out_key, arrived);
      },
      "sort/local-sort");
}

}  // namespace mpte::mpc
