#include "mpc/round_stats.hpp"

#include <algorithm>
#include <sstream>

namespace mpte::mpc {

void RoundStats::record(RoundRecord record) {
  peak_local_bytes_ = std::max(peak_local_bytes_, record.max_resident_bytes);
  peak_total_bytes_ = std::max(peak_total_bytes_, record.total_resident_bytes);
  peak_round_io_bytes_ = std::max(
      {peak_round_io_bytes_, record.max_sent_bytes, record.max_recv_bytes});
  total_violations_ += record.violations;
  for (const auto& [channel, bytes] : record.channel_bytes) {
    channel_totals_[channel] += bytes;
  }
  records_.push_back(std::move(record));
}

void RoundStats::rollback(std::vector<RoundRecord> records) {
  records_.clear();
  peak_local_bytes_ = 0;
  peak_total_bytes_ = 0;
  peak_round_io_bytes_ = 0;
  total_violations_ = 0;
  channel_totals_.clear();
  records_.reserve(records.size());
  for (auto& r : records) record(std::move(r));
}

std::vector<std::pair<std::string, std::size_t>> RoundStats::channel_totals()
    const {
  std::vector<std::pair<std::string, std::size_t>> totals(
      channel_totals_.begin(), channel_totals_.end());
  std::sort(totals.begin(), totals.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return totals;
}

std::string RoundStats::summary() const {
  std::ostringstream out;
  out << "rounds=" << rounds() << " peak_local=" << peak_local_bytes()
      << "B peak_total=" << peak_total_bytes()
      << "B peak_round_io=" << peak_round_io_bytes() << "B";
  if (total_violations_ > 0) out << " violations=" << total_violations_;
  out << "\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& r = records_[i];
    out << "  round " << i << (r.label.empty() ? "" : " [" + r.label + "]")
        << ": sent<=" << r.max_sent_bytes << "B recv<=" << r.max_recv_bytes
        << "B volume=" << r.total_message_bytes
        << "B local<=" << r.max_resident_bytes << "B\n";
  }
  const auto channels = channel_totals();
  if (!channels.empty()) {
    out << "  channels:";
    for (const auto& [channel, bytes] : channels) {
      out << " " << channel << "=" << bytes << "B";
    }
    out << "\n";
  }
  if (resilience_.any()) {
    out << "  ckpt: checkpoints=" << resilience_.checkpoints_written << " ("
        << resilience_.checkpoint_bytes << "B, "
        << resilience_.checkpoint_seconds * 1e3 << "ms)"
        << " recoveries=" << resilience_.recoveries << " ("
        << resilience_.recovery_seconds * 1e3 << "ms)"
        << " replayed=" << resilience_.rounds_replayed
        << " crashes=" << resilience_.crashes_injected
        << " drops=" << resilience_.drops_retransmitted
        << " dups=" << resilience_.duplicates_suppressed << "\n";
  }
  return out.str();
}

void RoundStats::reset() {
  resilience_ = ResilienceCounters{};
  records_.clear();
  peak_local_bytes_ = 0;
  peak_total_bytes_ = 0;
  peak_round_io_bytes_ = 0;
  total_violations_ = 0;
  channel_totals_.clear();
}

}  // namespace mpte::mpc
