#include "mpc/round_stats.hpp"

#include <algorithm>
#include <sstream>

namespace mpte::mpc {

void RoundStats::record(RoundRecord record) {
  peak_local_bytes_ = std::max(peak_local_bytes_, record.max_resident_bytes);
  peak_total_bytes_ = std::max(peak_total_bytes_, record.total_resident_bytes);
  peak_round_io_bytes_ = std::max(
      {peak_round_io_bytes_, record.max_sent_bytes, record.max_recv_bytes});
  records_.push_back(std::move(record));
}

std::string RoundStats::summary() const {
  std::ostringstream out;
  out << "rounds=" << rounds() << " peak_local=" << peak_local_bytes()
      << "B peak_total=" << peak_total_bytes()
      << "B peak_round_io=" << peak_round_io_bytes() << "B\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& r = records_[i];
    out << "  round " << i << (r.label.empty() ? "" : " [" + r.label + "]")
        << ": sent<=" << r.max_sent_bytes << "B recv<=" << r.max_recv_bytes
        << "B volume=" << r.total_message_bytes
        << "B local<=" << r.max_resident_bytes << "B\n";
  }
  return out.str();
}

void RoundStats::reset() {
  records_.clear();
  peak_local_bytes_ = 0;
  peak_total_bytes_ = 0;
  peak_round_io_bytes_ = 0;
}

}  // namespace mpte::mpc
