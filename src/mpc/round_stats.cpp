#include "mpc/round_stats.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"

namespace mpte::mpc {

void RoundStats::record(RoundRecord record) {
  peak_local_bytes_ = std::max(peak_local_bytes_, record.max_resident_bytes);
  peak_total_bytes_ = std::max(peak_total_bytes_, record.total_resident_bytes);
  peak_round_io_bytes_ = std::max(
      {peak_round_io_bytes_, record.max_sent_bytes, record.max_recv_bytes});
  total_violations_ += record.violations;
  for (const auto& [channel, bytes] : record.channel_bytes) {
    channel_totals_[channel] += bytes;
  }
  records_.push_back(std::move(record));
}

void RoundStats::rollback(std::vector<RoundRecord> records) {
  records_.clear();
  peak_local_bytes_ = 0;
  peak_total_bytes_ = 0;
  peak_round_io_bytes_ = 0;
  total_violations_ = 0;
  channel_totals_.clear();
  records_.reserve(records.size());
  for (auto& r : records) record(std::move(r));
}

std::vector<std::pair<std::string, std::size_t>> RoundStats::channel_totals()
    const {
  std::vector<std::pair<std::string, std::size_t>> totals(
      channel_totals_.begin(), channel_totals_.end());
  std::sort(totals.begin(), totals.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return totals;
}

void RoundStats::export_metrics(obs::Registry* registry) const {
  using obs::Labels;
  registry->counter("mpte_mpc_rounds_total", "MPC rounds executed.")
      .set(records_.size());
  registry
      ->gauge("mpte_mpc_peak_local_bytes",
              "Peak per-machine residency over all rounds (empirical local "
              "memory).")
      .set(static_cast<double>(peak_local_bytes_));
  registry
      ->gauge("mpte_mpc_peak_total_bytes",
              "Peak sum of machine residencies (empirical total space).")
      .set(static_cast<double>(peak_total_bytes_));
  registry
      ->gauge("mpte_mpc_peak_round_io_bytes",
              "Peak per-machine bytes sent or received in one round.")
      .set(static_cast<double>(peak_round_io_bytes_));
  registry
      ->counter("mpte_mpc_violations_total",
                "Model-constraint breaches recorded (enforcement off).")
      .set(total_violations_);
  std::size_t message_bytes = 0;
  auto& volume_histogram = registry->histogram(
      "mpte_mpc_round_message_bytes",
      "Per-round communication volume (log2 buckets).");
  for (const auto& r : records_) {
    message_bytes += r.total_message_bytes;
    volume_histogram.observe(r.total_message_bytes);
  }
  registry
      ->counter("mpte_mpc_message_bytes_total",
                "Message bytes exchanged over all rounds.")
      .set(message_bytes);
  for (const auto& [channel, bytes] : channel_totals_) {
    registry
        ->counter("mpte_mpc_channel_bytes_total",
                  "Message bytes per named channel.",
                  Labels{{"channel", channel}})
        .set(bytes);
  }
  registry
      ->counter("mpte_ckpt_checkpoints_total", "Snapshots written.")
      .set(resilience_.checkpoints_written);
  registry
      ->counter("mpte_ckpt_checkpoint_bytes_total",
                "Cumulative encoded snapshot size.")
      .set(resilience_.checkpoint_bytes);
  registry
      ->gauge("mpte_ckpt_checkpoint_seconds_total",
              "Wall-clock spent writing snapshots.")
      .set(resilience_.checkpoint_seconds);
  registry
      ->counter("mpte_ckpt_recoveries_total",
                "Crash recoveries (snapshot restore or reset-to-start).")
      .set(resilience_.recoveries);
  registry
      ->gauge("mpte_ckpt_recovery_seconds_total",
              "Wall-clock spent restoring snapshots.")
      .set(resilience_.recovery_seconds);
  registry
      ->counter("mpte_ckpt_rounds_replayed_total",
                "Rounds fast-forwarded after restore instead of re-executed.")
      .set(resilience_.rounds_replayed);
  registry
      ->counter("mpte_ckpt_crashes_injected_total", "Injected rank crashes.")
      .set(resilience_.crashes_injected);
  registry
      ->counter("mpte_ckpt_drops_retransmitted_total",
                "Injected message drops masked by retransmission.")
      .set(resilience_.drops_retransmitted);
  registry
      ->counter("mpte_ckpt_duplicates_suppressed_total",
                "Injected duplicate deliveries suppressed.")
      .set(resilience_.duplicates_suppressed);
}

std::string RoundStats::summary() const {
  // Aggregates render from the exported registry — the same numbers the
  // Prometheus text (--metrics-out, serve `metrics`) reports.
  obs::Registry registry;
  export_metrics(&registry);
  std::ostringstream out;
  out << "rounds=" << registry.counter_value("mpte_mpc_rounds_total")
      << " peak_local="
      << static_cast<std::size_t>(
             registry.gauge_value("mpte_mpc_peak_local_bytes"))
      << "B peak_total="
      << static_cast<std::size_t>(
             registry.gauge_value("mpte_mpc_peak_total_bytes"))
      << "B peak_round_io="
      << static_cast<std::size_t>(
             registry.gauge_value("mpte_mpc_peak_round_io_bytes"))
      << "B";
  const std::uint64_t violations =
      registry.counter_value("mpte_mpc_violations_total");
  if (violations > 0) out << " violations=" << violations;
  out << "\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& r = records_[i];
    out << "  round " << i << (r.label.empty() ? "" : " [" + r.label + "]")
        << ": sent<=" << r.max_sent_bytes << "B recv<=" << r.max_recv_bytes
        << "B volume=" << r.total_message_bytes
        << "B local<=" << r.max_resident_bytes << "B\n";
  }
  // Per-channel totals, read back from the registry's labeled counters and
  // re-sorted descending by bytes (ties by name) for the report.
  std::vector<std::pair<std::string, std::size_t>> channels;
  for (const auto& sample : registry.samples()) {
    if (sample.name != "mpte_mpc_channel_bytes_total") continue;
    channels.emplace_back(sample.labels.at("channel"),
                          static_cast<std::size_t>(sample.value));
  }
  std::sort(channels.begin(), channels.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (!channels.empty()) {
    out << "  channels:";
    for (const auto& [channel, bytes] : channels) {
      out << " " << channel << "=" << bytes << "B";
    }
    out << "\n";
  }
  if (resilience_.any()) {
    out << "  ckpt: checkpoints="
        << registry.counter_value("mpte_ckpt_checkpoints_total") << " ("
        << registry.counter_value("mpte_ckpt_checkpoint_bytes_total") << "B, "
        << registry.gauge_value("mpte_ckpt_checkpoint_seconds_total") * 1e3
        << "ms)"
        << " recoveries=" << registry.counter_value("mpte_ckpt_recoveries_total")
        << " (" << registry.gauge_value("mpte_ckpt_recovery_seconds_total") * 1e3
        << "ms)"
        << " replayed="
        << registry.counter_value("mpte_ckpt_rounds_replayed_total")
        << " crashes="
        << registry.counter_value("mpte_ckpt_crashes_injected_total")
        << " drops="
        << registry.counter_value("mpte_ckpt_drops_retransmitted_total")
        << " dups="
        << registry.counter_value("mpte_ckpt_duplicates_suppressed_total")
        << "\n";
  }
  return out.str();
}

void RoundStats::reset() {
  resilience_ = ResilienceCounters{};
  records_.clear();
  peak_local_bytes_ = 0;
  peak_total_bytes_ = 0;
  peak_round_io_bytes_ = 0;
  total_violations_ = 0;
  channel_totals_.clear();
}

}  // namespace mpte::mpc
