// Classic MPC building blocks over the Cluster runtime.
//
// These are the standard constant-round primitives MPC algorithms are
// composed from (Goodrich–Sitchinava–Zhang): scatter/gather of the
// distributed input/output (host-side, not rounds — the model assumes the
// input starts distributed), fan-out-tree broadcast (O(log_f M) rounds,
// constant once f = M^Theta(eps)), hash shuffles, and key-wise reductions.
// Sample sort lives in mpc/sort.hpp.
//
// Record type: most of the library's communication is (key, value) pairs of
// 64-bit words — tree-node ids, counts, bucket indices — so the primitives
// are concrete over KV rather than templated, keeping the wire format and
// the byte accounting transparent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/cluster.hpp"

namespace mpte::mpc {

/// The primitive record: a 64-bit key with a 64-bit value.
struct KV {
  std::uint64_t key;
  std::uint64_t value;

  friend bool operator==(const KV&, const KV&) = default;
};

/// Orders by key, then value (a total order so sorts are deterministic).
bool kv_less(const KV& a, const KV& b);

// ---------------------------------------------------------------------------
// Host-side input/output (not rounds).

/// Splits `items` into contiguous blocks of ceil(n/M) and stores block i
/// under `key` on machine i (trailing machines may receive empty blocks).
template <typename T>
  requires std::is_trivially_copyable_v<T>
void scatter_vector(Cluster& cluster, const std::string& key,
                    const std::vector<T>& items) {
  // During fast-forward after a snapshot restore the scatter's effect is
  // already part of the restored stores (or was consumed by rounds that
  // will be skipped); writing would desynchronize residency from the
  // original run. All host-side writes share this guard.
  if (cluster.fast_forwarding()) return;
  const std::size_t m = cluster.num_machines();
  const std::size_t block = (items.size() + m - 1) / std::max<std::size_t>(m, 1);
  for (MachineId id = 0; id < m; ++id) {
    const std::size_t begin = std::min(items.size(), id * block);
    const std::size_t end = std::min(items.size(), begin + block);
    cluster.store(id).set_vector<T>(
        key, std::vector<T>(items.begin() + begin, items.begin() + end));
  }
}

/// Concatenates the vectors stored under `key` across machines, in rank
/// order. Machines without the key contribute nothing.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> gather_vector(const Cluster& cluster, const std::string& key) {
  std::vector<T> out;
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    if (!cluster.store(id).contains(key)) continue;
    auto part = cluster.store(id).get_vector<T>(key);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Communication rounds.

/// Replicates the blob stored under `key` on `root` to every machine, via a
/// fan-out tree of degree `fanout`: each round every holder forwards to
/// `fanout` new machines, so ceil(log_{fanout+1} M) rounds. With
/// fanout = Theta(M^eps) this is the textbook O(1/eps)-round broadcast.
/// Requires blob size * fanout <= local memory.
void broadcast_blob(Cluster& cluster, MachineId root, const std::string& key,
                    std::size_t fanout);

/// One-round hash shuffle: routes every KV stored under `in_key` to machine
/// hash(key) % M and stores the arrivals (sorted by kv_less, for
/// determinism) under `out_key`. All records with equal keys land on one
/// machine.
void shuffle_kv_by_key(Cluster& cluster, const std::string& in_key,
                       const std::string& out_key);

/// shuffle_kv_by_key followed by local deduplication (exact duplicates
/// collapse to one). Used to take the union of root-to-leaf paths in
/// Algorithm 2.
void dedup_kv(Cluster& cluster, const std::string& in_key,
              const std::string& out_key);

/// shuffle_kv_by_key followed by local per-key summation of values; the
/// result under `out_key` holds one KV per distinct key.
void reduce_kv_sum(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key);

/// shuffle_kv_by_key followed by local per-key minimum of values; the
/// result under `out_key` holds one KV per distinct key. Used to elect
/// per-cluster representatives (min point index) in the MPC MST.
void reduce_kv_min(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key);

/// Two-round global sum of the std::uint64_t stored under `in_key` on every
/// machine: converge-cast to `root`, which stores the total under
/// `out_key`, then a broadcast is the caller's choice. Requires
/// M * sizeof(u64) <= local memory (true for all fully scalable settings).
void sum_u64(Cluster& cluster, const std::string& in_key,
             const std::string& out_key, MachineId root = 0);

/// Like sum_u64 for doubles (used to converge-cast per-machine partial
/// EMD/cost sums).
void sum_double(Cluster& cluster, const std::string& in_key,
                const std::string& out_key, MachineId root = 0);

/// Global exclusive prefix sum over the u64 vectors stored under `in_key`
/// (elements ordered by machine rank, then position): the classic O(1)-
/// round scan — local sums converge-cast to rank 0, per-machine offsets
/// broadcast back via the fan-out tree, local scan. The result vector
/// (same shape as the input) is stored under `out_key`; element e receives
/// the sum of all elements strictly before it.
void prefix_sum_u64(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, std::size_t fanout = 4);

}  // namespace mpte::mpc
