// The named-step program layer.
//
// A round's computation used to be only an anonymous host closure
// (`Step`), which the multi-process backend could not ship to a
// long-lived worker — it had to fork a fresh child per round to inherit
// the closure. A `StepSpec` makes the program *nameable*: a stable step
// name plus an explicitly serialized parameter Buffer, resolved through a
// process-wide `StepRegistry` of factories. The coordinator can then send
// the spec down a socket and a persistent worker, which inherited the
// registry when it forked, rebuilds the identical step on its side.
//
// Closures remain first-class: a `StepSpec` may instead carry a `hosted`
// closure (tests, one-off experiments), which executes on every backend
// via the fork-per-round fallback. Registration happens in the driver TU
// that issues the round (static-init `RegisterStep` objects), so linking
// the driver guarantees its steps resolve — in this process and in every
// worker forked from it.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialize.hpp"
#include "mpc/machine.hpp"

namespace mpte::mpc {

class MachineContext;
struct Outbox;

/// Step function executed by every machine in a round.
using Step = std::function<void(MachineContext&)>;

/// View of a spec's serialized parameters, as handed to a factory. Plain
/// bytes (not a Buffer): spec construction is control-plane and must not
/// materialize slabs — the zero-copy accounting tracks data-plane only.
using StepParams = std::span<const std::uint8_t>;

/// One round's program: either a registered name + serialized parameters
/// (shippable to persistent workers) or a hosted closure (executable only
/// where it was built). Exactly one of the two is meaningful; `named()`
/// says which.
struct StepSpec {
  /// Registered step name, e.g. "shuffle/route". Empty for hosted steps.
  std::string name;
  /// Serialized parameters handed to the registered factory. The factory
  /// contract is that (name, params) fully determines the step — nothing
  /// data-dependent may be captured host-side.
  std::vector<std::uint8_t> params;
  /// Host closure fallback; set iff `name` is empty.
  Step hosted;

  StepSpec() = default;
  StepSpec(std::string step_name, std::vector<std::uint8_t> step_params)
      : name(std::move(step_name)), params(std::move(step_params)) {}
  /// Convenience: serialize parameters in place.
  StepSpec(std::string step_name, Serializer step_params)
      : name(std::move(step_name)), params(step_params.take()) {}
  explicit StepSpec(std::string step_name) : name(std::move(step_name)) {}

  bool named() const { return !name.empty(); }
};

/// Process-wide map from step names to factories. Populated at static
/// initialization by `RegisterStep` objects in driver TUs; read-only
/// afterwards. Workers fork after static init, so the registry's contents
/// are identical on both ends of a socket by construction.
class StepRegistry {
 public:
  using Factory = std::function<Step(StepParams params)>;

  static StepRegistry& global();

  /// Registers `factory` under `name`; throws MpteError on a duplicate
  /// (two TUs claiming one name is a program bug, not a race to win).
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;

  /// Builds the step for (name, params); throws MpteError on an unknown
  /// name — the caller's binary does not link the driver that defines it.
  Step instantiate(const std::string& name, StepParams params) const;

  /// Registered names, sorted (diagnostics).
  std::vector<std::string> names() const;

 private:
  StepRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Static-init registrar: `static const RegisterStep reg{"name", factory};`
/// in the TU that issues the round.
struct RegisterStep {
  RegisterStep(const char* name, StepRegistry::Factory factory);
};

/// The executable for `spec`: the hosted closure if present, else the
/// registry instantiation.
Step resolve_step(const StepSpec& spec);

/// Runs one rank's step and captures its sends: scratch-arena scope,
/// MachineContext construction, step call. The single definition shared
/// by the in-process round path and the ipc workers, so the two backends
/// cannot drift in how a step observes its machine.
void execute_rank_step(MachineId rank, std::size_t num_machines,
                       Machine& machine, Outbox& outbox, const Step& step);

}  // namespace mpte::mpc
