#include "mpc/primitives.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mpte::mpc {

bool kv_less(const KV& a, const KV& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

void broadcast_blob(Cluster& cluster, MachineId root, const std::string& key,
                    std::size_t fanout) {
  if (fanout == 0) throw MpteError("broadcast_blob: fanout must be >= 1");
  const std::size_t m = cluster.num_machines();
  // Virtual ranks place the root at 0; holders are virtual ranks < holders.
  const auto to_virtual = [&](MachineId real) {
    return (real + m - root) % m;
  };
  const auto to_real = [&](std::size_t virt) {
    return static_cast<MachineId>((virt + root) % m);
  };

  std::size_t holders = 1;
  while (holders < m) {
    const std::size_t holders_before = holders;
    cluster.run_round(
        [&](MachineContext& ctx) {
          // A machine that received the blob last round persists it first —
          // it may already be a sender this round.
          if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
            ctx.store().set_blob(key, ctx.inbox().front().payload);
          }
          const std::size_t virt = to_virtual(ctx.id());
          if (virt < holders_before) {
            // Holder #virt feeds virtual ranks holders_before + virt*fanout
            // + j for j < fanout.
            for (std::size_t j = 0; j < fanout; ++j) {
              const std::size_t dest_virt =
                  holders_before + virt * fanout + j;
              if (dest_virt >= m) break;
              ctx.send(to_real(dest_virt), ctx.store().blob(key));
            }
          }
        },
        "broadcast/" + key);
    holders = std::min(m, holders_before * (fanout + 1));
  }
  // Final delivery round: ranks that received in the last exchange still
  // hold the blob only in their inbox; persist it.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
          ctx.store().set_blob(key, ctx.inbox().front().payload);
        }
      },
      "broadcast/" + key + "/persist");
}

namespace {

/// Routes each machine's `in_key` records to hash(key) % M, storing sorted
/// arrivals under `out_key`.
void shuffle_round(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key, const std::string& label) {
  const std::size_t m = cluster.num_machines();
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<std::vector<KV>> buckets(m);
        if (ctx.store().contains(in_key)) {
          for (const KV& kv : ctx.store().get_vector<KV>(in_key)) {
            buckets[mix64(kv.key) % m].push_back(kv);
          }
          ctx.store().erase(in_key);
        }
        for (MachineId dst = 0; dst < m; ++dst) {
          if (buckets[dst].empty()) continue;
          Serializer s;
          s.write_vector(buckets[dst]);
          ctx.send(dst, std::move(s));
        }
      },
      label + "/route");
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<KV> arrived;
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          while (!d.exhausted()) {
            auto part = d.read_vector<KV>();
            arrived.insert(arrived.end(), part.begin(), part.end());
          }
        }
        std::sort(arrived.begin(), arrived.end(), kv_less);
        ctx.store().set_vector(out_key, arrived);
      },
      label + "/collect");
}

}  // namespace

void shuffle_kv_by_key(Cluster& cluster, const std::string& in_key,
                       const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "shuffle");
}

void dedup_kv(Cluster& cluster, const std::string& in_key,
              const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "dedup");
  cluster.run_round(
      [&](MachineContext& ctx) {
        auto records = ctx.store().get_vector<KV>(out_key);
        records.erase(std::unique(records.begin(), records.end()),
                      records.end());
        ctx.store().set_vector(out_key, records);
      },
      "dedup/unique");
}

void reduce_kv_sum(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "reduce");
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto records = ctx.store().get_vector<KV>(out_key);
        std::vector<KV> reduced;
        for (const KV& kv : records) {
          if (!reduced.empty() && reduced.back().key == kv.key) {
            reduced.back().value += kv.value;
          } else {
            reduced.push_back(kv);
          }
        }
        ctx.store().set_vector(out_key, reduced);
      },
      "reduce/combine");
}

void reduce_kv_min(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "reduce-min");
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto records = ctx.store().get_vector<KV>(out_key);
        std::vector<KV> reduced;
        for (const KV& kv : records) {
          if (!reduced.empty() && reduced.back().key == kv.key) {
            reduced.back().value = std::min(reduced.back().value, kv.value);
          } else {
            reduced.push_back(kv);
          }
        }
        ctx.store().set_vector(out_key, reduced);
      },
      "reduce-min/combine");
}

void sum_u64(Cluster& cluster, const std::string& in_key,
             const std::string& out_key, MachineId root) {
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::uint64_t value = 0;
        if (ctx.store().contains(in_key)) {
          value = ctx.store().get_value<std::uint64_t>(in_key);
        }
        Serializer s;
        s.write(value);
        ctx.send(root, std::move(s));
      },
      "sum_u64/send");
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != root) return;
        std::uint64_t total = 0;
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          total += d.read<std::uint64_t>();
        }
        ctx.store().set_value(out_key, total);
      },
      "sum_u64/combine");
}

void sum_double(Cluster& cluster, const std::string& in_key,
                const std::string& out_key, MachineId root) {
  cluster.run_round(
      [&](MachineContext& ctx) {
        double value = 0.0;
        if (ctx.store().contains(in_key)) {
          value = ctx.store().get_value<double>(in_key);
        }
        Serializer s;
        s.write(value);
        ctx.send(root, std::move(s));
      },
      "sum_double/send");
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != root) return;
        double total = 0.0;
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          total += d.read<double>();
        }
        ctx.store().set_value(out_key, total);
      },
      "sum_double/combine");
}

void prefix_sum_u64(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, std::size_t fanout) {
  const std::string offsets_key = out_key + "/__offsets";

  // Local sums to rank 0.
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::uint64_t local = 0;
        if (ctx.store().contains(in_key)) {
          for (const std::uint64_t v :
               ctx.store().get_vector<std::uint64_t>(in_key)) {
            local += v;
          }
        }
        Serializer s;
        s.write(ctx.id());
        s.write(local);
        ctx.send(0, std::move(s));
      },
      "prefix/local-sums");

  // Rank 0 computes per-machine exclusive offsets.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != 0) return;
        std::vector<std::uint64_t> sums(ctx.num_machines(), 0);
        for (const Message& msg : ctx.inbox()) {
          Deserializer d(msg.payload);
          const auto rank = d.read<MachineId>();
          sums[rank] = d.read<std::uint64_t>();
        }
        std::vector<std::uint64_t> offsets(ctx.num_machines(), 0);
        for (std::size_t r = 1; r < offsets.size(); ++r) {
          offsets[r] = offsets[r - 1] + sums[r - 1];
        }
        ctx.store().set_vector(offsets_key, offsets);
      },
      "prefix/offsets");

  mpc::broadcast_blob(cluster, 0, offsets_key, fanout);

  // Local exclusive scan shifted by the machine's offset.
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto offsets =
            ctx.store().get_vector<std::uint64_t>(offsets_key);
        ctx.store().erase(offsets_key);
        std::vector<std::uint64_t> out;
        if (ctx.store().contains(in_key)) {
          std::uint64_t running = offsets[ctx.id()];
          for (const std::uint64_t v :
               ctx.store().get_vector<std::uint64_t>(in_key)) {
            out.push_back(running);
            running += v;
          }
        }
        ctx.store().set_vector(out_key, out);
      },
      "prefix/scan");
}

}  // namespace mpte::mpc
