#include "mpc/primitives.hpp"

#include <algorithm>
#include <functional>

#include "common/rng.hpp"
#include "mpc/channel.hpp"

namespace mpte::mpc {

bool kv_less(const KV& a, const KV& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

void broadcast_blob(Cluster& cluster, MachineId root, const std::string& key,
                    std::size_t fanout) {
  if (fanout == 0) throw MpteError("broadcast_blob: fanout must be >= 1");
  const std::size_t m = cluster.num_machines();
  // Virtual ranks place the root at 0; holders are virtual ranks < holders.
  const auto to_virtual = [&](MachineId real) {
    return (real + m - root) % m;
  };
  const auto to_real = [&](std::size_t virt) {
    return static_cast<MachineId>((virt + root) % m);
  };

  std::size_t holders = 1;
  while (holders < m) {
    const std::size_t holders_before = holders;
    cluster.run_round(
        [&](MachineContext& ctx) {
          // A machine that received the blob last round persists it first —
          // it may already be a sender this round. Persisting shares the
          // delivered slab; forwarding shares it again: the blob is
          // materialized once, cluster-wide, no matter how many receivers.
          if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
            ctx.store().set_blob(key, ctx.inbox().front().payload);
          }
          const std::size_t virt = to_virtual(ctx.id());
          if (virt < holders_before) {
            // Holder #virt feeds virtual ranks holders_before + virt*fanout
            // + j for j < fanout.
            for (std::size_t j = 0; j < fanout; ++j) {
              const std::size_t dest_virt =
                  holders_before + virt * fanout + j;
              if (dest_virt >= m) break;
              ctx.send(to_real(dest_virt), ctx.store().blob(key), key);
            }
          }
        },
        "broadcast/" + key);
    holders = std::min(m, holders_before * (fanout + 1));
  }
  // Final delivery round: ranks that received in the last exchange still
  // hold the blob only in their inbox; persist it.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
          ctx.store().set_blob(key, ctx.inbox().front().payload);
        }
      },
      "broadcast/" + key + "/persist");
}

namespace {

/// Routes each machine's `in` records to hash(key) % M, storing sorted
/// arrivals under `out`. Bytes are attributed to channel `in.name`.
void shuffle_round(Cluster& cluster, const Key<KV>& in, const Key<KV>& out,
                   const std::string& label) {
  const std::size_t m = cluster.num_machines();
  const Channel<KV> ch{in.name};
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::vector<std::vector<KV>> buckets(m);
        if (in.in(ctx.store())) {
          for (const KV& kv : in.get(ctx.store())) {
            buckets[mix64(kv.key) % m].push_back(kv);
          }
          in.erase(ctx.store());
        }
        for (MachineId dst = 0; dst < m; ++dst) {
          if (buckets[dst].empty()) continue;
          ch.send(ctx, dst, buckets[dst]);
        }
      },
      label + "/route");
  cluster.run_round(
      [&](MachineContext& ctx) {
        auto arrived = ch.receive(ctx);
        std::sort(arrived.begin(), arrived.end(), kv_less);
        out.set(ctx.store(), arrived);
      },
      label + "/collect");
}

/// Shared body of the key-wise reductions: shuffle, then fold runs of equal
/// keys with `combine` (records arrive sorted by kv_less, so equal keys are
/// adjacent). The sum and min reductions differ only in the fold.
void reduce_kv(Cluster& cluster, const std::string& in_key,
               const std::string& out_key, const std::string& label,
               const std::function<std::uint64_t(std::uint64_t,
                                                 std::uint64_t)>& combine) {
  const Key<KV> out{out_key};
  shuffle_round(cluster, Key<KV>{in_key}, out, label);
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto records = out.get(ctx.store());
        std::vector<KV> reduced;
        for (const KV& kv : records) {
          if (!reduced.empty() && reduced.back().key == kv.key) {
            reduced.back().value = combine(reduced.back().value, kv.value);
          } else {
            reduced.push_back(kv);
          }
        }
        out.set(ctx.store(), reduced);
      },
      label + "/combine");
}

}  // namespace

void shuffle_kv_by_key(Cluster& cluster, const std::string& in_key,
                       const std::string& out_key) {
  shuffle_round(cluster, Key<KV>{in_key}, Key<KV>{out_key}, "shuffle");
}

void dedup_kv(Cluster& cluster, const std::string& in_key,
              const std::string& out_key) {
  const Key<KV> out{out_key};
  shuffle_round(cluster, Key<KV>{in_key}, out, "dedup");
  cluster.run_round(
      [&](MachineContext& ctx) {
        auto records = out.get(ctx.store());
        records.erase(std::unique(records.begin(), records.end()),
                      records.end());
        out.set(ctx.store(), records);
      },
      "dedup/unique");
}

void reduce_kv_sum(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  reduce_kv(cluster, in_key, out_key, "reduce",
            [](std::uint64_t acc, std::uint64_t v) { return acc + v; });
}

void reduce_kv_min(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  reduce_kv(cluster, in_key, out_key, "reduce-min",
            [](std::uint64_t acc, std::uint64_t v) {
              return std::min(acc, v);
            });
}

void sum_u64(Cluster& cluster, const std::string& in_key,
             const std::string& out_key, MachineId root) {
  const ValueKey<std::uint64_t> in{in_key};
  const Channel<std::uint64_t> ch{in_key};
  cluster.run_round(
      [&](MachineContext& ctx) {
        const std::uint64_t value =
            in.in(ctx.store()) ? in.get(ctx.store()) : 0;
        ch.send_one(ctx, root, value);
      },
      "sum_u64/send");
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != root) return;
        std::uint64_t total = 0;
        for (const std::uint64_t v : ch.receive_raw(ctx)) total += v;
        ctx.store().set_value(out_key, total);
      },
      "sum_u64/combine");
}

void sum_double(Cluster& cluster, const std::string& in_key,
                const std::string& out_key, MachineId root) {
  const ValueKey<double> in{in_key};
  const Channel<double> ch{in_key};
  cluster.run_round(
      [&](MachineContext& ctx) {
        const double value = in.in(ctx.store()) ? in.get(ctx.store()) : 0.0;
        ch.send_one(ctx, root, value);
      },
      "sum_double/send");
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != root) return;
        double total = 0.0;
        for (const double v : ch.receive_raw(ctx)) total += v;
        ctx.store().set_value(out_key, total);
      },
      "sum_double/combine");
}

namespace {

/// Wire record of prefix_sum's converge-cast: which rank is reporting and
/// its local sum.
struct RankSum {
  std::uint64_t rank;
  std::uint64_t sum;
};

}  // namespace

void prefix_sum_u64(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, std::size_t fanout) {
  const Key<std::uint64_t> in{in_key};
  const Key<std::uint64_t> offsets{out_key + "/__offsets"};
  const Channel<RankSum> ch{in_key};

  // Local sums to rank 0.
  cluster.run_round(
      [&](MachineContext& ctx) {
        std::uint64_t local = 0;
        if (in.in(ctx.store())) {
          for (const std::uint64_t v : in.get(ctx.store())) local += v;
        }
        ch.send_one(ctx, 0, RankSum{ctx.id(), local});
      },
      "prefix/local-sums");

  // Rank 0 computes per-machine exclusive offsets.
  cluster.run_round(
      [&](MachineContext& ctx) {
        if (ctx.id() != 0) return;
        std::vector<std::uint64_t> sums(ctx.num_machines(), 0);
        for (const RankSum& rs : ch.receive_raw(ctx)) {
          sums.at(rs.rank) = rs.sum;
        }
        std::vector<std::uint64_t> out(ctx.num_machines(), 0);
        for (std::size_t r = 1; r < out.size(); ++r) {
          out[r] = out[r - 1] + sums[r - 1];
        }
        offsets.set(ctx.store(), out);
      },
      "prefix/offsets");

  mpc::broadcast_blob(cluster, 0, offsets.name, fanout);

  // Local exclusive scan shifted by the machine's offset.
  cluster.run_round(
      [&](MachineContext& ctx) {
        const auto machine_offsets = offsets.get(ctx.store());
        offsets.erase(ctx.store());
        std::vector<std::uint64_t> out;
        if (in.in(ctx.store())) {
          std::uint64_t running = machine_offsets[ctx.id()];
          for (const std::uint64_t v : in.get(ctx.store())) {
            out.push_back(running);
            running += v;
          }
        }
        ctx.store().set_vector(out_key, out);
      },
      "prefix/scan");
}

}  // namespace mpte::mpc
