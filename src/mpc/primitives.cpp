#include "mpc/primitives.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "mpc/channel.hpp"
#include "mpc/step.hpp"

namespace mpte::mpc {

bool kv_less(const KV& a, const KV& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

// Every round body below is a *registered named step*: the factory
// deserializes the round's parameters from the spec's Buffer and returns
// the step closure. Nothing data-dependent is captured host-side — that
// is what lets the multi-process backend ship the (name, params) pair to
// a persistent worker and rebuild the identical step there.
namespace {

Step make_broadcast_forward(StepParams params) {
  Deserializer d(params);
  std::string key = d.read_string();
  const auto holders_before = d.read<std::uint64_t>();
  const auto fanout = d.read<std::uint64_t>();
  const auto root = d.read<MachineId>();
  return [key = std::move(key), holders_before, fanout,
          root](MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    // Virtual ranks place the root at 0; holders are virtual ranks <
    // holders_before. A machine that received the blob last round
    // persists it first — it may already be a sender this round.
    // Persisting shares the delivered slab; forwarding shares it again:
    // the blob is materialized once, cluster-wide, no matter how many
    // receivers.
    if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
      ctx.store().set_blob(key, ctx.inbox().front().payload);
    }
    const std::size_t virt = (ctx.id() + m - root) % m;
    if (virt < holders_before) {
      // Holder #virt feeds virtual ranks holders_before + virt*fanout + j
      // for j < fanout.
      for (std::size_t j = 0; j < fanout; ++j) {
        const std::size_t dest_virt = holders_before + virt * fanout + j;
        if (dest_virt >= m) break;
        const auto dest = static_cast<MachineId>((dest_virt + root) % m);
        ctx.send(dest, ctx.store().blob(key), key);
      }
    }
  };
}

Step make_broadcast_persist(StepParams params) {
  Deserializer d(params);
  std::string key = d.read_string();
  return [key = std::move(key)](MachineContext& ctx) {
    if (!ctx.store().contains(key) && !ctx.inbox().empty()) {
      ctx.store().set_blob(key, ctx.inbox().front().payload);
    }
  };
}

Step make_shuffle_route(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  return [in = Key<KV>{in_key}, ch = Channel<KV>{in_key}](
             MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    std::vector<std::vector<KV>> buckets(m);
    if (in.in(ctx.store())) {
      for (const KV& kv : in.get(ctx.store())) {
        buckets[mix64(kv.key) % m].push_back(kv);
      }
      in.erase(ctx.store());
    }
    for (MachineId dst = 0; dst < m; ++dst) {
      if (buckets[dst].empty()) continue;
      ch.send(ctx, dst, buckets[dst]);
    }
  };
}

Step make_shuffle_collect(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  return [ch = Channel<KV>{in_key}, out = Key<KV>{out_key}](
             MachineContext& ctx) {
    auto arrived = ch.receive(ctx);
    std::sort(arrived.begin(), arrived.end(), kv_less);
    out.set(ctx.store(), arrived);
  };
}

/// Combiner selector for "reduce/combine" — an enum on the wire instead
/// of a host std::function, so the fold crosses the process boundary.
enum class Combiner : std::uint8_t { kSum = 0, kMin = 1 };

Step make_reduce_combine(StepParams params) {
  Deserializer d(params);
  std::string out_key = d.read_string();
  const auto combiner = static_cast<Combiner>(d.read<std::uint8_t>());
  return [out = Key<KV>{out_key}, combiner](MachineContext& ctx) {
    const auto records = out.get(ctx.store());
    std::vector<KV> reduced;
    for (const KV& kv : records) {
      if (!reduced.empty() && reduced.back().key == kv.key) {
        reduced.back().value =
            combiner == Combiner::kMin
                ? std::min(reduced.back().value, kv.value)
                : reduced.back().value + kv.value;
      } else {
        reduced.push_back(kv);
      }
    }
    out.set(ctx.store(), reduced);
  };
}

Step make_dedup_unique(StepParams params) {
  Deserializer d(params);
  std::string out_key = d.read_string();
  return [out = Key<KV>{out_key}](MachineContext& ctx) {
    auto records = out.get(ctx.store());
    records.erase(std::unique(records.begin(), records.end()),
                  records.end());
    out.set(ctx.store(), records);
  };
}

Step make_sum_u64_send(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  const auto root = d.read<MachineId>();
  return [in = ValueKey<std::uint64_t>{in_key},
          ch = Channel<std::uint64_t>{in_key}, root](MachineContext& ctx) {
    const std::uint64_t value = in.in(ctx.store()) ? in.get(ctx.store()) : 0;
    ch.send_one(ctx, root, value);
  };
}

Step make_sum_u64_combine(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  const auto root = d.read<MachineId>();
  return [ch = Channel<std::uint64_t>{in_key},
          out_key = std::move(out_key), root](MachineContext& ctx) {
    if (ctx.id() != root) return;
    std::uint64_t total = 0;
    for (const std::uint64_t v : ch.receive_raw(ctx)) total += v;
    ctx.store().set_value(out_key, total);
  };
}

Step make_sum_double_send(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  const auto root = d.read<MachineId>();
  return [in = ValueKey<double>{in_key}, ch = Channel<double>{in_key},
          root](MachineContext& ctx) {
    const double value = in.in(ctx.store()) ? in.get(ctx.store()) : 0.0;
    ch.send_one(ctx, root, value);
  };
}

Step make_sum_double_combine(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  const auto root = d.read<MachineId>();
  return [ch = Channel<double>{in_key}, out_key = std::move(out_key),
          root](MachineContext& ctx) {
    if (ctx.id() != root) return;
    double total = 0.0;
    for (const double v : ch.receive_raw(ctx)) total += v;
    ctx.store().set_value(out_key, total);
  };
}

/// Wire record of prefix_sum's converge-cast: which rank is reporting and
/// its local sum.
struct RankSum {
  std::uint64_t rank;
  std::uint64_t sum;
};

Step make_prefix_local_sums(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  return [in = Key<std::uint64_t>{in_key},
          ch = Channel<RankSum>{in_key}](MachineContext& ctx) {
    std::uint64_t local = 0;
    if (in.in(ctx.store())) {
      for (const std::uint64_t v : in.get(ctx.store())) local += v;
    }
    ch.send_one(ctx, 0, RankSum{ctx.id(), local});
  };
}

Step make_prefix_offsets(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string offsets_key = d.read_string();
  return [ch = Channel<RankSum>{in_key},
          offsets = Key<std::uint64_t>{offsets_key}](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    std::vector<std::uint64_t> sums(ctx.num_machines(), 0);
    for (const RankSum& rs : ch.receive_raw(ctx)) {
      sums.at(rs.rank) = rs.sum;
    }
    std::vector<std::uint64_t> out(ctx.num_machines(), 0);
    for (std::size_t r = 1; r < out.size(); ++r) {
      out[r] = out[r - 1] + sums[r - 1];
    }
    offsets.set(ctx.store(), out);
  };
}

Step make_prefix_scan(StepParams params) {
  Deserializer d(params);
  std::string in_key = d.read_string();
  std::string out_key = d.read_string();
  return [in = Key<std::uint64_t>{in_key},
          offsets = Key<std::uint64_t>{out_key + "/__offsets"},
          out_key = std::move(out_key)](MachineContext& ctx) {
    const auto machine_offsets = offsets.get(ctx.store());
    offsets.erase(ctx.store());
    std::vector<std::uint64_t> out;
    if (in.in(ctx.store())) {
      std::uint64_t running = machine_offsets[ctx.id()];
      for (const std::uint64_t v : in.get(ctx.store())) {
        out.push_back(running);
        running += v;
      }
    }
    ctx.store().set_vector(out_key, out);
  };
}

const RegisterStep kRegBroadcastForward{"broadcast/forward",
                                        make_broadcast_forward};
const RegisterStep kRegBroadcastPersist{"broadcast/persist",
                                        make_broadcast_persist};
const RegisterStep kRegShuffleRoute{"shuffle/route", make_shuffle_route};
const RegisterStep kRegShuffleCollect{"shuffle/collect", make_shuffle_collect};
const RegisterStep kRegReduceCombine{"reduce/combine", make_reduce_combine};
const RegisterStep kRegDedupUnique{"dedup/unique", make_dedup_unique};
const RegisterStep kRegSumU64Send{"sum_u64/send", make_sum_u64_send};
const RegisterStep kRegSumU64Combine{"sum_u64/combine", make_sum_u64_combine};
const RegisterStep kRegSumDoubleSend{"sum_double/send", make_sum_double_send};
const RegisterStep kRegSumDoubleCombine{"sum_double/combine",
                                        make_sum_double_combine};
const RegisterStep kRegPrefixLocalSums{"prefix/local-sums",
                                       make_prefix_local_sums};
const RegisterStep kRegPrefixOffsets{"prefix/offsets", make_prefix_offsets};
const RegisterStep kRegPrefixScan{"prefix/scan", make_prefix_scan};

/// Routes each machine's `in_key` records to hash(key) % M, storing
/// sorted arrivals under `out_key`. Bytes are attributed to channel
/// `in_key`; `label` prefixes the round labels in the stats.
void shuffle_round(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key, const std::string& label) {
  Serializer route;
  route.write_string(in_key);
  cluster.run_round(StepSpec("shuffle/route", std::move(route)),
                    label + "/route");
  Serializer collect;
  collect.write_string(in_key);
  collect.write_string(out_key);
  cluster.run_round(StepSpec("shuffle/collect", std::move(collect)),
                    label + "/collect");
}

/// Shared body of the key-wise reductions: shuffle, then fold runs of
/// equal keys (records arrive sorted by kv_less, so equal keys are
/// adjacent). The sum and min reductions differ only in the fold enum.
void reduce_kv(Cluster& cluster, const std::string& in_key,
               const std::string& out_key, const std::string& label,
               Combiner combiner) {
  shuffle_round(cluster, in_key, out_key, label);
  Serializer combine;
  combine.write_string(out_key);
  combine.write(static_cast<std::uint8_t>(combiner));
  cluster.run_round(StepSpec("reduce/combine", std::move(combine)),
                    label + "/combine");
}

}  // namespace

void broadcast_blob(Cluster& cluster, MachineId root, const std::string& key,
                    std::size_t fanout) {
  if (fanout == 0) throw MpteError("broadcast_blob: fanout must be >= 1");
  const std::size_t m = cluster.num_machines();
  std::size_t holders = 1;
  while (holders < m) {
    const std::size_t holders_before = holders;
    Serializer p;
    p.write_string(key);
    p.write(static_cast<std::uint64_t>(holders_before));
    p.write(static_cast<std::uint64_t>(fanout));
    p.write(root);
    cluster.run_round(StepSpec("broadcast/forward", std::move(p)),
                      "broadcast/" + key);
    holders = std::min(m, holders_before * (fanout + 1));
  }
  // Final delivery round: ranks that received in the last exchange still
  // hold the blob only in their inbox; persist it.
  Serializer p;
  p.write_string(key);
  cluster.run_round(StepSpec("broadcast/persist", std::move(p)),
                    "broadcast/" + key + "/persist");
}

void shuffle_kv_by_key(Cluster& cluster, const std::string& in_key,
                       const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "shuffle");
}

void dedup_kv(Cluster& cluster, const std::string& in_key,
              const std::string& out_key) {
  shuffle_round(cluster, in_key, out_key, "dedup");
  Serializer p;
  p.write_string(out_key);
  cluster.run_round(StepSpec("dedup/unique", std::move(p)));
}

void reduce_kv_sum(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  reduce_kv(cluster, in_key, out_key, "reduce", Combiner::kSum);
}

void reduce_kv_min(Cluster& cluster, const std::string& in_key,
                   const std::string& out_key) {
  reduce_kv(cluster, in_key, out_key, "reduce-min", Combiner::kMin);
}

void sum_u64(Cluster& cluster, const std::string& in_key,
             const std::string& out_key, MachineId root) {
  Serializer send;
  send.write_string(in_key);
  send.write(root);
  cluster.run_round(StepSpec("sum_u64/send", std::move(send)));
  Serializer combine;
  combine.write_string(in_key);
  combine.write_string(out_key);
  combine.write(root);
  cluster.run_round(StepSpec("sum_u64/combine", std::move(combine)));
}

void sum_double(Cluster& cluster, const std::string& in_key,
                const std::string& out_key, MachineId root) {
  Serializer send;
  send.write_string(in_key);
  send.write(root);
  cluster.run_round(StepSpec("sum_double/send", std::move(send)));
  Serializer combine;
  combine.write_string(in_key);
  combine.write_string(out_key);
  combine.write(root);
  cluster.run_round(StepSpec("sum_double/combine", std::move(combine)));
}

void prefix_sum_u64(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key, std::size_t fanout) {
  const std::string offsets_key = out_key + "/__offsets";

  // Local sums to rank 0.
  Serializer local;
  local.write_string(in_key);
  cluster.run_round(StepSpec("prefix/local-sums", std::move(local)));

  // Rank 0 computes per-machine exclusive offsets.
  Serializer offsets;
  offsets.write_string(in_key);
  offsets.write_string(offsets_key);
  cluster.run_round(StepSpec("prefix/offsets", std::move(offsets)));

  mpc::broadcast_blob(cluster, 0, offsets_key, fanout);

  // Local exclusive scan shifted by the machine's offset.
  Serializer scan;
  scan.write_string(in_key);
  scan.write_string(out_key);
  cluster.run_round(StepSpec("prefix/scan", std::move(scan)));
}

}  // namespace mpte::mpc
