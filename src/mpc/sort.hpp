// Constant-round distributed sample sort.
//
// Sorting is *the* workhorse primitive of MPC (Goodrich et al. showed most
// MapReduce algorithms reduce to it). This is the classic O(1)-round sample
// sort: every machine contributes a random sample, one machine selects M-1
// splitter keys at even quantiles, splitters are broadcast via the fan-out
// tree, records are routed to their splitter bucket, and each machine sorts
// locally. Afterwards the records under `out_key` are globally sorted by
// kv_less across machine ranks.
#pragma once

#include <string>

#include "mpc/primitives.hpp"

namespace mpte::mpc {

/// Tuning knobs for sample sort.
struct SortOptions {
  /// Random samples each machine contributes (more samples → better load
  /// balance; the classic analysis wants Theta(log M) per splitter).
  std::size_t samples_per_machine = 64;
  /// Fan-out of the splitter broadcast tree.
  std::size_t broadcast_fanout = 4;
  /// Seed for sampling.
  std::uint64_t seed = 0x5a17b0a7u;
};

/// Sorts the KV records distributed under `in_key` (consumed) and leaves
/// them globally sorted under `out_key`: machine i's block precedes machine
/// i+1's, and each block is locally sorted.
void sample_sort_kv(Cluster& cluster, const std::string& in_key,
                    const std::string& out_key,
                    const SortOptions& options = {});

}  // namespace mpte::mpc
