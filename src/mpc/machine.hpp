// A simulated MPC machine: its local store and message buffers.
//
// In the MPC model (Karloff–Suri–Vassilvitskii; Beame–Koutris–Suciu) each
// machine holds O((nd)^eps) local memory, computes locally within a round,
// and exchanges messages whose per-machine total is bounded by that same
// local memory. `Machine` models exactly the state side of this: a byte-
// accounted key/value store (the machine's RAM between rounds) and an inbox
// of messages delivered at the last round boundary.
//
// Payloads everywhere are mpc::Buffer — immutable refcounted slabs — so
// storing a delivered message, broadcasting a blob, or self-sending shares
// one slab instead of deep-copying. The byte accounting is unchanged: a
// slab's bytes are charged to every store/inbox that references it (the
// model prices what a machine *holds*, not how the host deduplicates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "mpc/buffer.hpp"

namespace mpte::mpc {

/// Rank of a machine within a cluster.
using MachineId = std::uint32_t;

/// A routed message: payload bytes plus source rank (dest is implicit in
/// which inbox it sits in).
struct Message {
  MachineId from;
  Buffer payload;
};

/// Byte-accounted key/value RAM of one machine. Keys are names chosen by
/// the algorithm ("points", "grids", ...); values are serialized blobs.
/// Every byte stored counts against the machine's local-memory budget.
class LocalStore {
 public:
  /// Replaces the blob under `key`, sharing the slab (no copy).
  void set_blob(const std::string& key, Buffer blob);

  /// Replaces the blob under `key`, taking ownership of the bytes.
  void set_blob(const std::string& key, std::vector<std::uint8_t> blob) {
    set_blob(key, Buffer(std::move(blob)));
  }

  /// Read access; throws MpteError if absent.
  const Buffer& blob(const std::string& key) const;

  bool contains(const std::string& key) const;

  /// Removes a blob (no-op if absent), freeing its bytes.
  void erase(const std::string& key);

  /// Removes everything.
  void clear();

  /// Serializes a trivially copyable vector under `key`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void set_vector(const std::string& key, const std::vector<T>& values) {
    Serializer s(wire_size<T>(values.size()));
    s.write_vector(values);
    set_blob(key, Buffer(s.take()));
  }

  /// Reads back a vector stored by set_vector.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector(const std::string& key) const {
    Deserializer d(blob(key));
    return d.read_vector<T>();
  }

  /// Stores a single trivially copyable value under `key`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void set_value(const std::string& key, const T& value) {
    Serializer s(sizeof(T));
    s.write(value);
    set_blob(key, Buffer(s.take()));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get_value(const std::string& key) const {
    Deserializer d(blob(key));
    return d.read<T>();
  }

  /// Every (key, blob) pair, sorted by key. Blob Buffers share their slabs
  /// with the store (no copy). Snapshots serialize through this: the sort
  /// makes the encoded bytes independent of hash-map iteration order.
  std::vector<std::pair<std::string, Buffer>> entries() const;

  /// Total bytes currently resident (payloads only; key names and map
  /// overhead are bookkeeping the model does not price).
  std::size_t resident_bytes() const { return resident_bytes_; }

  /// Keys whose mapping changed (set, erased, or cleared away) since the
  /// last clear_dirty(), in sorted order. The multi-process backend ships
  /// exactly these keys back to the coordinator after a step, so a round
  /// that touches one blob does not re-serialize the whole store.
  const std::set<std::string>& dirty_keys() const { return dirty_; }
  void clear_dirty() { dirty_.clear(); }

 private:
  std::unordered_map<std::string, Buffer> blobs_;
  std::size_t resident_bytes_ = 0;
  std::set<std::string> dirty_;
};

/// Full per-machine state: RAM plus the inbox delivered at the last round
/// boundary.
struct Machine {
  LocalStore store;
  std::vector<Message> inbox;

  /// Bytes held in the inbox (counted as resident until consumed).
  std::size_t inbox_bytes() const;
};

}  // namespace mpte::mpc
