#include "mpc/step.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "common/status.hpp"
#include "mpc/cluster.hpp"
#include "simd/arena.hpp"

namespace mpte::mpc {

struct StepRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Factory> factories;
};

StepRegistry& StepRegistry::global() {
  static StepRegistry registry;
  return registry;
}

StepRegistry::Impl& StepRegistry::impl() const {
  static Impl instance;
  return instance;
}

void StepRegistry::add(std::string name, Factory factory) {
  if (name.empty()) throw MpteError("StepRegistry: empty step name");
  if (!factory) throw MpteError("StepRegistry: null factory for " + name);
  auto& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto [it, inserted] =
      state.factories.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    throw MpteError("StepRegistry: duplicate step name " + it->first);
  }
}

bool StepRegistry::contains(std::string_view name) const {
  auto& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.factories.find(std::string(name)) != state.factories.end();
}

Step StepRegistry::instantiate(const std::string& name,
                               StepParams params) const {
  Factory factory;
  {
    auto& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.factories.find(name);
    if (it == state.factories.end()) {
      throw MpteError("StepRegistry: unknown step name " + name);
    }
    factory = it->second;
  }
  return factory(params);
}

std::vector<std::string> StepRegistry::names() const {
  auto& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<std::string> out;
  out.reserve(state.factories.size());
  for (const auto& [name, factory] : state.factories) out.push_back(name);
  return out;
}

RegisterStep::RegisterStep(const char* name, StepRegistry::Factory factory) {
  StepRegistry::global().add(name, std::move(factory));
}

Step resolve_step(const StepSpec& spec) {
  if (spec.hosted) return spec.hosted;
  if (!spec.named()) throw MpteError("resolve_step: empty StepSpec");
  return StepRegistry::global().instantiate(spec.name, spec.params);
}

void execute_rank_step(MachineId rank, std::size_t num_machines,
                       Machine& machine, Outbox& outbox, const Step& step) {
  // ScratchScope reclaims kernel temporaries the step bumped off the
  // executing thread's arena before the next rank's step reuses it.
  simd::ScratchScope scratch_scope;
  MachineContext ctx(rank, num_machines, machine, outbox);
  step(ctx);
}

}  // namespace mpte::mpc
