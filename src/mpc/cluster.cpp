#include "mpc/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "simd/arena.hpp"

namespace mpte::mpc {

std::size_t local_memory_for_input(std::size_t input_bytes, double eps,
                                   std::size_t min_bytes) {
  const double s =
      std::pow(std::max<double>(1.0, static_cast<double>(input_bytes)), eps);
  return std::max(min_bytes, static_cast<std::size_t>(std::ceil(s)));
}

void MachineContext::send(MachineId to, Buffer payload,
                          std::string_view channel) {
  if (to >= num_machines_) {
    throw MpcViolation("send: destination rank out of range");
  }
  if (channel.empty()) channel = kUntypedChannel;
  outbox_.channel_bytes[std::string(channel)] += payload.size();
  // Multiple sends to the same destination within a round are concatenated
  // at delivery; receivers see one message per (sender, round). Senders
  // that need framing write their own length prefixes (Serializer does).
  outbox_.fragments[to].push_back(std::move(payload));
}

namespace {

/// Collapses the fragments queued from one sender to one receiver into the
/// single delivered payload. The common case — one send — moves the Buffer
/// (shares the slab, zero copy); only genuine multi-send cells concatenate
/// into a fresh slab.
Buffer coalesce(std::vector<Buffer>& fragments) {
  if (fragments.size() == 1) return std::move(fragments.front());
  std::size_t total = 0;
  for (const auto& f : fragments) total += f.size();
  std::vector<std::uint8_t> joined;
  joined.reserve(total);
  for (const auto& f : fragments) {
    joined.insert(joined.end(), f.data(), f.data() + f.size());
  }
  return Buffer(std::move(joined));
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(config) {
  if (config_.num_machines == 0) {
    throw MpteError("Cluster: need at least one machine");
  }
  machines_.resize(config_.num_machines);
  outboxes_.resize(config_.num_machines);
  for (auto& row : outboxes_) row.fragments.resize(config_.num_machines);
}

ClusterState Cluster::capture_state() const {
  ClusterState state;
  state.machines = machines_;
  state.records = stats_.records();
  state.driver_note = driver_note_;
  return state;
}

void Cluster::resume_from(ClusterState state) {
  if (state.machines.size() != machines_.size()) {
    throw MpteError("resume_from: snapshot has " +
                    std::to_string(state.machines.size()) +
                    " machines, cluster has " +
                    std::to_string(machines_.size()));
  }
  machines_ = std::move(state.machines);
  skip_rounds_ = state.records.size();
  stats_.rollback(std::move(state.records));
  driver_note_ = std::move(state.driver_note);
  if (executor_) executor_->invalidate_workers();
}

void Cluster::reset_to_start() {
  for (auto& machine : machines_) {
    machine.store.clear();
    machine.inbox.clear();
  }
  skip_rounds_ = 0;
  stats_.rollback({});
  driver_note_ = Buffer();
  if (executor_) executor_->invalidate_workers();
}

void Cluster::run_round(const StepSpec& spec, std::string label) {
  if (label.empty()) label = spec.name;
  if (skip_rounds_ > 0) {
    // Fast-forward after resume_from: the restored state already contains
    // this round's effects, and its restored RoundRecord stands in for the
    // one a live execution would append. No steps, no hooks, no audits.
    --skip_rounds_;
    ++stats_.resilience().rounds_replayed;
    return;
  }
  const std::size_t round = stats_.rounds();
  if (hooks_ != nullptr) {
    if (const auto crashed = hooks_->crash_rank(round)) {
      ++stats_.resilience().crashes_injected;
      throw RankCrashed(*crashed, round);
    }
  }
  // Observation only: the span reads the clock and appends to the trace
  // ring; nothing here feeds back into the computation, so output stays
  // byte-identical with tracing on or off.
  const obs::Span span("mpc",
                       label.empty() ? std::string("round")
                                     : "round/" + label,
                       "round", round);
  // Phase timings for the round_profile hook; measured only when hooks are
  // attached so the hook-free path never reads the clock.
  using ProfileClock = std::chrono::steady_clock;
  const bool profiling = hooks_ != nullptr;
  ProfileClock::time_point t_start, t_stepped, t_audited, t_delivered;
  if (profiling) t_start = ProfileClock::now();
  const std::size_t m = machines_.size();
  // Reset the reusable outbox matrix; clear() keeps capacity, so rounds
  // after the first only allocate for payloads that outgrow last round's.
  for (auto& row : outboxes_) {
    for (auto& cell : row.fragments) cell.clear();
    row.channel_bytes.clear();
  }

  // Execute the machine steps. In-process: possibly concurrently — each
  // step touches only its own Machine and outbox row, so chunking the
  // rank range over threads is race-free. An exception from a step
  // (lowest rank wins, as in serial order) propagates after all steps
  // finish; the audit below never runs on a failed round. Each step runs
  // under a ScratchScope so kernel temporaries it bumped off the worker's
  // scratch arena are reclaimed before the next machine's step reuses the
  // thread. Multi-process: the executor forks one worker per rank and
  // leaves machines_/outboxes_ in the identical post-step state, so
  // everything below this block is backend-independent.
  auto& outboxes = outboxes_;
  if (config_.backend == Backend::kMultiProcess) {
    if (!executor_) executor_ = make_multiprocess_executor();
    executor_->run_steps(config_, machines_, outboxes_, spec, round);
  } else {
    // Resolve once (registry lookup or hosted closure) and share the Step
    // across threads — std::function invocation is const and race-free.
    const Step step = resolve_step(spec);
    par::parallel_for(
        0, m,
        [&](std::size_t begin, std::size_t end) {
          for (MachineId id = begin; id < end; ++id) {
            execute_rank_step(id, m, machines_[id], outboxes[id], step);
          }
        },
        config_.num_threads);
  }
  if (profiling) t_stepped = ProfileClock::now();
  // Round boundary: coalesce any spill the coordinator thread's arena
  // accumulated (steps may have run inline here when the round was
  // executed serially), so steady-state rounds bump within one block.
  simd::scratch().reset();

  RoundRecord record;
  record.label = std::move(label);

  // Audit send quotas, merge channel attributions (rank order, so the
  // resulting map is identical at every thread count), and compute
  // per-receiver volumes.
  std::vector<std::size_t> recv_bytes(m, 0);
  for (MachineId src = 0; src < m; ++src) {
    std::size_t sent = 0;
    for (MachineId dst = 0; dst < m; ++dst) {
      std::size_t bytes = 0;
      for (const auto& fragment : outboxes[src].fragments[dst]) {
        bytes += fragment.size();
      }
      sent += bytes;
      recv_bytes[dst] += bytes;
    }
    for (const auto& [channel, bytes] : outboxes[src].channel_bytes) {
      record.channel_bytes[channel] += bytes;
    }
    record.max_sent_bytes = std::max(record.max_sent_bytes, sent);
    record.total_message_bytes += sent;
    if (sent > config_.local_memory_bytes) {
      if (config_.enforce_limits) {
        throw MpcViolation("round '" + record.label + "': machine " +
                           std::to_string(src) + " sent " +
                           std::to_string(sent) + "B > local memory " +
                           std::to_string(config_.local_memory_bytes) + "B");
      }
      ++record.violations;
    }
  }
  for (MachineId dst = 0; dst < m; ++dst) {
    record.max_recv_bytes = std::max(record.max_recv_bytes, recv_bytes[dst]);
    if (recv_bytes[dst] > config_.local_memory_bytes) {
      if (config_.enforce_limits) {
        throw MpcViolation("round '" + record.label + "': machine " +
                           std::to_string(dst) + " received " +
                           std::to_string(recv_bytes[dst]) +
                           "B > local memory " +
                           std::to_string(config_.local_memory_bytes) + "B");
      }
      ++record.violations;
    }
  }
  if (profiling) t_audited = ProfileClock::now();

  // Deliver: replace inboxes with this round's messages (previous inboxes
  // are consumed — machines that need old messages must store them). A
  // single-fragment cell moves its Buffer, sharing the slab with whoever
  // else holds it (sender-side store, sibling receivers).
  for (MachineId dst = 0; dst < m; ++dst) {
    auto& inbox = machines_[dst].inbox;
    inbox.clear();
    for (MachineId src = 0; src < m; ++src) {
      auto& fragments = outboxes[src].fragments[dst];
      if (!fragments.empty()) {
        if (hooks_ != nullptr) {
          // Injected transport faults are masked (drop -> retransmit,
          // duplicate -> dedup), so delivery is byte-identical either way;
          // only the resilience counters observe them.
          const auto faults = hooks_->delivery_faults(round, src, dst);
          stats_.resilience().drops_retransmitted += faults.dropped;
          stats_.resilience().duplicates_suppressed += faults.duplicated;
        }
        inbox.push_back(Message{src, coalesce(fragments)});
      }
    }
  }

  // Audit residency (store + inbox) at the round boundary.
  for (MachineId id = 0; id < m; ++id) {
    const std::size_t resident =
        machines_[id].store.resident_bytes() + machines_[id].inbox_bytes();
    record.max_resident_bytes = std::max(record.max_resident_bytes, resident);
    record.total_resident_bytes += resident;
    if (resident > config_.local_memory_bytes) {
      if (config_.enforce_limits) {
        throw MpcViolation("round '" + record.label + "': machine " +
                           std::to_string(id) + " resident " +
                           std::to_string(resident) + "B > local memory " +
                           std::to_string(config_.local_memory_bytes) + "B");
      }
      ++record.violations;
    }
  }

  stats_.record(std::move(record));
  if (hooks_ != nullptr) {
    if (profiling) t_delivered = ProfileClock::now();
    const auto seconds = [](ProfileClock::time_point a,
                            ProfileClock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    ClusterHooks::RoundProfile profile;
    profile.label = stats_.records().back().label;
    profile.compute_seconds = seconds(t_start, t_stepped);
    profile.audit_seconds = seconds(t_stepped, t_audited);
    profile.deliver_seconds = seconds(t_audited, t_delivered);
    hooks_->round_profile(round, profile);
    // The commit hook runs at the exact boundary resume_from re-enters:
    // a snapshot taken here restores to "run_round(round) just returned".
    hooks_->round_committed(*this, round);
  }
}

}  // namespace mpte::mpc
