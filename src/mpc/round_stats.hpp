// Cost accounting for simulated MPC executions.
//
// MPC algorithm efficiency is measured by three quantities (Section 1.1 of
// the paper): the number of rounds, the local memory per machine, and the
// total space. RoundStats records all three per round and in aggregate so
// that benches can report them and tests can assert the paper's bounds
// (O(1) rounds, O((nd)^eps) local, near-linear total).
//
// Additionally, every send is attributed to a *channel* (the typed
// Channel<T>'s name, the broadcast key, or "(untyped)" for raw sends), so
// a run can report which logical stream — grid broadcast, edge shuffle,
// FJLT transpose — dominates communication. Per round, the per-channel
// bytes sum exactly to total_message_bytes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mpte::obs {
class Registry;
}  // namespace mpte::obs

namespace mpte::mpc {

/// Channel name under which MachineContext::send files payloads that were
/// not sent through a typed channel (or an otherwise-named stream).
inline constexpr const char* kUntypedChannel = "(untyped)";

/// Costs of a single round.
struct RoundRecord {
  /// Optional algorithm-supplied label ("fjlt/apply-D", "sort/route", ...).
  std::string label;
  /// Largest number of bytes any single machine sent this round.
  std::size_t max_sent_bytes = 0;
  /// Largest number of bytes any single machine received this round.
  std::size_t max_recv_bytes = 0;
  /// Sum of all message bytes exchanged this round (communication volume).
  std::size_t total_message_bytes = 0;
  /// Largest per-machine residency (store + inbox) at the end of the round.
  std::size_t max_resident_bytes = 0;
  /// Sum of residencies over machines at the end of the round (total space).
  std::size_t total_resident_bytes = 0;
  /// Model-constraint breaches observed this round (send/receive/residency
  /// over local memory). Nonzero only when enforcement is off — with
  /// enforcement on, the first breach throws and the round is not
  /// recorded.
  std::size_t violations = 0;
  /// Bytes sent this round keyed by channel name. Values sum to
  /// total_message_bytes (every send is attributed to some channel).
  std::map<std::string, std::size_t> channel_bytes;
};

/// Fault-tolerance cost accounting (see src/ckpt/). Kept separate from the
/// per-round records because these events — checkpoint writes, injected
/// faults, recoveries — happen *around* rounds, not inside them, and must
/// survive a stats rollback (a restored run still remembers what recovery
/// cost it).
struct ResilienceCounters {
  /// Snapshots written, their cumulative encoded size, and wall-clock cost.
  std::size_t checkpoints_written = 0;
  std::size_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0.0;
  /// Times a crash was recovered by restoring a snapshot (or resetting to
  /// the start when none existed), and the restore wall-clock cost.
  std::size_t recoveries = 0;
  double recovery_seconds = 0.0;
  /// Rounds fast-forwarded after a restore instead of re-executed.
  std::size_t rounds_replayed = 0;
  /// Injected faults observed: rank crashes thrown, dropped messages that
  /// the simulated substrate retransmitted, duplicate deliveries it
  /// suppressed.
  std::size_t crashes_injected = 0;
  std::size_t drops_retransmitted = 0;
  std::size_t duplicates_suppressed = 0;

  bool any() const {
    return checkpoints_written || recoveries || rounds_replayed ||
           crashes_injected || drops_retransmitted || duplicates_suppressed;
  }
};

/// Aggregate statistics over an execution.
class RoundStats {
 public:
  void record(RoundRecord record);

  /// Number of rounds executed so far.
  std::size_t rounds() const { return records_.size(); }

  const std::vector<RoundRecord>& records() const { return records_; }

  /// Peak per-machine residency over all rounds — the empirical "local
  /// memory" of the run.
  std::size_t peak_local_bytes() const { return peak_local_bytes_; }

  /// Peak sum of residencies — the empirical "total space" of the run.
  std::size_t peak_total_bytes() const { return peak_total_bytes_; }

  /// Peak per-machine bytes sent or received in one round.
  std::size_t peak_round_io_bytes() const { return peak_round_io_bytes_; }

  /// Total constraint breaches recorded (only populated when
  /// enforce_limits is off; see RoundRecord::violations).
  std::size_t total_violations() const { return total_violations_; }

  /// Aggregate bytes per channel over all rounds, sorted by descending
  /// bytes (ties broken by name) — ready for "top K channels" reports.
  std::vector<std::pair<std::string, std::size_t>> channel_totals() const;

  /// Fault-tolerance counters (checkpoints, recoveries, injected faults).
  ResilienceCounters& resilience() { return resilience_; }
  const ResilienceCounters& resilience() const { return resilience_; }

  /// Rolls the per-round history back to exactly `records` (peaks, totals,
  /// and channel aggregates are recomputed from them), preserving the
  /// resilience counters. Snapshot restore uses this so a recovered run's
  /// round accounting matches the fault-free run while still reporting
  /// what the recovery cost.
  void rollback(std::vector<RoundRecord> records);

  /// Exports every aggregate this class tracks into `registry` under the
  /// mpte_mpc_* / mpte_ckpt_* names (docs/observability.md): round count,
  /// peak local/total/round-io bytes, violation and communication totals,
  /// per-channel byte counters (label channel="..."), a log2 histogram of
  /// per-round message volume, and the resilience counters. summary() and
  /// the CLI's --metrics-out both render from this export, so the two
  /// surfaces can never disagree about a count.
  void export_metrics(obs::Registry* registry) const;

  /// Human-readable multi-line summary for examples and benches. Aggregate
  /// numbers are read back from an export_metrics() registry (single
  /// source of truth); only the per-round lines come straight from the
  /// records.
  std::string summary() const;

  void reset();

 private:
  std::vector<RoundRecord> records_;
  ResilienceCounters resilience_;
  std::size_t peak_local_bytes_ = 0;
  std::size_t peak_total_bytes_ = 0;
  std::size_t peak_round_io_bytes_ = 0;
  std::size_t total_violations_ = 0;
  std::map<std::string, std::size_t> channel_totals_;
};

}  // namespace mpte::mpc
