// Cost accounting for simulated MPC executions.
//
// MPC algorithm efficiency is measured by three quantities (Section 1.1 of
// the paper): the number of rounds, the local memory per machine, and the
// total space. RoundStats records all three per round and in aggregate so
// that benches can report them and tests can assert the paper's bounds
// (O(1) rounds, O((nd)^eps) local, near-linear total).
//
// Additionally, every send is attributed to a *channel* (the typed
// Channel<T>'s name, the broadcast key, or "(untyped)" for raw sends), so
// a run can report which logical stream — grid broadcast, edge shuffle,
// FJLT transpose — dominates communication. Per round, the per-channel
// bytes sum exactly to total_message_bytes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mpte::mpc {

/// Channel name under which MachineContext::send files payloads that were
/// not sent through a typed channel (or an otherwise-named stream).
inline constexpr const char* kUntypedChannel = "(untyped)";

/// Costs of a single round.
struct RoundRecord {
  /// Optional algorithm-supplied label ("fjlt/apply-D", "sort/route", ...).
  std::string label;
  /// Largest number of bytes any single machine sent this round.
  std::size_t max_sent_bytes = 0;
  /// Largest number of bytes any single machine received this round.
  std::size_t max_recv_bytes = 0;
  /// Sum of all message bytes exchanged this round (communication volume).
  std::size_t total_message_bytes = 0;
  /// Largest per-machine residency (store + inbox) at the end of the round.
  std::size_t max_resident_bytes = 0;
  /// Sum of residencies over machines at the end of the round (total space).
  std::size_t total_resident_bytes = 0;
  /// Model-constraint breaches observed this round (send/receive/residency
  /// over local memory). Nonzero only when enforcement is off — with
  /// enforcement on, the first breach throws and the round is not
  /// recorded.
  std::size_t violations = 0;
  /// Bytes sent this round keyed by channel name. Values sum to
  /// total_message_bytes (every send is attributed to some channel).
  std::map<std::string, std::size_t> channel_bytes;
};

/// Aggregate statistics over an execution.
class RoundStats {
 public:
  void record(RoundRecord record);

  /// Number of rounds executed so far.
  std::size_t rounds() const { return records_.size(); }

  const std::vector<RoundRecord>& records() const { return records_; }

  /// Peak per-machine residency over all rounds — the empirical "local
  /// memory" of the run.
  std::size_t peak_local_bytes() const { return peak_local_bytes_; }

  /// Peak sum of residencies — the empirical "total space" of the run.
  std::size_t peak_total_bytes() const { return peak_total_bytes_; }

  /// Peak per-machine bytes sent or received in one round.
  std::size_t peak_round_io_bytes() const { return peak_round_io_bytes_; }

  /// Total constraint breaches recorded (only populated when
  /// enforce_limits is off; see RoundRecord::violations).
  std::size_t total_violations() const { return total_violations_; }

  /// Aggregate bytes per channel over all rounds, sorted by descending
  /// bytes (ties broken by name) — ready for "top K channels" reports.
  std::vector<std::pair<std::string, std::size_t>> channel_totals() const;

  /// Human-readable multi-line summary for examples and benches.
  std::string summary() const;

  void reset();

 private:
  std::vector<RoundRecord> records_;
  std::size_t peak_local_bytes_ = 0;
  std::size_t peak_total_bytes_ = 0;
  std::size_t peak_round_io_bytes_ = 0;
  std::size_t total_violations_ = 0;
  std::map<std::string, std::size_t> channel_totals_;
};

}  // namespace mpte::mpc
