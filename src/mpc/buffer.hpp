// The currency of the MPC layer: an immutable, refcounted byte slab.
//
// Every payload that crosses the simulated network — store blobs, queued
// outbox entries, delivered messages — is a Buffer. Copying a Buffer bumps
// a refcount on the underlying slab instead of duplicating bytes, so a
// broadcast that fans one blob out to M machines materializes the bytes
// exactly once (one slab, M references) where the old
// std::vector<std::uint8_t> plumbing deep-copied per hop. Immutability is
// what makes the sharing sound: once a slab is wrapped in a Buffer nobody
// can write through it, so concurrent machine steps may hold references to
// the same slab without synchronization beyond the (atomic) refcount.
//
// The class keeps a global count of slab materializations so tests and
// bench_mpc_comms can assert the zero-copy property (a broadcast allocates
// O(1) slabs, not O(M)).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace mpte::mpc {

/// Immutable shared byte slab. Cheap to copy (refcount), impossible to
/// mutate. An empty Buffer owns nothing and allocates nothing.
class Buffer {
 public:
  Buffer() = default;

  /// Takes ownership of `bytes` without copying them (the vector's heap
  /// allocation becomes the slab). Counts as one slab materialization
  /// unless the vector is empty.
  explicit Buffer(std::vector<std::uint8_t> bytes);

  /// Materializes a new slab holding a copy of `bytes`.
  static Buffer copy_of(std::span<const std::uint8_t> bytes);

  /// Receives exactly `size` bytes from a socket into one freshly
  /// materialized slab — the single allocation the wire path needs; the
  /// returned Buffer then shares that slab through stores/inboxes like
  /// any other. `timeout_ms` bounds the whole fill (net::recv_exact
  /// semantics): kDeadlineExceeded past the budget, kUnavailable on EOF.
  static Result<Buffer> from_fd(int fd, std::size_t size,
                                int timeout_ms = -1);

  /// Sends the slab's bytes to a socket (EINTR-safe, no SIGPIPE).
  Status write_fd(int fd) const;

  const std::uint8_t* data() const {
    return slab_ ? slab_->data() : nullptr;
  }
  std::size_t size() const { return slab_ ? slab_->size() : 0; }
  bool empty() const { return size() == 0; }

  std::span<const std::uint8_t> span() const { return {data(), size()}; }
  operator std::span<const std::uint8_t>() const { return span(); }

  /// Number of Buffers currently sharing this slab (0 for an empty
  /// Buffer). Diagnostic only — racy under concurrent copies.
  long use_count() const { return slab_.use_count(); }

  /// Byte equality (not slab identity).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size() == b.size() &&
           std::equal(a.data(), a.data() + a.size(), b.data());
  }
  friend bool operator==(const Buffer& a,
                         const std::vector<std::uint8_t>& b) {
    return a.size() == b.size() &&
           std::equal(a.data(), a.data() + a.size(), b.data());
  }

  /// Total slabs materialized process-wide since start (or the last
  /// reset). Refcount copies do not count — that is the point.
  static std::uint64_t slabs_created();
  static void reset_counters();

 private:
  explicit Buffer(std::shared_ptr<const std::vector<std::uint8_t>> slab)
      : slab_(std::move(slab)) {}

  std::shared_ptr<const std::vector<std::uint8_t>> slab_;
};

}  // namespace mpte::mpc
