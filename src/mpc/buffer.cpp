#include "mpc/buffer.hpp"

#include <atomic>

#include "common/net.hpp"

namespace mpte::mpc {

namespace {
std::atomic<std::uint64_t> slabs_created_{0};
}  // namespace

Buffer::Buffer(std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  slab_ = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  slabs_created_.fetch_add(1, std::memory_order_relaxed);
}

Buffer Buffer::copy_of(std::span<const std::uint8_t> bytes) {
  return Buffer(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

Result<Buffer> Buffer::from_fd(int fd, std::size_t size, int timeout_ms) {
  if (size == 0) return Buffer();
  std::vector<std::uint8_t> bytes(size);
  const Status received = net::recv_exact(fd, bytes, timeout_ms);
  if (!received.ok()) return received;
  return Buffer(std::move(bytes));
}

Status Buffer::write_fd(int fd) const { return net::send_all(fd, span()); }

std::uint64_t Buffer::slabs_created() {
  return slabs_created_.load(std::memory_order_relaxed);
}

void Buffer::reset_counters() {
  slabs_created_.store(0, std::memory_order_relaxed);
}

}  // namespace mpte::mpc
