#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace mpte::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local std::uint32_t tls_thread_id = ~0u;
thread_local std::uint32_t tls_depth = 0;

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 1 << 12));
  next_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
  origin_ns_ = steady_ns();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now_us() const {
  return (steady_ns() - origin_ns_) / 1000;
}

std::uint32_t Tracer::thread_id() {
  if (tls_thread_id == ~0u) {
    tls_thread_id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

void Tracer::record(SpanEvent event) {
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    next_ = ring_.size() % capacity_;
    recorded_ = ring_.size();
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++overwritten_;
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: oldest event sits at next_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::overwritten() const {
  std::lock_guard lock(mutex_);
  return overwritten_;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64,
                  e.thread, e.start_us, e.duration_us);
    out += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
           json_escape(e.category) + "\"," + buf;
    if (e.arg_name != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%" PRIu64 "}",
                    e.arg_name, e.arg);
      out += buf;
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::flame_summary() const {
  const std::vector<SpanEvent> events = snapshot();
  struct Row {
    std::uint64_t calls = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  // Key: (depth, category/name). Ordering by depth first gives the
  // indented roots-before-children layout.
  std::map<std::pair<std::uint32_t, std::string>, Row> rows;
  for (const SpanEvent& e : events) {
    Row& row = rows[{e.depth, e.category + "/" + e.name}];
    ++row.calls;
    row.total_us += e.duration_us;
    row.max_us = std::max(row.max_us, e.duration_us);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "spans=%zu overwritten=%" PRIu64 "\n%-52s %8s %12s %10s %10s\n",
                events.size(), overwritten(), "span", "calls", "total_ms",
                "mean_ms", "max_ms");
  std::string out = buf;
  for (const auto& [key, row] : rows) {
    const auto& [depth, name] = key;
    std::string label(2 * static_cast<std::size_t>(depth), ' ');
    label += name;
    std::snprintf(buf, sizeof(buf), "%-52s %8" PRIu64 " %12.3f %10.3f %10.3f\n",
                  label.c_str(), row.calls, row.total_us / 1000.0,
                  row.calls == 0 ? 0.0 : row.total_us / 1000.0 / row.calls,
                  row.max_us / 1000.0);
    out += buf;
  }
  return out;
}

Span::Span(std::string_view category, std::string_view name)
    : Span(category, name, nullptr, 0) {}

Span::Span(std::string_view category, std::string_view name,
           const char* arg_name, std::uint64_t arg) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  armed_ = true;
  event_.category.assign(category);
  event_.name.assign(name);
  event_.arg_name = arg_name;
  event_.arg = arg;
  event_.thread = tracer.thread_id();
  event_.depth = tls_depth++;
  event_.start_us = tracer.now_us();
}

Span::~Span() {
  if (!armed_) return;
  --tls_depth;
  Tracer& tracer = Tracer::global();
  const std::uint64_t end_us = tracer.now_us();
  event_.duration_us = end_us >= event_.start_us ? end_us - event_.start_us : 0;
  tracer.record(std::move(event_));
}

}  // namespace mpte::obs
