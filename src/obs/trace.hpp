// Span tracer: scoped wall-clock spans recorded into a thread-safe ring
// buffer, exported as Chrome-trace JSON (loadable in Perfetto /
// chrome://tracing) or a flame-style text summary.
//
// Design constraints (docs/observability.md):
//  * Zero algorithmic impact. A span only reads the steady clock and
//    appends to the ring; it never touches RNG state, message ordering,
//    or any other input to the computation, so embeddings are
//    byte-identical with tracing on or off.
//  * Near-zero cost when disabled. `Span` checks one relaxed atomic and
//    does nothing else — instrumentation can stay in hot paths
//    unconditionally.
//  * Bounded memory. The ring holds a fixed number of events; when it
//    wraps, the oldest events are overwritten and counted in
//    `overwritten()`.
//
// Usage:
//   obs::Tracer::global().enable();
//   { obs::Span span("mpc", "round/quantize"); ...work...; }
//   write_file_atomic(path, obs::Tracer::global().chrome_trace_json());
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mpte::obs {

/// One completed span. Times are microseconds relative to `enable()`.
struct SpanEvent {
  std::string category;  // subsystem: "mpc", "emb", "fjlt", "ckpt", "serve"
  std::string name;      // e.g. "round/quantize/extremes"
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;  // dense per-tracer thread id
  std::uint32_t depth = 0;   // nesting depth on its thread at open time
  const char* arg_name = nullptr;  // optional numeric argument (static str)
  std::uint64_t arg = 0;
};

/// Process-global span recorder. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& global();

  /// Starts recording into a fresh ring of `capacity` events. Resets the
  /// clock origin and any previously recorded events.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(SpanEvent event);

  /// Recorded events in chronological (recording) order.
  std::vector<SpanEvent> snapshot() const;
  std::size_t size() const;
  /// Events lost to ring wrap-around since enable().
  std::uint64_t overwritten() const;

  /// Chrome trace JSON: {"traceEvents":[{"ph":"X",...},...]}.
  std::string chrome_trace_json() const;

  /// Flat flame-style profile: per-(depth, name) call counts and total /
  /// mean / max durations, indented by nesting depth.
  std::string flame_summary() const;

  /// Microseconds since enable() on the steady clock.
  std::uint64_t now_us() const;
  /// Dense id for the calling thread (assigned on first use).
  std::uint32_t thread_id();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::vector<SpanEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;       // next write position in ring_
  std::size_t recorded_ = 0;   // events currently held (<= capacity_)
  std::uint64_t overwritten_ = 0;
  std::uint64_t origin_ns_ = 0;
  std::atomic<std::uint32_t> next_thread_id_{0};
};

/// RAII span. Arms itself only if the global tracer is enabled at
/// construction; a disabled tracer makes construction and destruction a
/// single relaxed atomic load each.
class Span {
 public:
  Span(std::string_view category, std::string_view name);
  Span(std::string_view category, std::string_view name,
       const char* arg_name, std::uint64_t arg);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_ = false;
  SpanEvent event_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace mpte::obs
