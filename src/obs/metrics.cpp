#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace mpte::obs {
namespace {

/// Formats a double the way Prometheus text expects: integers without a
/// decimal point, everything else with enough digits to round-trip.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      return i == 0
                 ? 1.0
                 : static_cast<double>(1ull << std::min<std::size_t>(i, 63));
    }
  }
  return 0.0;
}

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

Registry::Family& Registry::family_locked(const std::string& name,
                                          const std::string& help,
                                          Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kCounter);
  Series& series = family.series[labels];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kGauge);
  Series& series = family.series[labels];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, help, Kind::kHistogram);
  Series& series = family.series[labels];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>();
  return *series.histogram;
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  std::lock_guard lock(mutex_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return 0;
  auto sit = fit->second.series.find(labels);
  if (sit == fit->second.series.end() || !sit->second.counter) return 0;
  return sit->second.counter->value();
}

double Registry::gauge_value(const std::string& name,
                             const Labels& labels) const {
  std::lock_guard lock(mutex_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return 0.0;
  auto sit = fit->second.series.find(labels);
  if (sit == fit->second.series.end() || !sit->second.gauge) return 0.0;
  return sit->second.gauge->value();
}

std::vector<Sample> Registry::samples() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out.push_back({name, labels,
                         static_cast<double>(series.counter->value())});
          break;
        case Kind::kGauge:
          out.push_back({name, labels, series.gauge->value()});
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t n = h.bucket_count(i);
            cumulative += n;
            if (n == 0) continue;
            Labels bucket_labels = labels;
            bucket_labels["le"] =
                std::to_string(Histogram::bucket_upper_edge(i));
            out.push_back({name + "_bucket", bucket_labels,
                           static_cast<double>(cumulative)});
          }
          out.push_back(
              {name + "_sum", labels, static_cast<double>(h.sum())});
          out.push_back(
              {name + "_count", labels, static_cast<double>(h.count())});
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::prometheus_text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRIu64,
                        series.counter->value());
          out += name + format_labels(labels) + " " + buf + "\n";
          break;
        }
        case Kind::kGauge:
          out += name + format_labels(labels) + " " +
                 format_value(series.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          // Cumulative le buckets; only edges up to the highest non-empty
          // bucket are emitted (log2 edges are valid arbitrary Prometheus
          // bucket boundaries), then the mandatory +Inf.
          std::size_t highest = 0;
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            if (h.bucket_count(i) != 0) highest = i;
          }
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= highest; ++i) {
            cumulative += h.bucket_count(i);
            Labels bucket_labels = labels;
            bucket_labels["le"] =
                std::to_string(Histogram::bucket_upper_edge(i));
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
            out += name + "_bucket" + format_labels(bucket_labels) + " " +
                   buf + "\n";
          }
          Labels inf_labels = labels;
          inf_labels["le"] = "+Inf";
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
          out += name + "_bucket" + format_labels(inf_labels) + " " + buf +
                 "\n";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, h.sum());
          out += name + "_sum" + format_labels(labels) + " " + buf + "\n";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
          out += name + "_count" + format_labels(labels) + " " + buf + "\n";
          break;
        }
      }
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace mpte::obs
