// ProfilingHooks: a ClusterHooks decorator that accumulates per-phase
// round timings (compute / audit / deliver) from the round_profile hook,
// forwarding every other hook to an optional inner implementation — so a
// bench can profile a checkpointed run by wrapping the ckpt::Coordinator
// without the Cluster growing a second hooks slot.
//
// Header-only and layered above mpte_mpc (it needs mpc::ClusterHooks);
// lives in src/obs/ because it is observability machinery, not model
// machinery. See docs/observability.md.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "mpc/cluster.hpp"
#include "obs/metrics.hpp"

namespace mpte::obs {

class ProfilingHooks : public mpc::ClusterHooks {
 public:
  /// Wraps `inner` (nullptr for profiling only). Non-owning.
  explicit ProfilingHooks(mpc::ClusterHooks* inner = nullptr)
      : inner_(inner) {}

  std::optional<mpc::MachineId> crash_rank(std::size_t round) override {
    return inner_ != nullptr ? inner_->crash_rank(round) : std::nullopt;
  }

  DeliveryFaults delivery_faults(std::size_t round, mpc::MachineId src,
                                 mpc::MachineId dst) override {
    return inner_ != nullptr ? inner_->delivery_faults(round, src, dst)
                             : DeliveryFaults{};
  }

  void round_profile(std::size_t round, const RoundProfile& profile) override {
    ++totals_.rounds;
    totals_.compute_seconds += profile.compute_seconds;
    totals_.audit_seconds += profile.audit_seconds;
    totals_.deliver_seconds += profile.deliver_seconds;
    PhaseTotals& labeled = by_label_[std::string(profile.label)];
    ++labeled.rounds;
    labeled.compute_seconds += profile.compute_seconds;
    labeled.audit_seconds += profile.audit_seconds;
    labeled.deliver_seconds += profile.deliver_seconds;
    if (inner_ != nullptr) inner_->round_profile(round, profile);
  }

  void round_committed(mpc::Cluster& cluster, std::size_t round) override {
    if (inner_ != nullptr) inner_->round_committed(cluster, round);
  }

  struct PhaseTotals {
    std::size_t rounds = 0;
    double compute_seconds = 0.0;
    double audit_seconds = 0.0;
    double deliver_seconds = 0.0;

    double total_seconds() const {
      return compute_seconds + audit_seconds + deliver_seconds;
    }
  };

  const PhaseTotals& totals() const { return totals_; }
  /// Per-round-label breakdown (label -> accumulated phase timings).
  const std::map<std::string, PhaseTotals>& by_label() const {
    return by_label_;
  }

  /// Exports mpte_mpc_profile_rounds_total plus the
  /// mpte_mpc_profile_{compute,audit,deliver}_seconds_total gauges and
  /// their per-label variants (label="...").
  void export_metrics(Registry* registry) const {
    registry
        ->counter("mpte_mpc_profile_rounds_total",
                  "Rounds attributed by the profiling hooks.")
        .set(totals_.rounds);
    const auto set = [registry](const char* phase, double seconds,
                                const Labels& labels) {
      registry
          ->gauge(std::string("mpte_mpc_profile_") + phase + "_seconds_total",
                  std::string("Wall-clock attributed to the ") + phase +
                      " phase of run_round.",
                  labels)
          .set(seconds);
    };
    set("compute", totals_.compute_seconds, {});
    set("audit", totals_.audit_seconds, {});
    set("deliver", totals_.deliver_seconds, {});
    for (const auto& [label, t] : by_label_) {
      const Labels labels{{"label", label}};
      set("compute", t.compute_seconds, labels);
      set("audit", t.audit_seconds, labels);
      set("deliver", t.deliver_seconds, labels);
    }
  }

  void reset() {
    totals_ = PhaseTotals{};
    by_label_.clear();
  }

 private:
  mpc::ClusterHooks* inner_;
  PhaseTotals totals_;
  std::map<std::string, PhaseTotals> by_label_;
};

}  // namespace mpte::obs
