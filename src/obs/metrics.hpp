// Metrics registry: counters, gauges, and log2 histograms with
// Prometheus-text exposition.
//
// The registry is the single numeric source of truth for every stats
// surface in the repo: `RoundStats::summary()`, the serve `stats` and
// `metrics` wire verbs, and the `--metrics-out` CLI flag all render from
// a registry filled by the same exporter functions, so two outputs can
// never disagree about a count.
//
// Naming convention (docs/observability.md):
//   mpte_<subsystem>_<quantity>[_<unit>][_total]
// `_total` marks monotonic counters, `_bytes`/`_seconds`/`_ms` the unit.
// Labels are an optional sorted key=value map (e.g. the per-channel byte
// counters use {channel="emb/edges"}).
//
// Thread safety: metric handles returned by the registry are stable for
// the registry's lifetime and updated with relaxed atomics; registering
// and rendering take a mutex. Creation is idempotent — asking for an
// existing (name, labels) pair returns the same handle.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpte::obs {

/// Sorted label set; the empty map is the unlabeled series.
using Labels = std::map<std::string, std::string>;

/// Monotonic counter. `set` exists for snapshot-style export, where the
/// authoritative count lives elsewhere and the registry mirrors it.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram over non-negative integer samples (bytes,
/// microseconds, ...). Bucket i counts samples whose bit width is i, i.e.
/// bucket 0 holds the value 0 and bucket i >= 1 holds [2^(i-1), 2^i).
/// The inclusive upper edge reported for bucket i is 2^i - 1; quantiles
/// resolve to the upper edge of the bucket containing them (same math the
/// serve latency percentiles used before they moved here).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v) {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(v), kBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Adds every bucket of `other` into this histogram.
  void merge_from(const Histogram& other);

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper edge of bucket i: 0 for bucket 0, else 2^i - 1.
  static std::uint64_t bucket_upper_edge(std::size_t i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
  }

  /// Value at quantile q in [0, 1]: the exclusive upper bound 2^b of the
  /// bucket holding the q-th sample (1.0 for buckets 0 and 1). Returns 0
  /// when empty.
  double quantile(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

/// One rendered sample, for programmatic inspection of a registry.
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

/// Owns metrics; hands out stable references. Families (one per name)
/// carry the help text and type used in exposition.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  /// Current value of a counter/gauge series; 0 if absent.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  double gauge_value(const std::string& name,
                     const Labels& labels = {}) const;

  /// Every counter and gauge series (histograms expand to one sample per
  /// non-empty bucket plus _sum/_count), sorted by (name, labels).
  std::vector<Sample> samples() const;

  /// Prometheus text exposition: # HELP / # TYPE per family, one line per
  /// series, families sorted by name, terminated by "# EOF\n" (the
  /// OpenMetrics end marker — it doubles as the end-of-response sentinel
  /// for the serve `metrics` wire verb).
  std::string prometheus_text() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<Labels, Series> series;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Renders {a="b",c="d"} for exposition lines; empty string for no labels.
std::string format_labels(const Labels& labels);

}  // namespace mpte::obs
