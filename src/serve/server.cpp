#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <future>
#include <utility>

#include "common/net.hpp"
#include "serve/wire.hpp"

namespace mpte::serve {

// Blocking I/O (EINTR-safe send/recv, interrupted-connect completion)
// lives in common/net so the ipc frame transport shares the exact same
// helpers; this file keeps only the line protocol.
using net::socket_error;

SocketServer::SocketServer(EmbeddingService& service, ServerOptions options)
    : service_(service), options_(options) {}

SocketServer::~SocketServer() { stop(); }

Result<std::uint16_t> SocketServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return socket_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = socket_error("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status status = socket_error("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status = socket_error("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop(), or fatal error
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  // Consecutive query lines from one read are submitted as ONE
  // submit_batch before any future is awaited — a client that pipelines K
  // requests per write gets K-deep server-side batching. Parse failures
  // hold a pre-rendered error line at the same position so responses stay
  // in request order.
  std::vector<Request> pending;
  std::vector<std::pair<std::size_t, std::string>> pending_errors;
  const auto flush = [&](std::string* out) {
    if (pending.empty() && pending_errors.empty()) return;
    auto futures = service_.submit_batch(pending);
    std::size_t next_error = 0;
    std::size_t next_future = 0;
    const std::size_t total = pending.size() + pending_errors.size();
    for (std::size_t slot = 0; slot < total; ++slot) {
      if (next_error < pending_errors.size() &&
          pending_errors[next_error].first == slot) {
        *out += pending_errors[next_error++].second + "\n";
      } else {
        *out += format_response(futures[next_future++].get()) + "\n";
      }
    }
    pending.clear();
    pending_errors.clear();
  };
  bool want_shutdown = false;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const auto n = net::recv_some(
        fd, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(chunk),
                                    sizeof(chunk)));
    if (!n.ok() || *n == 0) break;
    buffer.append(chunk, *n);
    std::string responses;
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         start = nl + 1, nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (parse_control(line) != ControlCommand::kNone) {
        flush(&responses);  // control replies must stay in order
        open = handle_line(line, &responses, &want_shutdown);
        continue;
      }
      auto parsed = parse_request(line);
      if (parsed.ok()) {
        pending.push_back(*parsed);
      } else {
        pending_errors.emplace_back(pending.size() + pending_errors.size(),
                                    format_response(parsed.status()));
      }
    }
    buffer.erase(0, start);
    flush(&responses);
    if (!responses.empty() && !net::send_all(fd, responses).ok()) break;
    if (want_shutdown) break;
  }
  ::close(fd);
  if (want_shutdown) {
    // Signalled only after the "ok shutdown" reply was flushed, so the
    // requesting client always sees its acknowledgement.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
  }
}

bool SocketServer::handle_line(const std::string& line, std::string* out,
                               bool* request_shutdown) {
  switch (parse_control(line)) {
    case ControlCommand::kStats:
      *out += format_stats(service_.stats()) + "\n";
      return true;
    case ControlCommand::kMetrics:
      // Multi-line Prometheus exposition; metrics_text() ends with the
      // "# EOF\n" marker line, which doubles as the end-of-response
      // sentinel for line-oriented clients.
      *out += service_.metrics_text();
      return true;
    case ControlCommand::kInfo:
      *out += format_info(service_.num_points(), service_.num_trees(),
                          service_.epoch(), service_.dim()) +
              "\n";
      return true;
    case ControlCommand::kQuit:
      return false;
    case ControlCommand::kShutdown:
      *out += "ok shutdown\n";
      *request_shutdown = true;
      return false;
    case ControlCommand::kNone:
      break;
  }
  return true;
}

void SocketServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() releases the port.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connection_fds_.clear();
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) connection.join();
}

LineClient::~LineClient() { close(); }

Status LineClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return socket_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status(StatusCode::kInvalidArgument, "bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINTR) {
      const Status status = socket_error("connect");
      close();
      return status;
    }
    // A signal interrupted connect() but the attempt proceeds
    // asynchronously; net::finish_connect waits it out.
    const Status finished = net::finish_connect(fd_);
    if (!finished.ok()) {
      close();
      return finished;
    }
  }
  return Status::Ok();
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status LineClient::send_line(const std::string& line) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "not connected");
  return net::send_all(fd_, line + "\n");
}

Result<std::string> LineClient::read_line() {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "not connected");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const auto n = net::recv_some(
        fd_, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(chunk),
                                     sizeof(chunk)));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status(StatusCode::kUnavailable, "connection closed by peer");
    }
    buffer_.append(chunk, *n);
  }
}

Result<std::string> LineClient::roundtrip(const std::string& line) {
  const Status sent = send_line(line);
  if (!sent.ok()) return sent;
  return read_line();
}

}  // namespace mpte::serve
