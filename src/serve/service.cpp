#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace mpte::serve {

namespace {

const char* kCombinerNames[] = {"min", "exp"};
const char* kKindNames[] = {"dist", "knn", "range", "upsert", "remove"};

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Cache keys mix the epoch version into the tag, so entries cached
/// against a superseded epoch can never answer for the current one (the
/// point set may have changed under them).
CacheKey cache_key(const Request& request, std::uint64_t epoch) {
  CacheKey key;
  key.tag = hash_combine((static_cast<std::uint64_t>(request.kind) << 8) |
                             static_cast<std::uint64_t>(request.combiner),
                         epoch);
  switch (request.kind) {
    case RequestKind::kDistance:
      key.a = std::min(request.p, request.q);
      key.b = std::max(request.p, request.q);
      break;
    case RequestKind::kRangeCount:
      key.a = request.p;
      key.b = std::bit_cast<std::uint64_t>(request.radius);
      break;
    default:
      break;  // knn and updates are not cached
  }
  return key;
}

/// Wraps a static-mode ensemble as the one fixed epoch the service serves.
std::shared_ptr<const dyn::EnsembleEpoch> make_static_epoch(
    EmbeddingEnsemble ensemble) {
  auto epoch = std::make_shared<dyn::EnsembleEpoch>();
  epoch->version = 0;
  epoch->ensemble = std::make_shared<const EmbeddingEnsemble>(
      std::move(ensemble));
  return epoch;
}

}  // namespace

const char* to_string(Combiner combiner) {
  return kCombinerNames[static_cast<std::size_t>(combiner)];
}

const char* to_string(RequestKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

EmbeddingService::EmbeddingService(EmbeddingEnsemble ensemble,
                                   ServiceOptions options)
    : static_epoch_(make_static_epoch(std::move(ensemble))),
      options_(options),
      cache_(options.cache_bytes, options.cache_shards),
      started_(Clock::now()),
      paused_(options.start_paused) {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  options_.max_queue = std::max<std::size_t>(1, options_.max_queue);
  batcher_ = std::thread([this] { batcher_loop(); });
}

EmbeddingService::EmbeddingService(
    std::unique_ptr<dyn::DynamicEnsemble> dynamic, ServiceOptions options)
    : dynamic_(std::move(dynamic)),
      options_(options),
      cache_(options.cache_bytes, options.cache_shards),
      started_(Clock::now()),
      paused_(options.start_paused) {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  options_.max_queue = std::max<std::size_t>(1, options_.max_queue);
  batcher_ = std::thread([this] { batcher_loop(); });
}

EmbeddingService::~EmbeddingService() { stop(); }

std::future<Result<Response>> EmbeddingService::submit(
    const Request& request) {
  std::vector<Request> one{request};
  return std::move(submit_batch(one).front());
}

std::vector<std::future<Result<Response>>> EmbeddingService::submit_batch(
    const std::vector<Request>& requests) {
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(requests.size());
  const auto now = Clock::now();
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;
  std::size_t rejected_down = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Request& request : requests) {
      std::promise<Result<Response>> promise;
      futures.push_back(promise.get_future());
      if (stopping_) {
        promise.set_value(Status(StatusCode::kUnavailable,
                                 "service is shutting down"));
        ++rejected_down;
        continue;
      }
      if (queue_.size() >= options_.max_queue) {
        promise.set_value(
            Status(StatusCode::kResourceExhausted,
                   "admission queue full (" +
                       std::to_string(options_.max_queue) +
                       "); retry with backoff"));
        ++rejected_full;
        continue;
      }
      Pending pending;
      pending.request = request;
      pending.enqueued = now;
      pending.deadline = request.deadline.count() > 0
                             ? now + request.deadline
                             : Clock::time_point::max();
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      ++admitted;
    }
  }
  if (admitted > 0) work_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += requests.size();
    rejected_queue_full_ += rejected_full;
    failed_ += rejected_down;
  }
  return futures;
}

void EmbeddingService::batcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_) return;
    // A partial batch waits up to max_wait for company; a full one (or a
    // zero max_wait) drains immediately.
    if (options_.max_wait.count() > 0 &&
        queue_.size() < options_.max_batch) {
      const auto window_end = Clock::now() + options_.max_wait;
      work_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || paused_ || queue_.size() >= options_.max_batch;
      });
      if (stopping_) return;
      if (paused_ || queue_.empty()) continue;
    }
    std::vector<Pending> batch;
    const std::size_t take = std::min(queue_.size(), options_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    run_batch(batch);
    lock.lock();
  }
}

void EmbeddingService::run_batch(std::vector<Pending>& batch) {
  const std::size_t n = batch.size();
  const obs::Span span("serve", "batch", "size", n);
  // Updates first, serially, in submission order — then ONE publish for
  // the whole batch, so the batch's queries (and every later reader) see
  // all of its updates at once. Queries evaluate concurrently afterwards.
  std::vector<std::optional<Result<Response>>> results(n);
  std::vector<double> latency_ms(n, 0.0);
  std::vector<std::size_t> applied;  // update slots awaiting epoch stamps
  for (std::size_t i = 0; i < n; ++i) {
    Pending& item = batch[i];
    if (!is_update(item.request.kind)) continue;
    if (Clock::now() > item.deadline) {
      results[i] = Status(StatusCode::kDeadlineExceeded,
                          "deadline expired before evaluation");
    } else {
      results[i] = apply_update(item.request);
      if (results[i]->ok()) applied.push_back(i);
    }
    latency_ms[i] = to_ms(Clock::now() - item.enqueued);
  }
  if (!applied.empty()) {
    auto published = dynamic_->publish();
    for (const std::size_t i : applied) {
      if (published.ok()) {
        (*results[i])->epoch = (*published)->version;
      } else {
        // The column changes are in but unpublished; surface the failure
        // rather than acknowledging an update no reader can see.
        results[i] = Status(StatusCode::kInternal,
                            "epoch publish failed: " +
                                published.status().to_string());
      }
    }
  }
  par::parallel_for(
      0, n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Pending& item = batch[i];
          if (is_update(item.request.kind)) continue;  // already applied
          results[i] = [&]() -> Result<Response> {
            if (Clock::now() > item.deadline) {
              return Status(StatusCode::kDeadlineExceeded,
                            "deadline expired before evaluation");
            }
            return evaluate_cached(item.request);
          }();
          latency_ms[i] = to_ms(Clock::now() - item.enqueued);
        }
      },
      options_.eval_threads);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++batches_;
    max_batch_observed_ = std::max(max_batch_observed_, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i]->ok()) {
        ++completed_;
        record_latency(latency_ms[i]);
      } else if (results[i]->status().code() ==
                 StatusCode::kDeadlineExceeded) {
        ++rejected_deadline_;
      } else {
        ++failed_;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch[i].promise.set_value(std::move(*results[i]));
  }
}

Result<Response> EmbeddingService::apply_update(const Request& request) {
  if (!dynamic_) {
    return Status(StatusCode::kInvalidArgument,
                  "static service: upsert/remove need --dynamic");
  }
  Response response;
  response.kind = request.kind;
  if (request.kind == RequestKind::kUpsert) {
    auto id = dynamic_->insert(request.coords);
    if (!id.ok()) return id.status();
    response.id = *id;
  } else {
    const Status erased = dynamic_->erase(request.id);
    if (!erased.ok()) return erased;
    response.id = request.id;
  }
  response.value = static_cast<double>(response.id);
  return response;  // epoch stamped by run_batch after the batch publish
}

Result<Response> EmbeddingService::evaluate_cached(const Request& request) {
  if (request.kind == RequestKind::kKnn || !cache_.enabled()) {
    return evaluate(request);
  }
  const CacheKey key = cache_key(request, epoch());
  double cached = 0.0;
  if (cache_.lookup(key, &cached)) {
    Response response;
    response.kind = request.kind;
    response.value = cached;
    response.epoch = epoch();
    return response;
  }
  auto result = evaluate(request);
  if (result.ok()) cache_.insert(key, result->value);
  return result;
}

Result<Response> EmbeddingService::evaluate(const Request& request) const {
  if (is_update(request.kind)) {
    return Status(StatusCode::kInvalidArgument,
                  "updates mutate state and must go through submit()");
  }
  // One snapshot per evaluation: the epoch shared_ptr keeps the ensemble
  // alive even if a publish swaps the current epoch mid-query.
  const auto snapshot = epoch_snapshot();
  const EmbeddingEnsemble& ensemble = *snapshot->ensemble;
  const std::size_t n = ensemble.num_points();
  const auto combined = [&ensemble, &request](std::size_t a, std::size_t b) {
    return request.combiner == Combiner::kMin
               ? ensemble.min_distance(a, b)
               : ensemble.expected_distance(a, b);
  };
  switch (request.kind) {
    case RequestKind::kDistance: {
      if (request.p >= n || request.q >= n) {
        return Status(StatusCode::kInvalidArgument,
                      "point index out of range (n=" + std::to_string(n) +
                          ")");
      }
      Response response;
      response.kind = request.kind;
      response.value = combined(request.p, request.q);
      response.epoch = snapshot->version;
      return response;
    }
    case RequestKind::kKnn: {
      if (request.p >= n) {
        return Status(StatusCode::kInvalidArgument,
                      "point index out of range (n=" + std::to_string(n) +
                          ")");
      }
      if (request.k == 0) {
        return Status(StatusCode::kInvalidArgument, "knn needs k >= 1");
      }
      const std::size_t want = std::min(request.k, n - 1);
      // Walk up member 0's tree until the subtree holds enough candidates
      // (Lemma 1: subtree diameter bounds candidate distance), then rank
      // the gathered leaves by the combined ensemble distance.
      const Hst& tree = ensemble.member(0).tree;
      std::size_t node = tree.leaf(request.p);
      while (tree.node(node).parent >= 0 &&
             tree.node(node).subtree_size < want + 1) {
        node = static_cast<std::size_t>(tree.node(node).parent);
      }
      std::vector<Neighbor> neighbors;
      neighbors.reserve(tree.node(node).subtree_size);
      std::vector<std::size_t> stack{node};
      while (!stack.empty()) {
        const std::size_t current = stack.back();
        stack.pop_back();
        const HstNode& info = tree.node(current);
        if (info.point >= 0) {
          const auto point = static_cast<std::size_t>(info.point);
          if (point != request.p) {
            neighbors.push_back({point, combined(request.p, point)});
          }
          continue;
        }
        const auto& children = tree.children(current);
        stack.insert(stack.end(), children.begin(), children.end());
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.distance != b.distance ? a.distance < b.distance
                                                  : a.point < b.point;
                });
      if (neighbors.size() > want) neighbors.resize(want);
      Response response;
      response.kind = request.kind;
      response.value = static_cast<double>(neighbors.size());
      response.neighbors = std::move(neighbors);
      response.epoch = snapshot->version;
      return response;
    }
    case RequestKind::kRangeCount: {
      if (request.p >= n) {
        return Status(StatusCode::kInvalidArgument,
                      "point index out of range (n=" + std::to_string(n) +
                          ")");
      }
      if (request.radius < 0.0) {
        return Status(StatusCode::kInvalidArgument,
                      "range radius must be >= 0");
      }
      std::size_t count = 0;
      for (std::size_t q = 0; q < n; ++q) {
        if (q == request.p) continue;
        if (combined(request.p, q) <= request.radius) ++count;
      }
      Response response;
      response.kind = request.kind;
      response.value = static_cast<double>(count);
      response.epoch = snapshot->version;
      return response;
    }
    case RequestKind::kUpsert:
    case RequestKind::kRemove:
      break;  // unreachable: rejected above
  }
  return Status(StatusCode::kInternal, "unknown request kind");
}

void EmbeddingService::record_latency(double ms) {
  const auto us = static_cast<std::uint64_t>(std::max(0.0, ms * 1000.0));
  latency_us_.observe(us);
}

ServiceStats EmbeddingService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.queue_depth = queue_.size();
  }
  const auto cache = cache_.counters();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  if (cache.hits + cache.misses > 0) {
    out.cache_hit_rate = static_cast<double>(cache.hits) /
                         static_cast<double>(cache.hits + cache.misses);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  out.submitted = submitted_;
  out.completed = completed_;
  out.rejected_queue_full = rejected_queue_full_;
  out.rejected_deadline = rejected_deadline_;
  out.failed = failed_;
  out.batches = batches_;
  out.max_batch_observed = max_batch_observed_;
  out.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - started_).count();
  if (out.uptime_seconds > 0.0) {
    out.qps = static_cast<double>(completed_) / out.uptime_seconds;
  }
  // Percentiles from the log2 histogram: report the upper edge of the
  // bucket holding the quantile (conservative, resolution one octave).
  out.p50_ms = latency_us_.quantile(0.50) / 1000.0;  // us -> ms
  out.p99_ms = latency_us_.quantile(0.99) / 1000.0;
  return out;
}

void export_service_stats(const ServiceStats& stats,
                          obs::Registry* registry) {
  const auto count = [registry](const char* name, const char* help,
                                std::uint64_t value) {
    registry->counter(name, help).set(value);
  };
  const auto gauge = [registry](const char* name, const char* help,
                                double value) {
    registry->gauge(name, help).set(value);
  };
  count("mpte_serve_submitted_total", "Requests accepted by submit().",
        stats.submitted);
  count("mpte_serve_completed_total", "Requests answered successfully.",
        stats.completed);
  count("mpte_serve_rejected_queue_full_total",
        "Requests rejected by admission control (queue full).",
        stats.rejected_queue_full);
  count("mpte_serve_rejected_deadline_total",
        "Requests expired in queue past their deadline.",
        stats.rejected_deadline);
  count("mpte_serve_failed_total", "Requests that evaluated to an error.",
        stats.failed);
  count("mpte_serve_batches_total", "Batcher wakeups that drained work.",
        stats.batches);
  count("mpte_serve_cache_hits_total", "Scalar-answer cache hits.",
        stats.cache_hits);
  count("mpte_serve_cache_misses_total", "Scalar-answer cache misses.",
        stats.cache_misses);
  count("mpte_serve_cache_evictions_total", "Cache entries evicted (LRU).",
        stats.cache_evictions);
  gauge("mpte_serve_queue_depth", "Requests currently queued.",
        static_cast<double>(stats.queue_depth));
  gauge("mpte_serve_max_batch", "Largest batch drained so far.",
        static_cast<double>(stats.max_batch_observed));
  gauge("mpte_serve_cache_hit_rate", "hits / (hits + misses).",
        stats.cache_hit_rate);
  gauge("mpte_serve_qps", "Completed requests per second of uptime.",
        stats.qps);
  gauge("mpte_serve_latency_p50_ms",
        "Median submit-to-completion latency (octave resolution).",
        stats.p50_ms);
  gauge("mpte_serve_latency_p99_ms",
        "99th percentile submit-to-completion latency (octave resolution).",
        stats.p99_ms);
  gauge("mpte_serve_uptime_seconds", "Seconds since service start.",
        stats.uptime_seconds);
}

void EmbeddingService::export_metrics(obs::Registry* registry) const {
  export_service_stats(stats(), registry);
  registry
      ->histogram("mpte_serve_latency_us",
                  "Submit-to-completion latency in microseconds "
                  "(log2 buckets).")
      .merge_from(latency_us_);
  if (dynamic_) dynamic_->export_metrics(registry);
}

std::string EmbeddingService::metrics_text() const {
  obs::Registry registry;
  export_metrics(&registry);
  return registry.prometheus_text();
}

void EmbeddingService::pause() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
  }
  work_cv_.notify_all();
}

void EmbeddingService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void EmbeddingService::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(
        Status(StatusCode::kUnavailable, "service stopped before evaluation"));
  }
  if (!leftover.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    failed_ += leftover.size();
  }
}

}  // namespace mpte::serve
