// Sharded, byte-bounded LRU cache for scalar query answers.
//
// Pair-distance traffic is heavily skewed in practice (hot pairs repeat),
// and a cached answer costs one hash probe instead of T O(log depth) tree
// walks. The cache is sharded by key hash so concurrent batch evaluation
// on the mpte::par pool doesn't serialize on one lock, and bounded in
// bytes (approximate, per entry) so a long-lived service can't grow
// without limit. Only scalar-valued queries (distance, range count) are
// cached; k-NN responses are variable-sized and left to recompute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mpte::serve {

/// Cache key: a kind/combiner tag plus two 64-bit operands (canonicalized
/// point pair, or point + bit-cast radius).
struct CacheKey {
  std::uint64_t tag = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const CacheKey& other) const {
    return tag == other.tag && a == other.a && b == other.b;
  }
};

class ShardedLruCache {
 public:
  /// Approximate bytes charged per entry (key + value + list/map nodes).
  static constexpr std::size_t kEntryBytes = 96;

  /// `max_bytes` = 0 disables the cache (lookup always misses, insert is a
  /// no-op). `shards` is clamped to at least 1.
  ShardedLruCache(std::size_t max_bytes, std::size_t shards);

  bool enabled() const { return per_shard_bytes_ > 0; }

  /// On hit, writes the cached value, refreshes recency, returns true.
  bool lookup(const CacheKey& key, double* value);

  /// Inserts or refreshes key -> value, evicting least-recently-used
  /// entries of the same shard while the shard exceeds its byte budget.
  void insert(const CacheKey& key, double value);

  void clear();

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  /// Aggregated over shards.
  Counters counters() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& key) const;
  };

  using LruList = std::list<std::pair<CacheKey, double>>;

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    LruList lru;
    std::unordered_map<CacheKey, LruList::iterator, KeyHash> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const CacheKey& key);

  std::size_t per_shard_bytes_ = 0;
  /// unique_ptr because Shard holds a mutex (immovable).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mpte::serve
