// TCP front end for EmbeddingService (loopback, newline protocol).
//
// One accept thread plus one thread per connection. A connection reads
// complete lines, groups consecutive query lines into one submit_batch
// (so a pipelining client gets server-side batching for free), and writes
// one response line per request in order. Control lines (stats / info /
// quit / shutdown) are answered inline; `shutdown` additionally stops the
// whole server, which unblocks wait().
//
// LineClient is the matching blocking client used by the CLI bench-client
// and the tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "serve/service.hpp"

namespace mpte::serve {

struct ServerOptions {
  /// 0 = pick an ephemeral port (start() returns the actual one).
  std::uint16_t port = 0;
  int backlog = 64;
};

class SocketServer {
 public:
  /// Borrows the service; it must outlive the server.
  SocketServer(EmbeddingService& service, ServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept thread; returns the bound
  /// port, or kUnavailable when the socket cannot be set up.
  Result<std::uint16_t> start();

  /// Blocks until stop() is called or a client sends `shutdown`.
  void wait();

  /// Closes the listener and all connections, joins threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Handles one control line; returns false when the connection should
  /// close. `out` accumulates response lines to send; `request_shutdown`
  /// is set when the whole server should stop (signalled by the caller
  /// only after the reply has been flushed).
  bool handle_line(const std::string& line, std::string* out,
                   bool* request_shutdown);

  EmbeddingService& service_;
  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::mutex mutex_;  // guards connection bookkeeping + shutdown flag
  std::condition_variable shutdown_cv_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopping_{false};
};

/// Minimal blocking line-oriented TCP client.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended).
  Status send_line(const std::string& line);

  /// Reads the next newline-terminated line (newline stripped).
  Result<std::string> read_line();

  /// send_line + read_line.
  Result<std::string> roundtrip(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mpte::serve
