// Request/response vocabulary of the embedding query service.
//
// The serving tier exists because a tree embedding is a build-once,
// query-millions sketch (Corollary 1): after the O(1)-round MPC build, a
// distance / k-NN / range query costs O(T log depth) tree work. These
// types are the service's typed surface — what the in-process API takes
// and returns, what the wire protocol (serve/wire.hpp) encodes, and what
// the stats snapshot reports.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpte::serve {

/// How multi-tree answers are combined across ensemble members (see
/// core/ensemble.hpp for why min is the practical default).
enum class Combiner : std::uint8_t {
  kMin,
  kExpected,
};

const char* to_string(Combiner combiner);

enum class RequestKind : std::uint8_t {
  /// Tree-metric distance between two embedded points.
  kDistance,
  /// Approximate k nearest neighbors by HST subtree walk.
  kKnn,
  /// Number of points within a given combined tree distance.
  kRangeCount,
  /// Insert a point (dynamic services only); answer carries its stable id.
  kUpsert,
  /// Erase a point by stable id (dynamic services only).
  kRemove,
};

/// True for the kinds that mutate the point set (dynamic services only).
constexpr bool is_update(RequestKind kind) {
  return kind == RequestKind::kUpsert || kind == RequestKind::kRemove;
}

const char* to_string(RequestKind kind);

/// One query. Which fields matter depends on `kind`; the factory
/// functions build well-formed instances.
struct Request {
  RequestKind kind = RequestKind::kDistance;
  Combiner combiner = Combiner::kMin;
  /// Query point (all kinds).
  std::size_t p = 0;
  /// Second point (kDistance only).
  std::size_t q = 0;
  /// Neighbor count (kKnn only).
  std::size_t k = 0;
  /// Distance threshold in input units (kRangeCount only).
  double radius = 0.0;
  /// Input-unit coordinates of the point to insert (kUpsert only).
  std::vector<double> coords;
  /// Stable point id to erase (kRemove only).
  std::uint64_t id = 0;
  /// Admission deadline measured from submit; 0 = none. A request still
  /// queued when its deadline passes is rejected with kDeadlineExceeded
  /// instead of evaluated late.
  std::chrono::microseconds deadline{0};

  static Request Distance(std::size_t p, std::size_t q,
                          Combiner combiner = Combiner::kMin) {
    Request r;
    r.kind = RequestKind::kDistance;
    r.combiner = combiner;
    r.p = p;
    r.q = q;
    return r;
  }

  static Request Knn(std::size_t p, std::size_t k,
                     Combiner combiner = Combiner::kMin) {
    Request r;
    r.kind = RequestKind::kKnn;
    r.combiner = combiner;
    r.p = p;
    r.k = k;
    return r;
  }

  static Request RangeCount(std::size_t p, double radius,
                            Combiner combiner = Combiner::kMin) {
    Request r;
    r.kind = RequestKind::kRangeCount;
    r.combiner = combiner;
    r.p = p;
    r.radius = radius;
    return r;
  }

  static Request Upsert(std::vector<double> coords) {
    Request r;
    r.kind = RequestKind::kUpsert;
    r.coords = std::move(coords);
    return r;
  }

  static Request Remove(std::uint64_t id) {
    Request r;
    r.kind = RequestKind::kRemove;
    r.id = id;
    return r;
  }
};

/// One k-NN hit.
struct Neighbor {
  std::size_t point = 0;
  /// Combined tree distance to the query, in input units.
  double distance = 0.0;
};

/// Answer to a Request of the matching kind.
struct Response {
  RequestKind kind = RequestKind::kDistance;
  /// kDistance: the combined distance. kRangeCount: the count.
  /// kKnn: the number of neighbors returned. kUpsert/kRemove: the id.
  double value = 0.0;
  /// kKnn only: neighbors ascending by (distance, point index).
  std::vector<Neighbor> neighbors;
  /// kUpsert: the assigned stable id. kRemove: the erased id.
  std::uint64_t id = 0;
  /// Version of the ensemble epoch the answer reflects — for updates, the
  /// epoch their batch published; 0 on a static (non-dynamic) service.
  std::uint64_t epoch = 0;
};

/// Point-in-time service counters; see docs/serving.md for field
/// semantics. Latency percentiles cover completed requests only
/// (submit-to-completion, including queue wait).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Admission-control rejections: queue at capacity at submit time.
  std::uint64_t rejected_queue_full = 0;
  /// Deadline expired while the request waited in the queue.
  std::uint64_t rejected_deadline = 0;
  /// Evaluated but answered with a non-OK status (e.g. bad point index).
  std::uint64_t failed = 0;
  /// Batches drained by the batcher thread.
  std::uint64_t batches = 0;
  /// Requests waiting right now.
  std::size_t queue_depth = 0;
  /// Largest batch the batcher has drained.
  std::size_t max_batch_observed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// hits / (hits + misses), 0 when no cacheable traffic yet.
  double cache_hit_rate = 0.0;
  /// completed / uptime.
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double uptime_seconds = 0.0;
};

}  // namespace mpte::serve
