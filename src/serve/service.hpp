// EmbeddingService — the long-lived, thread-safe query tier.
//
// One embedding build is amortized over millions of queries (the whole
// point of Corollary 1), so the serving half of the system is: an
// EmbeddingEnsemble with per-member LcaIndexes, fronted by
//
//  * a request batcher: submit() enqueues and returns a future; a
//    dedicated batcher thread drains up to max_batch requests per wakeup
//    (waiting at most max_wait for a batch to fill) and evaluates them
//    concurrently on the mpte::par pool — one queue/condvar handoff per
//    batch instead of per request;
//  * a sharded byte-bounded LRU cache over scalar answers (hot pairs);
//  * admission control: the queue is bounded (submit past capacity is
//    rejected immediately with kResourceExhausted — backpressure, not
//    unbounded growth) and each request may carry a deadline (still
//    queued past it -> kDeadlineExceeded, the work is never done late).
//
// Every answer is computed by the same evaluate() used directly against
// the ensemble, so service answers are byte-identical to unbatched,
// uncached queries — batching and caching change scheduling, never
// values.
//
// A service is either *static* (owns one immutable EmbeddingEnsemble,
// epoch 0, updates rejected) or *dynamic* (owns a dyn::DynamicEnsemble).
// In dynamic mode every query evaluates against an epoch snapshot — one
// atomic shared_ptr load of the current immutable epoch, so readers never
// block on writers — and upsert/remove requests ride the same batcher:
// each drained batch applies its updates serially in submission order,
// publishes ONE new epoch, and only then evaluates the batch's queries
// (against the fresh epoch). Cache keys mix the epoch version in, so
// entries from superseded epochs can never answer for the current one.
#pragma once

#include <chrono>
#include <cstddef>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/ensemble.hpp"
#include "dyn/dynamic_ensemble.hpp"
#include "obs/metrics.hpp"
#include "serve/lru_cache.hpp"
#include "serve/types.hpp"

namespace mpte::serve {

struct ServiceOptions {
  /// Most requests evaluated per batcher wakeup.
  std::size_t max_batch = 64;
  /// How long the batcher waits for a partial batch to fill before
  /// draining what is there. 0 = drain immediately.
  std::chrono::microseconds max_wait{200};
  /// Admission bound: submits beyond this many queued requests are
  /// rejected with kResourceExhausted.
  std::size_t max_queue = 4096;
  /// Total LRU cache budget in bytes across shards; 0 disables caching.
  std::size_t cache_bytes = 1 << 20;
  std::size_t cache_shards = 8;
  /// Threads for concurrent batch evaluation (0 = mpte::par default).
  std::size_t eval_threads = 0;
  /// Start with the batcher paused (tests exercise admission control by
  /// filling the queue deterministically; see pause()/resume()).
  bool start_paused = false;
};

class EmbeddingService {
 public:
  /// Static mode: takes ownership of the ensemble (served as immutable
  /// epoch 0, upsert/remove rejected) and starts the batcher thread.
  explicit EmbeddingService(EmbeddingEnsemble ensemble,
                            ServiceOptions options = {});

  /// Dynamic mode: serves the ensemble's current epoch and applies
  /// upsert/remove requests through the batcher (one publish per drained
  /// batch). The DynamicEnsemble must be non-null and already created
  /// (current() non-null).
  explicit EmbeddingService(std::unique_ptr<dyn::DynamicEnsemble> dynamic,
                            ServiceOptions options = {});
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Enqueues one request. Never blocks: over-capacity or post-stop
  /// submits resolve the future immediately with a rejection Status.
  std::future<Result<Response>> submit(const Request& request);

  /// Enqueues many requests under one lock acquisition (the cheap way to
  /// pipeline). Futures are in request order; each is admitted or
  /// rejected independently.
  std::vector<std::future<Result<Response>>> submit_batch(
      const std::vector<Request>& requests);

  /// Evaluates a request synchronously against the ensemble — no queue,
  /// no cache, no stats. This is the oracle the batched path must match
  /// byte-for-byte, and what tests compare against.
  Result<Response> evaluate(const Request& request) const;

  /// Counters + latency percentiles snapshot.
  ServiceStats stats() const;

  /// Exports the stats snapshot as mpte_serve_* metrics plus the full
  /// latency histogram (mpte_serve_latency_us). The `stats` wire line and
  /// the `metrics` exposition both derive from this registry content.
  void export_metrics(obs::Registry* registry) const;

  /// Prometheus text exposition of export_metrics(), terminated by the
  /// "# EOF" marker line — the serve `metrics` verb's response body.
  std::string metrics_text() const;

  /// Suspends / resumes batch draining. While paused, submits still
  /// enqueue (and admission control still applies) — used to exercise
  /// backpressure and deadline paths deterministically.
  void pause();
  void resume();

  /// Stops the batcher and rejects everything still queued with
  /// kUnavailable. Idempotent; the destructor calls it.
  void stop();

  /// The current epoch (static mode: the fixed epoch-0 wrapper). One
  /// atomic load in dynamic mode; never null; the shared_ptr keeps the
  /// snapshot alive for as long as the caller holds it.
  std::shared_ptr<const dyn::EnsembleEpoch> epoch_snapshot() const {
    return dynamic_ ? dynamic_->current() : static_epoch_;
  }
  /// Version of the current epoch (0 on a static service).
  std::uint64_t epoch() const { return epoch_snapshot()->version; }
  bool is_dynamic() const { return dynamic_ != nullptr; }

  /// The currently served ensemble. The reference is valid until the next
  /// epoch publish; callers that must outlive a publish should hold the
  /// epoch_snapshot() instead.
  const EmbeddingEnsemble& ensemble() const {
    return *epoch_snapshot()->ensemble;
  }
  std::size_t num_points() const { return epoch_snapshot()->num_points(); }
  std::size_t num_trees() const { return epoch_snapshot()->ensemble->size(); }
  /// Embedded dimension of the served points (== input dimension for
  /// dynamic services, which never apply the FJLT) — what an `upsert`
  /// must supply one coordinate per.
  std::size_t dim() const {
    return epoch_snapshot()->ensemble->member(0).dim_used;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    Clock::time_point enqueued;
    /// Clock::time_point::max() when the request carries no deadline.
    Clock::time_point deadline;
    std::promise<Result<Response>> promise;
  };

  void batcher_loop();
  /// Applies a batch's updates serially in submission order, publishes one
  /// new epoch when any applied, then evaluates the batch's queries on the
  /// pool (against the fresh epoch) and fulfills all promises in order.
  void run_batch(std::vector<Pending>& batch);
  /// Applies one upsert/remove to the dynamic ensemble (batcher thread
  /// only). The response's epoch is stamped after the batch publish.
  Result<Response> apply_update(const Request& request);
  /// evaluate() plus cache lookup/fill for scalar-valued kinds.
  Result<Response> evaluate_cached(const Request& request);
  void record_latency(double ms);

  /// Non-null in dynamic mode; writer side touched only by the batcher.
  std::unique_ptr<dyn::DynamicEnsemble> dynamic_;
  /// Static mode's one fixed epoch (version 0); null in dynamic mode.
  std::shared_ptr<const dyn::EnsembleEpoch> static_epoch_;
  ServiceOptions options_;
  ShardedLruCache cache_;
  Clock::time_point started_;

  mutable std::mutex mutex_;  // guards queue_, paused_, stopping_
  std::condition_variable work_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::thread batcher_;
  std::mutex stop_mutex_;  // serializes stop() callers around the join

  mutable std::mutex stats_mutex_;  // guards everything below
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  std::size_t max_batch_observed_ = 0;
  /// Log2-bucketed submit-to-completion latency histogram (microseconds):
  /// bucket i counts latencies in [2^(i-1), 2^i). An obs::Histogram so the
  /// same buckets back stats() percentiles and the metrics exposition.
  obs::Histogram latency_us_;
};

/// Mirrors a stats snapshot into mpte_serve_* registry series. Both the
/// one-line `stats` wire response (wire.cpp format_stats) and the service
/// metrics exposition render from this single mapping, so the two outputs
/// can never disagree about a count.
void export_service_stats(const ServiceStats& stats, obs::Registry* registry);

}  // namespace mpte::serve
