#include "serve/wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace mpte::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

Status malformed(const std::string& why) {
  return Status(StatusCode::kInvalidArgument, "malformed request: " + why);
}

bool parse_size(const std::string& token, std::size_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool parse_double(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

/// Parses the optional trailing "[min|exp] [deadline_ms]" suffix starting
/// at tokens[from].
Status parse_suffix(const std::vector<std::string>& tokens, std::size_t from,
                    Request* request) {
  std::size_t at = from;
  if (at < tokens.size() &&
      (tokens[at] == "min" || tokens[at] == "exp")) {
    request->combiner =
        tokens[at] == "min" ? Combiner::kMin : Combiner::kExpected;
    ++at;
  }
  if (at < tokens.size()) {
    std::size_t deadline_ms = 0;
    if (!parse_size(tokens[at], &deadline_ms)) {
      return malformed("bad deadline '" + tokens[at] + "'");
    }
    request->deadline = std::chrono::milliseconds(deadline_ms);
    ++at;
  }
  if (at != tokens.size()) {
    return malformed("trailing tokens after '" + tokens[at - 1] + "'");
  }
  return Status::Ok();
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

ControlCommand parse_control(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.size() != 1) return ControlCommand::kNone;
  if (tokens[0] == "stats") return ControlCommand::kStats;
  if (tokens[0] == "metrics") return ControlCommand::kMetrics;
  if (tokens[0] == "info") return ControlCommand::kInfo;
  if (tokens[0] == "quit") return ControlCommand::kQuit;
  if (tokens[0] == "shutdown") return ControlCommand::kShutdown;
  return ControlCommand::kNone;
}

Result<Request> parse_request(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return malformed("empty line");
  Request request;
  if (tokens[0] == "dist") {
    if (tokens.size() < 3) return malformed("dist needs <p> <q>");
    request.kind = RequestKind::kDistance;
    if (!parse_size(tokens[1], &request.p) ||
        !parse_size(tokens[2], &request.q)) {
      return malformed("bad point index");
    }
  } else if (tokens[0] == "knn") {
    if (tokens.size() < 3) return malformed("knn needs <p> <k>");
    request.kind = RequestKind::kKnn;
    if (!parse_size(tokens[1], &request.p) ||
        !parse_size(tokens[2], &request.k)) {
      return malformed("bad point index or k");
    }
  } else if (tokens[0] == "range") {
    if (tokens.size() < 3) return malformed("range needs <p> <radius>");
    request.kind = RequestKind::kRangeCount;
    if (!parse_size(tokens[1], &request.p)) {
      return malformed("bad point index");
    }
    if (!parse_double(tokens[2], &request.radius)) {
      return malformed("bad radius '" + tokens[2] + "'");
    }
  } else if (tokens[0] == "upsert") {
    if (tokens.size() < 2) return malformed("upsert needs coordinates");
    request.kind = RequestKind::kUpsert;
    request.coords.reserve(tokens.size() - 1);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      double coord = 0.0;
      if (!parse_double(tokens[i], &coord)) {
        return malformed("bad coordinate '" + tokens[i] + "'");
      }
      request.coords.push_back(coord);
    }
    return request;  // every token consumed; no combiner/deadline suffix
  } else if (tokens[0] == "remove") {
    if (tokens.size() != 2) return malformed("remove needs <id>");
    request.kind = RequestKind::kRemove;
    std::size_t id = 0;
    if (!parse_size(tokens[1], &id)) {
      return malformed("bad id '" + tokens[1] + "'");
    }
    request.id = id;
    return request;
  } else {
    return malformed("unknown verb '" + tokens[0] + "'");
  }
  const Status suffix = parse_suffix(tokens, 3, &request);
  if (!suffix.ok()) return suffix;
  return request;
}

std::string format_response(const Result<Response>& result) {
  if (!result.ok()) {
    return std::string("err ") + to_string(result.status().code()) + " " +
           result.status().message();
  }
  const Response& response = *result;
  std::string line = "ok ";
  line += to_string(response.kind);
  switch (response.kind) {
    case RequestKind::kDistance:
      line += " " + format_double(response.value);
      break;
    case RequestKind::kKnn:
      line += " " + std::to_string(response.neighbors.size());
      for (const Neighbor& neighbor : response.neighbors) {
        line += " " + std::to_string(neighbor.point) + ":" +
                format_double(neighbor.distance);
      }
      break;
    case RequestKind::kRangeCount:
      line += " " + std::to_string(
                        static_cast<unsigned long long>(response.value));
      break;
    case RequestKind::kUpsert:
    case RequestKind::kRemove:
      line += " id=" + std::to_string(response.id) +
              " epoch=" + std::to_string(response.epoch);
      break;
  }
  return line;
}

std::string format_info(std::size_t points, std::size_t trees,
                        std::uint64_t epoch, std::size_t dim) {
  // New fields append after the existing ones: clients probing with
  // "ok info points=%zu" keep parsing.
  return "ok info points=" + std::to_string(points) +
         " trees=" + std::to_string(trees) +
         " epoch=" + std::to_string(epoch) + " dim=" + std::to_string(dim);
}

std::string format_stats(const ServiceStats& stats) {
  // Route through the registry exporter: the line and the `metrics`
  // exposition render the same series, so they cannot disagree.
  obs::Registry registry;
  export_service_stats(stats, &registry);
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "ok stats qps=%.1f p50_ms=%.3f p99_ms=%.3f hit_rate=%.3f depth=%zu "
      "rejected=%llu completed=%llu",
      registry.gauge_value("mpte_serve_qps"),
      registry.gauge_value("mpte_serve_latency_p50_ms"),
      registry.gauge_value("mpte_serve_latency_p99_ms"),
      registry.gauge_value("mpte_serve_cache_hit_rate"),
      static_cast<std::size_t>(registry.gauge_value("mpte_serve_queue_depth")),
      static_cast<unsigned long long>(
          registry.counter_value("mpte_serve_rejected_queue_full_total") +
          registry.counter_value("mpte_serve_rejected_deadline_total")),
      static_cast<unsigned long long>(
          registry.counter_value("mpte_serve_completed_total")));
  return buffer;
}

bool is_ok_line(const std::string& line) {
  return line.rfind("ok", 0) == 0;
}

}  // namespace mpte::serve
