// Newline-delimited text protocol for the socket server.
//
// One request per line, one response line per request, in order. Kept as
// pure string <-> struct functions so the protocol is unit-testable
// without sockets. Grammar (fields space-separated; [] optional):
//
//   dist  <p> <q> [min|exp] [deadline_ms]
//   knn   <p> <k> [min|exp] [deadline_ms]
//   range <p> <radius> [min|exp] [deadline_ms]
//   upsert <c0> <c1> ... (dynamic services only; one coordinate per dim)
//   remove <id>          (dynamic services only; stable id from upsert)
//   stats | metrics | info | quit | shutdown
//
// Responses:
//
//   ok dist <value>
//   ok knn <count> <point>:<distance> ...
//   ok range <count>
//   ok upsert id=<id> epoch=<e>
//   ok remove id=<id> epoch=<e>
//   ok info points=<n> trees=<t> epoch=<e> dim=<d>
//   ok stats qps=... p50_ms=... p99_ms=... hit_rate=... depth=...
//            rejected=... completed=...
//   err <code> <message>
//
// Updates batched together publish one ensemble epoch; <e> is the version
// their batch published (0 = static service, which rejects updates).
//
// `metrics` is the one multi-line response: the full Prometheus text
// exposition of the service registry (docs/observability.md), terminated
// by a line reading "# EOF" so clients know where it ends. `quit` closes
// the connection without a reply.
#pragma once

#include <string>

#include "common/status.hpp"
#include "serve/types.hpp"

namespace mpte::serve {

/// Non-query protocol lines the server handles itself.
enum class ControlCommand {
  kNone,      // not a control line — parse as a request
  kStats,     // reply with a stats line
  kMetrics,   // reply with the Prometheus exposition (multi-line, # EOF)
  kInfo,      // reply with ensemble shape
  kQuit,      // close this connection
  kShutdown,  // stop the whole server
};

ControlCommand parse_control(const std::string& line);

/// Parses a query line; kInvalidArgument on malformed input.
Result<Request> parse_request(const std::string& line);

/// Formats one response line (no trailing newline). Errors become
/// "err <code> <message>".
std::string format_response(const Result<Response>& result);

std::string format_info(std::size_t points, std::size_t trees,
                        std::uint64_t epoch, std::size_t dim);
/// The one-line stats response. Values are read back from a registry
/// filled by export_service_stats (service.hpp), the same numbers the
/// `metrics` exposition reports.
std::string format_stats(const ServiceStats& stats);

/// True when the line is a success response.
bool is_ok_line(const std::string& line);

}  // namespace mpte::serve
