#include "serve/lru_cache.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mpte::serve {

std::size_t ShardedLruCache::KeyHash::operator()(const CacheKey& key) const {
  return static_cast<std::size_t>(
      hash_combine(hash_combine(mix64(key.tag), key.a), key.b));
}

ShardedLruCache::ShardedLruCache(std::size_t max_bytes, std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  // Each shard gets an equal slice; a zero slice (max_bytes < shards but
  // nonzero) still admits one entry per shard via the floor in insert().
  per_shard_bytes_ = max_bytes / count;
  if (max_bytes > 0 && per_shard_bytes_ == 0) per_shard_bytes_ = kEntryBytes;
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedLruCache::Shard& ShardedLruCache::shard_for(const CacheKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool ShardedLruCache::lookup(const CacheKey& key, double* value) {
  if (!enabled()) return false;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->second;
  return true;
}

void ShardedLruCache::insert(const CacheKey& key, double value) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.map.emplace(key, shard.lru.begin());
  while (shard.lru.size() * kEntryBytes > per_shard_bytes_ &&
         shard.lru.size() > 1) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedLruCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
  }
}

ShardedLruCache::Counters ShardedLruCache::counters() const {
  Counters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  total.bytes = total.entries * kEntryBytes;
  return total;
}

}  // namespace mpte::serve
