// Deterministic fault injection for the MPC simulator.
//
// A FaultPlan is a schedule of events — rank-crash-at-round, message-drop,
// message-duplicate — consulted by Cluster::run_round through the
// ClusterHooks interface (ckpt::Coordinator adapts one to the other). The
// whole schedule is a pure function of a single seed, so a failing fuzz
// configuration reproduces from that seed alone, at any cluster thread
// count.
//
// Crash events are consumed when they fire: a worker that died and was
// replaced does not die again at the same round, which is what lets crash
// recovery terminate. Drop/duplicate events are masked by the simulated
// substrate (retransmit / dedup), so they perturb counters, never bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "mpc/cluster.hpp"

namespace mpte::ckpt {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kDrop = 1,
  kDuplicate = 2,
};

struct FaultEvent {
  std::uint32_t round = 0;
  FaultKind kind = FaultKind::kCrash;
  /// Crash victim, or the message's source rank for drop/duplicate.
  mpc::MachineId rank = 0;
  /// Message destination rank (drop/duplicate only).
  mpc::MachineId peer = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A seeded, replayable schedule of injected faults.
class FaultPlan {
 public:
  struct Options {
    std::size_t crashes = 0;
    std::size_t drops = 0;
    std::size_t duplicates = 0;
    /// Event rounds are drawn uniformly from [0, round_horizon).
    std::size_t round_horizon = 24;
  };

  FaultPlan() = default;

  /// Seeded schedule: the same (seed, num_machines, options) produce the
  /// same event sequence on every host and at every thread count.
  static FaultPlan generate(std::uint64_t seed, std::size_t num_machines,
                            const Options& options);

  void add_crash(std::size_t round, mpc::MachineId rank);
  void add_drop(std::size_t round, mpc::MachineId src, mpc::MachineId dst);
  void add_duplicate(std::size_t round, mpc::MachineId src,
                     mpc::MachineId dst);

  /// First unconsumed crash scheduled for `round`; marks it consumed.
  std::optional<mpc::MachineId> take_crash(std::size_t round);

  /// Unconsumed drop/duplicate events matching (round, src, dst); marks
  /// them consumed and returns their counts.
  mpc::ClusterHooks::DeliveryFaults take_delivery(std::size_t round,
                                                  mpc::MachineId src,
                                                  mpc::MachineId dst);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t consumed() const;

  /// Consumption cursor, one byte per event — the plan's "RNG position".
  /// Snapshots persist it so a cross-process resume can tell which events
  /// already fired. In-process recovery deliberately does NOT rewind it
  /// (a rewound crash would re-fire forever; see Coordinator).
  std::vector<std::uint8_t> consumed_flags() const { return consumed_; }
  void restore_consumed(const std::vector<std::uint8_t>& flags);

 private:
  void push(FaultEvent event);

  std::vector<FaultEvent> events_;
  std::vector<std::uint8_t> consumed_;  // parallel to events_
};

}  // namespace mpte::ckpt
