#include "ckpt/manager.hpp"

#include <algorithm>
#include <filesystem>

#include "common/checksum.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace mpte::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".mpck";

std::string snapshot_filename(std::uint64_t rounds) {
  // Zero-padded so lexicographic filename order equals round order.
  std::string digits = std::to_string(rounds);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return kPrefix + digits + kSuffix;
}

}  // namespace

Coordinator::Coordinator(mpc::CheckpointPolicy policy, FaultPlan plan)
    : policy_(std::move(policy)), plan_(std::move(plan)) {
  if (policy_.enabled() && policy_.directory.empty()) {
    throw MpteError("Coordinator: checkpoint policy enabled without a directory");
  }
}

std::optional<mpc::MachineId> Coordinator::crash_rank(std::size_t round) {
  return plan_.take_crash(round);
}

mpc::ClusterHooks::DeliveryFaults Coordinator::delivery_faults(
    std::size_t round, mpc::MachineId src, mpc::MachineId dst) {
  return plan_.take_delivery(round, src, dst);
}

void Coordinator::round_committed(mpc::Cluster& cluster, std::size_t round) {
  (void)round;
  if (!policy_.enabled()) return;
  ++rounds_since_checkpoint_;
  const auto& records = cluster.stats().records();
  if (!records.empty()) {
    bytes_since_checkpoint_ += records.back().total_message_bytes;
  }
  bool due = false;
  switch (policy_.mode) {
    case mpc::CheckpointPolicy::Mode::kOff:
      break;
    case mpc::CheckpointPolicy::Mode::kEveryK:
      due = rounds_since_checkpoint_ >=
            std::max<std::size_t>(policy_.every_k, 1);
      break;
    case mpc::CheckpointPolicy::Mode::kByteBudget:
      due = bytes_since_checkpoint_ >= policy_.byte_budget;
      break;
  }
  if (!due) return;
  last_write_status_ = write_snapshot(cluster);
  rounds_since_checkpoint_ = 0;
  bytes_since_checkpoint_ = 0;
}

Status Coordinator::write_snapshot(mpc::Cluster& cluster) {
  const obs::Span span("ckpt", "write-snapshot", "round",
                       cluster.stats().rounds());
  Timer timer;
  std::error_code ec;
  fs::create_directories(policy_.directory, ec);
  if (ec) {
    return Status(StatusCode::kUnavailable,
                  "cannot create checkpoint directory " + policy_.directory);
  }
  const Snapshot snap = Snapshot::capture(cluster, plan_.consumed_flags());
  const std::vector<std::uint8_t> bytes = snap.to_bytes();
  const fs::path path = fs::path(policy_.directory) /
                        snapshot_filename(snap.rounds);
  const Status status = write_file_atomic(path.string(), bytes);
  if (!status.ok()) return status;

  auto& resilience = cluster.stats().resilience();
  resilience.checkpoints_written += 1;
  resilience.checkpoint_bytes += bytes.size();
  resilience.checkpoint_seconds += timer.seconds();

  // Prune oldest snapshots beyond the retention count.
  const auto paths = snapshot_paths();
  const std::size_t keep = std::max<std::size_t>(policy_.keep, 1);
  if (paths.size() > keep) {
    for (std::size_t i = 0; i + keep < paths.size(); ++i) {
      fs::remove(paths[i], ec);
    }
  }
  return Status::Ok();
}

std::vector<std::string> Coordinator::snapshot_paths() const {
  return snapshot_paths(policy_.directory);
}

std::vector<std::string> Coordinator::snapshot_paths(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kPrefix) && name.ends_with(kSuffix)) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<Snapshot> Coordinator::load_latest() const {
  const auto paths = snapshot_paths();
  Status last(StatusCode::kUnavailable,
              "no snapshots in " + policy_.directory);
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    auto snap = Snapshot::read(*it);
    if (snap.ok()) return snap;
    last = snap.status();  // corrupt/truncated: fall back to an older file
  }
  return last;
}

void Coordinator::restore_latest(mpc::Cluster& cluster) {
  const obs::Span span("ckpt", "restore");
  Timer timer;
  auto snap = load_latest();
  if (snap.ok()) {
    cluster.resume_from(std::move(snap->state));
  } else {
    // Nothing usable on disk: recovery degenerates to restart-from-scratch.
    cluster.reset_to_start();
  }
  // plan_'s consumed events intentionally stay consumed (see header).
  auto& resilience = cluster.stats().resilience();
  resilience.recoveries += 1;
  resilience.recovery_seconds += timer.seconds();
}

}  // namespace mpte::ckpt
