#include "ckpt/fault.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mpte::ckpt {

FaultPlan FaultPlan::generate(std::uint64_t seed, std::size_t num_machines,
                              const Options& options) {
  if (num_machines == 0) {
    throw MpteError("FaultPlan::generate: need at least one machine");
  }
  const std::size_t horizon = std::max<std::size_t>(options.round_horizon, 1);
  Rng rng(hash_combine(mix64(seed), 0x6661756c74ull));  // "fault"
  FaultPlan plan;
  for (std::size_t i = 0; i < options.crashes; ++i) {
    plan.add_crash(rng.uniform_u64(horizon),
                   static_cast<mpc::MachineId>(rng.uniform_u64(num_machines)));
  }
  for (std::size_t i = 0; i < options.drops; ++i) {
    plan.add_drop(rng.uniform_u64(horizon),
                  static_cast<mpc::MachineId>(rng.uniform_u64(num_machines)),
                  static_cast<mpc::MachineId>(rng.uniform_u64(num_machines)));
  }
  for (std::size_t i = 0; i < options.duplicates; ++i) {
    plan.add_duplicate(
        rng.uniform_u64(horizon),
        static_cast<mpc::MachineId>(rng.uniform_u64(num_machines)),
        static_cast<mpc::MachineId>(rng.uniform_u64(num_machines)));
  }
  return plan;
}

void FaultPlan::push(FaultEvent event) {
  // Keep events ordered by round (stable within a round by insertion) so
  // events() reads as a timeline and consumption scans stay predictable.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.round < b.round; });
  consumed_.insert(consumed_.begin() + (pos - events_.begin()), 0);
  events_.insert(pos, event);
}

void FaultPlan::add_crash(std::size_t round, mpc::MachineId rank) {
  push(FaultEvent{static_cast<std::uint32_t>(round), FaultKind::kCrash, rank,
                  0});
}

void FaultPlan::add_drop(std::size_t round, mpc::MachineId src,
                         mpc::MachineId dst) {
  push(FaultEvent{static_cast<std::uint32_t>(round), FaultKind::kDrop, src,
                  dst});
}

void FaultPlan::add_duplicate(std::size_t round, mpc::MachineId src,
                              mpc::MachineId dst) {
  push(FaultEvent{static_cast<std::uint32_t>(round), FaultKind::kDuplicate,
                  src, dst});
}

std::optional<mpc::MachineId> FaultPlan::take_crash(std::size_t round) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.round != round || e.kind != FaultKind::kCrash || consumed_[i]) {
      continue;
    }
    consumed_[i] = 1;
    return e.rank;
  }
  return std::nullopt;
}

mpc::ClusterHooks::DeliveryFaults FaultPlan::take_delivery(
    std::size_t round, mpc::MachineId src, mpc::MachineId dst) {
  mpc::ClusterHooks::DeliveryFaults faults;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.round != round || e.rank != src || e.peer != dst || consumed_[i]) {
      continue;
    }
    if (e.kind == FaultKind::kDrop) {
      consumed_[i] = 1;
      ++faults.dropped;
    } else if (e.kind == FaultKind::kDuplicate) {
      consumed_[i] = 1;
      ++faults.duplicated;
    }
  }
  return faults;
}

std::size_t FaultPlan::consumed() const {
  std::size_t n = 0;
  for (const std::uint8_t c : consumed_) n += c != 0;
  return n;
}

void FaultPlan::restore_consumed(const std::vector<std::uint8_t>& flags) {
  if (flags.size() != events_.size()) {
    throw MpteError("FaultPlan::restore_consumed: cursor has " +
                    std::to_string(flags.size()) + " flags, plan has " +
                    std::to_string(events_.size()) + " events");
  }
  consumed_ = flags;
}

}  // namespace mpte::ckpt
