// Versioned, checksummed on-disk snapshots of Cluster execution state.
//
// A snapshot captures everything needed to re-enter a run at a round
// boundary: every machine's LocalStore and inbox (Buffer slabs shared with
// the live cluster at capture — serialization is the only copy), the full
// RoundRecord history (doubling as the round counter), the driver note
// (host-side decisions like the chosen delta), and the fault plan's
// consumption cursor. The encoding reuses Serializer and is wrapped in the
// common checksummed file envelope, so truncated or bit-flipped snapshot
// files are rejected with a Status instead of resurrecting garbage state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mpc/cluster.hpp"

namespace mpte::ckpt {

struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x4b43504d;  // "MPCK"
  static constexpr std::uint32_t kVersion = 1;

  /// Rounds committed when the snapshot was taken (== state.records.size();
  /// resume_from skips exactly this many run_round calls).
  std::uint64_t rounds = 0;
  mpc::ClusterState state;
  std::vector<std::uint8_t> fault_cursor;

  /// Captures the cluster's restorable state plus the fault plan cursor.
  static Snapshot capture(const mpc::Cluster& cluster,
                          std::vector<std::uint8_t> fault_cursor = {});

  /// Serialized payload wrapped in the checksummed envelope.
  std::vector<std::uint8_t> to_bytes() const;

  /// Envelope-validates and decodes; malformed input yields a Status
  /// (kInvalidArgument), never UB or a partially constructed snapshot.
  static Result<Snapshot> from_bytes(std::vector<std::uint8_t> file_bytes,
                                     const std::string& context);

  /// Atomic write (same-directory temp file + rename).
  Status write(const std::string& path) const;

  static Result<Snapshot> read(const std::string& path);
};

}  // namespace mpte::ckpt
