#include "ckpt/snapshot.hpp"

#include "common/checksum.hpp"
#include "common/serialize.hpp"

namespace mpte::ckpt {

namespace {

void write_buffer(Serializer& s, const mpc::Buffer& buffer) {
  s.write(static_cast<std::uint64_t>(buffer.size()));
  s.write_raw(buffer.span());
}

mpc::Buffer read_buffer(Deserializer& d) {
  return mpc::Buffer(d.read_vector<std::uint8_t>());
}

Snapshot decode_payload(std::span<const std::uint8_t> payload,
                        const std::string& context) {
  Deserializer d(payload);
  const auto magic = d.read<std::uint32_t>();
  if (magic != Snapshot::kMagic) {
    throw MpteError(context + ": not a snapshot (bad payload magic)");
  }
  const auto version = d.read<std::uint32_t>();
  if (version != Snapshot::kVersion) {
    throw MpteError(context + ": unsupported snapshot version " +
                    std::to_string(version));
  }

  Snapshot snap;
  snap.rounds = d.read<std::uint64_t>();
  const auto num_machines = d.read<std::uint64_t>();
  snap.state.machines.resize(num_machines);
  for (auto& machine : snap.state.machines) {
    const auto num_blobs = d.read<std::uint64_t>();
    for (std::uint64_t b = 0; b < num_blobs; ++b) {
      const std::string key = d.read_string();
      machine.store.set_blob(key, read_buffer(d));
    }
    const auto num_messages = d.read<std::uint64_t>();
    machine.inbox.reserve(num_messages);
    for (std::uint64_t i = 0; i < num_messages; ++i) {
      const auto from = d.read<mpc::MachineId>();
      machine.inbox.push_back(mpc::Message{from, read_buffer(d)});
    }
  }

  const auto num_records = d.read<std::uint64_t>();
  if (num_records != snap.rounds) {
    throw MpteError(context + ": record count " +
                    std::to_string(num_records) +
                    " disagrees with round counter " +
                    std::to_string(snap.rounds));
  }
  snap.state.records.resize(num_records);
  for (auto& r : snap.state.records) {
    r.label = d.read_string();
    r.max_sent_bytes = d.read<std::uint64_t>();
    r.max_recv_bytes = d.read<std::uint64_t>();
    r.total_message_bytes = d.read<std::uint64_t>();
    r.max_resident_bytes = d.read<std::uint64_t>();
    r.total_resident_bytes = d.read<std::uint64_t>();
    r.violations = d.read<std::uint64_t>();
    const auto num_channels = d.read<std::uint64_t>();
    for (std::uint64_t c = 0; c < num_channels; ++c) {
      const std::string channel = d.read_string();
      r.channel_bytes[channel] = d.read<std::uint64_t>();
    }
  }

  snap.fault_cursor = d.read_vector<std::uint8_t>();
  snap.state.driver_note = read_buffer(d);
  if (!d.exhausted()) {
    throw MpteError(context + ": trailing bytes after snapshot payload");
  }
  return snap;
}

}  // namespace

Snapshot Snapshot::capture(const mpc::Cluster& cluster,
                           std::vector<std::uint8_t> fault_cursor) {
  Snapshot snap;
  snap.state = cluster.capture_state();
  snap.rounds = snap.state.records.size();
  snap.fault_cursor = std::move(fault_cursor);
  return snap;
}

std::vector<std::uint8_t> Snapshot::to_bytes() const {
  Serializer s;
  s.write(kMagic);
  s.write(kVersion);
  s.write(static_cast<std::uint64_t>(rounds));
  s.write(static_cast<std::uint64_t>(state.machines.size()));
  for (const auto& machine : state.machines) {
    const auto entries = machine.store.entries();
    s.write(static_cast<std::uint64_t>(entries.size()));
    for (const auto& [key, blob] : entries) {
      s.write_string(key);
      write_buffer(s, blob);
    }
    s.write(static_cast<std::uint64_t>(machine.inbox.size()));
    for (const auto& message : machine.inbox) {
      s.write(message.from);
      write_buffer(s, message.payload);
    }
  }
  s.write(static_cast<std::uint64_t>(state.records.size()));
  for (const auto& r : state.records) {
    s.write_string(r.label);
    s.write(static_cast<std::uint64_t>(r.max_sent_bytes));
    s.write(static_cast<std::uint64_t>(r.max_recv_bytes));
    s.write(static_cast<std::uint64_t>(r.total_message_bytes));
    s.write(static_cast<std::uint64_t>(r.max_resident_bytes));
    s.write(static_cast<std::uint64_t>(r.total_resident_bytes));
    s.write(static_cast<std::uint64_t>(r.violations));
    s.write(static_cast<std::uint64_t>(r.channel_bytes.size()));
    for (const auto& [channel, bytes] : r.channel_bytes) {
      s.write_string(channel);
      s.write(static_cast<std::uint64_t>(bytes));
    }
  }
  s.write_vector(fault_cursor);
  write_buffer(s, state.driver_note);
  return wrap_checksummed(s.bytes());
}

Result<Snapshot> Snapshot::from_bytes(std::vector<std::uint8_t> file_bytes,
                                      const std::string& context) {
  auto payload = unwrap_checksummed(std::move(file_bytes),
                                    /*allow_legacy=*/false, context);
  if (!payload.ok()) return payload.status();
  try {
    return decode_payload(*payload, context);
  } catch (const MpteError& e) {
    // A checksum-valid but structurally impossible payload (or a short
    // read racing the envelope) is still a rejected file, not UB.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

Status Snapshot::write(const std::string& path) const {
  return write_file_atomic(path, to_bytes());
}

Result<Snapshot> Snapshot::read(const std::string& path) {
  auto bytes = read_file_bytes(path);
  if (!bytes.ok()) return bytes.status();
  return from_bytes(std::move(*bytes), path);
}

}  // namespace mpte::ckpt
