// Crash-recovery driver loop.
//
// run_with_recovery re-runs a pipeline until it finishes without an
// injected crash. On RankCrashed it restores the newest snapshot through
// the Coordinator (or resets the cluster when none exists) and calls the
// body again; the restored cluster fast-forwards the already-committed
// rounds, so the re-driven pipeline produces state — and output — byte-
// identical to a fault-free run. The body must therefore be *re-enterable*:
// calling it again after resume_from must issue the same run_round
// sequence (every pipeline in this library is, because round structure is
// a pure function of config).
//
// When the restore budget runs out the Status code is kAborted — terminal,
// unlike the retryable kUnavailable.
#pragma once

#include <string>
#include <type_traits>
#include <utility>

#include "ckpt/manager.hpp"
#include "common/status.hpp"
#include "mpc/cluster.hpp"

namespace mpte::ckpt {

struct RecoveryOptions {
  enum class Mode {
    /// Restore the newest snapshot and fast-forward to it. Requires a
    /// resume-aware pipeline (mpc_embed; anything whose host-side code
    /// honors fast_forwarding()).
    kResume,
    /// Reset the cluster to the start and re-run from round 0. Always
    /// sound — the choice for pipelines with host-side decision reads
    /// between rounds (the mpc_apps algorithms).
    kRestart,
  };
  Mode mode = Mode::kResume;
  /// Restores attempted before giving up with kAborted. Bounds the
  /// pathological case of a fault plan that crashes faster than the
  /// checkpoint policy makes progress.
  int max_recoveries = 8;
};

/// Runs `body` (any callable returning Status or Result<T>, constructible
/// from a Status) under crash recovery. Returns the body's result, or a
/// kAborted Status/Result when max_recoveries restores were not enough.
template <typename Fn>
auto run_with_recovery(mpc::Cluster& cluster, Coordinator& coordinator,
                       Fn&& body, RecoveryOptions options = {})
    -> std::invoke_result_t<Fn&> {
  using R = std::invoke_result_t<Fn&>;
  int recoveries = 0;
  for (;;) {
    try {
      return body();
    } catch (const mpc::RankCrashed& crash) {
      if (recoveries >= options.max_recoveries) {
        return R(Status(
            StatusCode::kAborted,
            std::string("crash recovery exhausted after ") +
                std::to_string(recoveries) + " restores (last: " +
                crash.what() + ")"));
      }
      ++recoveries;
      if (options.mode == RecoveryOptions::Mode::kResume) {
        coordinator.restore_latest(cluster);
      } else {
        cluster.reset_to_start();
        auto& resilience = cluster.stats().resilience();
        resilience.recoveries += 1;
      }
    }
  }
}

}  // namespace mpte::ckpt
