// The checkpoint/fault coordinator: the concrete ClusterHooks.
//
// A Coordinator owns a FaultPlan (what to inject) and interprets the
// CheckpointPolicy from ClusterConfig (when to snapshot). Attach it with
// cluster.set_hooks(&coordinator); it then
//   - throws RankCrashed at scheduled crash rounds,
//   - counts scheduled drop/duplicate events at delivery (masked faults),
//   - snapshots the cluster at policy-selected round boundaries, atomically,
//     pruning old files down to policy.keep.
//
// Recovery: restore_latest() loads the newest readable snapshot from the
// policy directory into the cluster (corrupted files are skipped), or
// resets the cluster to the start when none is usable. The fault plan's
// consumed events stay consumed across an in-process restore — a crash
// that already fired must not re-fire, or recovery would loop forever.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ckpt/fault.hpp"
#include "ckpt/snapshot.hpp"
#include "mpc/cluster.hpp"

namespace mpte::ckpt {

class Coordinator : public mpc::ClusterHooks {
 public:
  explicit Coordinator(mpc::CheckpointPolicy policy, FaultPlan plan = {});

  /// Convenience: policy comes from the cluster's own config.
  static Coordinator for_cluster(const mpc::Cluster& cluster,
                                 FaultPlan plan = {}) {
    return Coordinator(cluster.config().checkpoint, std::move(plan));
  }

  // ClusterHooks:
  std::optional<mpc::MachineId> crash_rank(std::size_t round) override;
  DeliveryFaults delivery_faults(std::size_t round, mpc::MachineId src,
                                 mpc::MachineId dst) override;
  void round_committed(mpc::Cluster& cluster, std::size_t round) override;

  /// Restores the newest readable snapshot into `cluster`, or resets it to
  /// the start when the directory holds none. Updates the cluster's
  /// resilience counters (recoveries, recovery_seconds).
  void restore_latest(mpc::Cluster& cluster);

  /// Newest readable snapshot in the policy directory; kUnavailable if the
  /// directory holds none, the last decode Status if all are corrupt.
  Result<Snapshot> load_latest() const;

  /// Snapshot files currently on disk, oldest first.
  std::vector<std::string> snapshot_paths() const;
  static std::vector<std::string> snapshot_paths(const std::string& dir);

  const mpc::CheckpointPolicy& policy() const { return policy_; }
  FaultPlan& plan() { return plan_; }
  const FaultPlan& plan() const { return plan_; }

  /// Status of the most recent snapshot write (ok until one fails; a
  /// failed write never aborts the run, it only surfaces here).
  const Status& last_write_status() const { return last_write_status_; }

 private:
  Status write_snapshot(mpc::Cluster& cluster);

  mpc::CheckpointPolicy policy_;
  FaultPlan plan_;
  std::size_t rounds_since_checkpoint_ = 0;
  std::size_t bytes_since_checkpoint_ = 0;
  Status last_write_status_;
};

}  // namespace mpte::ckpt
