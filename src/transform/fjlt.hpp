// The Fast Johnson–Lindenstrauss Transform of Ailon–Chazelle (Section 5).
//
// phi(x) = k^{-1/2} · P · H · D · x, where
//   * D is a random ±1 diagonal (d×d),
//   * H is the orthonormal Walsh–Hadamard matrix (d padded to a power of 2),
//   * P is a sparse k×d matrix: each entry is 0 with probability 1-q and
//     N(0, q^{-1}) otherwise, with q = min(Theta(log^2 n / d), 1).
//
// Note the paper's Section 5 writes phi = k^{-1} PHD; the k^{-1/2} scaling
// is the one that makes E||phi(x)||^2 = ||x||^2 (P's rows have expected
// squared norm ||x||^2 each), and our tests verify that normalization.
//
// All randomness is *counter-based*: entry (i, j) of P and entry j of D are
// pure functions of (seed, i, j). That is what lets the MPC implementation
// (transform/mpc_fjlt.*) materialize exactly the slice of P a machine
// needs, with no communication, while remaining bit-identical to the
// sequential transform.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point_set.hpp"

namespace mpte {

/// Shape and randomness of one sampled FJLT.
struct FjltConfig {
  /// Original input dimension d.
  std::size_t input_dim = 0;
  /// d rounded up to a power of two (H's size); inputs are zero-padded.
  std::size_t padded_dim = 0;
  /// Target dimension k.
  std::size_t output_dim = 0;
  /// Sparsity of P: per-entry keep probability.
  double q = 1.0;
  /// Root seed for D and P.
  std::uint64_t seed = 0;

  /// The paper's parameterization: k = ceil(c_k·xi^-2·log n) with c_k = 2,
  /// q = min(c_q·log^2(n)/d_padded, 1) with c_q = 2. Requires n >= 2,
  /// xi in (0, 0.5).
  static FjltConfig make(std::size_t n, std::size_t input_dim, double xi,
                         std::uint64_t seed);
};

/// D_jj in {-1, +1} as a pure function of (seed, j).
double fjlt_d_sign(std::uint64_t seed, std::size_t j);

/// P_ij as a pure function of (seed, i, j): 0 with prob 1-q, else
/// N(0, q^{-1}). Deterministic given its arguments.
double fjlt_p_entry(std::uint64_t seed, double q, std::size_t row,
                    std::size_t col);

/// A sampled FJLT with the sparse P materialized in CSR for fast repeated
/// application.
class Fjlt {
 public:
  explicit Fjlt(FjltConfig config);

  const FjltConfig& config() const { return config_; }

  /// Number of nonzeros in P — the Theorem 3 space term
  /// O(xi^-2 log^3 n) the E5 bench checks.
  std::size_t p_nonzeros() const { return values_.size(); }

  /// phi(x) for one point; p.size() must equal input_dim.
  std::vector<double> apply(std::span<const double> p) const;

  /// phi applied to every point.
  PointSet transform(const PointSet& points) const;

 private:
  FjltConfig config_;
  // CSR over rows of P (only nonzeros).
  std::vector<std::size_t> row_begin_;  // size k+1
  std::vector<std::uint32_t> cols_;
  std::vector<double> values_;
};

}  // namespace mpte
