#include "transform/sparse_jl.hpp"

#include <cassert>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

int sparse_jl_sign(std::uint64_t seed, std::size_t row, std::size_t col) {
  const std::uint64_t h =
      hash_combine(hash_combine(mix64(seed ^ 0xac1170ull), row), col);
  // Six equal slices of the hash range: one gives +1, one gives -1.
  const std::uint64_t slice = h % 6;
  if (slice == 0) return 1;
  if (slice == 1) return -1;
  return 0;
}

SparseJl::SparseJl(std::size_t input_dim, std::size_t output_dim,
                   std::uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim), seed_(seed) {
  if (input_dim == 0 || output_dim == 0) {
    throw MpteError("SparseJl: dimensions must be positive");
  }
  row_begin_.reserve(output_dim + 1);
  row_begin_.push_back(0);
  for (std::size_t row = 0; row < output_dim; ++row) {
    for (std::size_t col = 0; col < input_dim; ++col) {
      const int sign = sparse_jl_sign(seed, row, col);
      if (sign != 0) {
        cols_.push_back(static_cast<std::uint32_t>(col));
        values_.push_back(static_cast<double>(sign));
      }
    }
    row_begin_.push_back(cols_.size());
  }
}

std::vector<double> SparseJl::apply(std::span<const double> p) const {
  assert(p.size() == input_dim_);
  const double scale =
      std::sqrt(3.0 / static_cast<double>(output_dim_));
  std::vector<double> out(output_dim_, 0.0);
  const simd::Ops& ops = simd::ops();
  for (std::size_t row = 0; row < output_dim_; ++row) {
    const std::size_t begin = row_begin_[row];
    const double sum = ops.csr_row_dot(values_.data() + begin,
                                       cols_.data() + begin,
                                       row_begin_[row + 1] - begin, p.data());
    out[row] = sum * scale;
  }
  return out;
}

PointSet SparseJl::transform(const PointSet& points) const {
  PointSet out(points.size(), output_dim_);
  const double scale =
      std::sqrt(3.0 / static_cast<double>(output_dim_));
  // Shared read-only CSR matrix, disjoint output rows: parallel over
  // points, identical results at any thread count. Rows are gathered and
  // scaled straight into the destination — no per-point allocation.
  par::parallel_for(
      0, points.size(), [&](std::size_t begin, std::size_t end) {
        const simd::Ops& ops = simd::ops();
        for (std::size_t i = begin; i < end; ++i) {
          const auto src = points[i];
          auto dst = out[i];
          for (std::size_t row = 0; row < output_dim_; ++row) {
            const std::size_t rb = row_begin_[row];
            const double sum =
                ops.csr_row_dot(values_.data() + rb, cols_.data() + rb,
                                row_begin_[row + 1] - rb, src.data());
            dst[row] = sum * scale;
          }
        }
      });
  return out;
}

}  // namespace mpte
