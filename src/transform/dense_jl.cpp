#include "transform/dense_jl.hpp"

#include <cassert>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

DenseJl::DenseJl(std::size_t input_dim, std::size_t output_dim,
                 std::uint64_t seed)
    : input_dim_(input_dim),
      output_dim_(output_dim),
      matrix_(input_dim * output_dim) {
  if (input_dim == 0 || output_dim == 0) {
    throw MpteError("DenseJl: dimensions must be positive");
  }
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(output_dim));
  for (double& entry : matrix_) entry = rng.normal() * scale;
}

std::vector<double> DenseJl::apply(std::span<const double> p) const {
  assert(p.size() == input_dim_);
  std::vector<double> out(output_dim_, 0.0);
  simd::ops().gemv(matrix_.data(), output_dim_, input_dim_, p.data(),
                   out.data());
  return out;
}

PointSet DenseJl::transform(const PointSet& points) const {
  PointSet out(points.size(), output_dim_);
  // Each point's projection reads the shared matrix and writes its own
  // output row — embarrassingly parallel over points. The gemv kernel
  // writes straight into the destination row, so the batch path does no
  // per-point allocation.
  par::parallel_for(
      0, points.size(), [&](std::size_t begin, std::size_t end) {
        const simd::Ops& ops = simd::ops();
        for (std::size_t i = begin; i < end; ++i) {
          ops.gemv(matrix_.data(), output_dim_, input_dim_, points[i].data(),
                   out[i].data());
        }
      });
  return out;
}

std::size_t DenseJl::recommended_dim(std::size_t n, double xi) {
  assert(xi > 0.0);
  const double k = 8.0 * std::log(std::max<double>(2.0, static_cast<double>(n))) /
                   (xi * xi);
  return static_cast<std::size_t>(std::ceil(k));
}

}  // namespace mpte
