// Fast Walsh–Hadamard Transform.
//
// The H in the FJLT phi(x) = P·H·D·x is the normalized d×d Walsh–Hadamard
// matrix H_{i,j} = d^{-1/2}(-1)^{<i-1,j-1>} (Section 5). Its butterfly
// factorization H_d = H_2^{otimes log d} evaluates in O(d log d) — the
// "fast" in FJLT — and its Kronecker split H_d = H_g ⊗ H_b is what the MPC
// version exploits to transform vectors larger than one machine's memory
// (see transform/mpc_fjlt.*).
#pragma once

#include <cstddef>
#include <span>

#include "geometry/point_set.hpp"

namespace mpte {

/// In-place unnormalized FWHT; data.size() must be a power of two. After
/// the call, data = H'_d * input where H'_d is the ±1 Hadamard matrix
/// (no d^{-1/2} factor).
void fwht(std::span<double> data);

/// In-place orthonormal FWHT: applies fwht then scales by d^{-1/2}, making
/// the map an isometry (||H x||_2 = ||x||_2).
void fwht_normalized(std::span<double> data);

/// Entry of the orthonormal Walsh–Hadamard matrix, H[i][j] =
/// d^{-1/2}(-1)^{popcount(i & j)} for 0-based i, j. For tests comparing
/// the fast transform against the dense definition.
double hadamard_entry(std::size_t dim, std::size_t i, std::size_t j);

/// Applies the orthonormal FWHT to every point of a power-of-two-dimension
/// point set, returning the transformed set.
PointSet fwht_points(const PointSet& points);

}  // namespace mpte
