// Dense Gaussian Johnson–Lindenstrauss transform — the classical baseline.
//
// The original JL map [46] is a dense k×d Gaussian matrix scaled by
// k^{-1/2}. It preserves pairwise distances to (1±xi) for k = Theta(xi^-2
// log n), but costs O(kd) work per point and O(nd log n) total space in
// MPC — exactly the overhead Theorem 3's FJLT removes. We keep it as the
// comparator for bench E4/E5.
#pragma once

#include <cstdint>

#include "geometry/point_set.hpp"

namespace mpte {

/// A sampled dense Gaussian JL map R^d -> R^k.
class DenseJl {
 public:
  /// Samples the k×d matrix with entries N(0, 1) scaled by k^{-1/2}.
  DenseJl(std::size_t input_dim, std::size_t output_dim, std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

  /// Applies the map to one point (p.size() == input_dim()).
  std::vector<double> apply(std::span<const double> p) const;

  /// Applies the map to every point.
  PointSet transform(const PointSet& points) const;

  /// The standard JL target dimension k = ceil(c * log(n) / xi^2), c = 8.
  static std::size_t recommended_dim(std::size_t n, double xi);

 private:
  std::size_t input_dim_;
  std::size_t output_dim_;
  std::vector<double> matrix_;  // row-major k×d, pre-scaled
};

}  // namespace mpte
