#include "transform/walsh_hadamard.hpp"

#include <bit>
#include <cmath>

#include "common/math_util.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

void fwht(std::span<double> data) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw MpteError("fwht: length must be a power of two");
  }
  // Butterflies are elementwise adds/subs, so the dispatched vector
  // backends are bit-identical to the scalar loop by construction.
  simd::ops().fwht_row(data.data(), n);
}

void fwht_normalized(std::span<double> data) {
  fwht(data);
  const double scale = 1.0 / std::sqrt(static_cast<double>(data.size()));
  simd::ops().scale(data.data(), data.size(), scale);
}

double hadamard_entry(std::size_t dim, std::size_t i, std::size_t j) {
  if (!is_power_of_two(dim)) {
    throw MpteError("hadamard_entry: dim must be a power of two");
  }
  const int parity = std::popcount(i & j) & 1;
  const double sign = parity ? -1.0 : 1.0;
  return sign / std::sqrt(static_cast<double>(dim));
}

PointSet fwht_points(const PointSet& points) {
  PointSet out = points;
  // Rows are independent transforms over disjoint storage: parallelize
  // over points (validate the dimension once, not per thread).
  if (!out.empty() && !is_power_of_two(out.dim())) {
    throw MpteError("fwht: length must be a power of two");
  }
  par::parallel_for(0, out.size(), [&out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fwht_normalized(out[i]);
  });
  return out;
}

}  // namespace mpte
