#include "transform/fjlt.hpp"

#include <cassert>
#include <cmath>

#include "common/math_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "transform/walsh_hadamard.hpp"

namespace mpte {

FjltConfig FjltConfig::make(std::size_t n, std::size_t input_dim, double xi,
                            std::uint64_t seed) {
  if (n < 2) throw MpteError("FjltConfig: need n >= 2");
  if (xi <= 0.0 || xi >= 0.5) {
    throw MpteError("FjltConfig: xi must be in (0, 0.5)");
  }
  if (input_dim == 0) throw MpteError("FjltConfig: input_dim must be > 0");

  FjltConfig config;
  config.input_dim = input_dim;
  config.padded_dim = next_power_of_two(input_dim);
  const double log_n = std::log(static_cast<double>(n));
  config.output_dim = static_cast<std::size_t>(
      std::ceil(2.0 * log_n / (xi * xi)));
  config.q = std::min(
      1.0, 2.0 * log_n * log_n / static_cast<double>(config.padded_dim));
  config.seed = seed;
  return config;
}

double fjlt_d_sign(std::uint64_t seed, std::size_t j) {
  // One mixed bit of a per-(seed, j) hash decides the sign.
  const std::uint64_t h = hash_combine(mix64(seed ^ 0xd1a60ull), j);
  return (h & 1) ? 1.0 : -1.0;
}

double fjlt_p_entry(std::uint64_t seed, double q, std::size_t row,
                    std::size_t col) {
  // Derive a dedicated stream for the entry; the first draw decides
  // presence, the next pair feeds Box–Muller.
  Rng rng(hash_combine(hash_combine(mix64(seed ^ 0x9eefull), row), col));
  if (!rng.bernoulli(q)) return 0.0;
  return rng.normal() / std::sqrt(q);
}

Fjlt::Fjlt(FjltConfig config) : config_(config) {
  if (config_.padded_dim < config_.input_dim ||
      !is_power_of_two(config_.padded_dim)) {
    throw MpteError("Fjlt: padded_dim must be a power of two >= input_dim");
  }
  row_begin_.reserve(config_.output_dim + 1);
  row_begin_.push_back(0);
  for (std::size_t row = 0; row < config_.output_dim; ++row) {
    for (std::size_t col = 0; col < config_.padded_dim; ++col) {
      const double v = fjlt_p_entry(config_.seed, config_.q, row, col);
      if (v != 0.0) {
        cols_.push_back(static_cast<std::uint32_t>(col));
        values_.push_back(v);
      }
    }
    row_begin_.push_back(cols_.size());
  }
}

std::vector<double> Fjlt::apply(std::span<const double> p) const {
  assert(p.size() == config_.input_dim);
  // D then H on the zero-padded copy.
  std::vector<double> work(config_.padded_dim, 0.0);
  for (std::size_t j = 0; j < config_.input_dim; ++j) {
    work[j] = fjlt_d_sign(config_.seed, j) * p[j];
  }
  fwht_normalized(work);

  // Sparse P, then the k^{-1/2} output scaling.
  const double scale =
      1.0 / std::sqrt(static_cast<double>(config_.output_dim));
  std::vector<double> out(config_.output_dim, 0.0);
  for (std::size_t row = 0; row < config_.output_dim; ++row) {
    double sum = 0.0;
    for (std::size_t idx = row_begin_[row]; idx < row_begin_[row + 1];
         ++idx) {
      sum += values_[idx] * work[cols_[idx]];
    }
    out[row] = sum * scale;
  }
  return out;
}

PointSet Fjlt::transform(const PointSet& points) const {
  PointSet out(points.size(), config_.output_dim);
  // Points are independent (shared read-only P matrix, disjoint output
  // rows), so this parallelizes like the other transforms; inside MPC
  // machine steps the nested call runs serial, matching apply() exactly.
  par::parallel_for(
      0, points.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto mapped = apply(points[i]);
          auto dst = out[i];
          for (std::size_t j = 0; j < config_.output_dim; ++j) {
            dst[j] = mapped[j];
          }
        }
      });
  return out;
}

}  // namespace mpte
