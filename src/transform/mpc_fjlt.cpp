#include "transform/mpc_fjlt.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "mpc/channel.hpp"
#include "mpc/primitives.hpp"
#include "mpc/step.hpp"
#include "obs/trace.hpp"
#include "transform/walsh_hadamard.hpp"

namespace mpte {
namespace {

using mpc::StepParams;
using mpc::Channel;
using mpc::Cluster;
using mpc::KV;
using mpc::MachineContext;
using mpc::MachineId;
using mpc::RegisterStep;
using mpc::Step;
using mpc::StepSpec;

/// Channel names for the FJLT message streams (see RoundStats
/// channel_bytes).
constexpr const char* kChunkChannel = "fjlt/chunks";
constexpr const char* kPartialChannel = "fjlt/partials";
constexpr const char* kElemChannel = "fjlt/elems";

/// Header preceding a transposed chunk on the wire.
struct ChunkHeader {
  std::uint64_t point;
  std::uint32_t row_block;     // j: which row-block the chunk came from
  std::uint32_t column_block;  // c: which column-block it belongs to
};

/// Header preceding a per-point partial output vector on the wire.
struct PartialHeader {
  std::uint64_t point;
};

/// One tensor element on the wire (general multi-stage path).
struct ElemRecord {
  std::uint64_t point;
  std::uint32_t index;  // global coordinate index in [0, d_padded)
  std::uint32_t pad = 0;
  double value;
};

// --- registered steps -------------------------------------------------------
// The sharded-mode geometry (g row blocks of size `block`, chunk_len
// offsets per column block, round-robin machine assignment) is a pure
// function of (config, block, M), so every step recomputes it from its
// serialized params rather than capturing host state.

Step make_local_transform(StepParams params) {
  Deserializer d(params);
  const auto config = d.read<FjltConfig>();
  return [config](MachineContext& ctx) {
    const auto count = ctx.store().get_value<std::uint64_t>("fjlt/in/count");
    const auto data = ctx.store().get_vector<double>("fjlt/in");
    ctx.store().erase("fjlt/in");
    const Fjlt fjlt(config);
    std::vector<double> out;
    out.reserve(count * config.output_dim);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::span<const double> p(data.data() + i * config.input_dim,
                                      config.input_dim);
      const auto mapped = fjlt.apply(p);
      out.insert(out.end(), mapped.begin(), mapped.end());
    }
    ctx.store().set_vector("fjlt/out", out);
  };
}

Step make_transpose(StepParams params) {
  Deserializer d(params);
  const auto config = d.read<FjltConfig>();
  const auto block = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [config, block](MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    const std::size_t g = config.padded_dim / block;
    const std::size_t chunk_len = block / g;
    const auto col_machine = [&](std::size_t point, std::size_t c) {
      return static_cast<MachineId>((point * g + c) % m);
    };
    const auto idx = ctx.store().get_vector<KV>("fjlt/rows/idx");
    auto data = ctx.store().get_vector<double>("fjlt/rows/data");
    ctx.store().erase("fjlt/rows/idx");
    ctx.store().erase("fjlt/rows/data");
    std::vector<Serializer> out(m);
    for (std::size_t rec = 0; rec < idx.size(); ++rec) {
      const std::size_t point = idx[rec].key;
      const std::size_t j = idx[rec].value;
      const std::span<double> row(data.data() + rec * block, block);
      for (std::size_t o = 0; o < block; ++o) {
        row[o] *= fjlt_d_sign(config.seed, j * block + o);
      }
      fwht(row);
      for (std::size_t c = 0; c < g; ++c) {
        Serializer& s = out[col_machine(point, c)];
        s.write(ChunkHeader{point, static_cast<std::uint32_t>(j),
                            static_cast<std::uint32_t>(c)});
        s.write_span(
            std::span<const double>(row.data() + c * chunk_len, chunk_len));
      }
    }
    for (MachineId dst = 0; dst < m; ++dst) {
      if (out[dst].size() > 0) {
        ctx.send(dst, std::move(out[dst]), kChunkChannel);
      }
    }
  };
}

Step make_collect_columns(StepParams params) {
  Deserializer d(params);
  const auto config = d.read<FjltConfig>();
  const auto block = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [config, block](MachineContext& ctx) {
    const std::size_t g = config.padded_dim / block;
    const std::size_t chunk_len = block / g;
    std::map<std::pair<std::uint64_t, std::uint32_t>, std::vector<double>>
        blocks;
    for (const auto& msg : ctx.inbox()) {
      Deserializer in(msg.payload);
      while (!in.exhausted()) {
        const auto header = in.read<ChunkHeader>();
        const auto chunk = in.read_vector<double>();
        auto& blk = blocks[{header.point, header.column_block}];
        if (blk.empty()) blk.assign(g * chunk_len, 0.0);
        std::copy(chunk.begin(), chunk.end(),
                  blk.begin() + header.row_block * chunk_len);
      }
    }
    std::vector<KV> idx;
    std::vector<double> data;
    for (auto& [key, blk] : blocks) {
      idx.push_back(KV{key.first, key.second});
      data.insert(data.end(), blk.begin(), blk.end());
    }
    ctx.store().set_vector("fjlt/cols/idx", idx);
    ctx.store().set_vector("fjlt/cols/data", data);
  };
}

Step make_fwht_g_partials(StepParams params) {
  Deserializer d(params);
  const auto config = d.read<FjltConfig>();
  const auto block = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [config, block](MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    const std::size_t g = config.padded_dim / block;
    const std::size_t chunk_len = block / g;
    const std::size_t k = config.output_dim;
    const double h_scale =
        1.0 / std::sqrt(static_cast<double>(config.padded_dim));
    const auto owner = [&](std::size_t point) {
      return static_cast<MachineId>(point % m);
    };
    const auto idx = ctx.store().get_vector<KV>("fjlt/cols/idx");
    auto data = ctx.store().get_vector<double>("fjlt/cols/data");
    ctx.store().erase("fjlt/cols/idx");
    ctx.store().erase("fjlt/cols/data");

    // Pre-aggregate partials per point across this machine's blocks.
    std::map<std::uint64_t, std::vector<double>> partials;
    std::vector<double> column(g);
    for (std::size_t rec = 0; rec < idx.size(); ++rec) {
      const std::uint64_t point = idx[rec].key;
      const std::size_t c = idx[rec].value;
      const std::span<double> blk(data.data() + rec * g * chunk_len,
                                  g * chunk_len);
      for (std::size_t o = 0; o < chunk_len; ++o) {
        for (std::size_t j = 0; j < g; ++j) {
          column[j] = blk[j * chunk_len + o];
        }
        fwht(column);
        for (std::size_t j = 0; j < g; ++j) {
          blk[j * chunk_len + o] = column[j] * h_scale;
        }
      }
      auto& acc = partials[point];
      if (acc.empty()) acc.assign(k, 0.0);
      for (std::size_t j = 0; j < g; ++j) {
        for (std::size_t o = 0; o < chunk_len; ++o) {
          const std::size_t coord = j * block + c * chunk_len + o;
          const double value = blk[j * chunk_len + o];
          if (value == 0.0) continue;
          for (std::size_t row = 0; row < k; ++row) {
            const double p_entry =
                fjlt_p_entry(config.seed, config.q, row, coord);
            if (p_entry != 0.0) acc[row] += p_entry * value;
          }
        }
      }
    }
    std::vector<Serializer> out(m);
    for (const auto& [point, acc] : partials) {
      Serializer& s = out[owner(point)];
      s.write(PartialHeader{point});
      s.write_vector(acc);
    }
    for (MachineId dst = 0; dst < m; ++dst) {
      if (out[dst].size() > 0) {
        ctx.send(dst, std::move(out[dst]), kPartialChannel);
      }
    }
  };
}

Step make_assemble(StepParams params) {
  Deserializer d(params);
  const auto k = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [k](MachineContext& ctx) {
    const double out_scale = 1.0 / std::sqrt(static_cast<double>(k));
    std::map<std::uint64_t, std::vector<double>> totals;
    for (const auto& msg : ctx.inbox()) {
      Deserializer in(msg.payload);
      while (!in.exhausted()) {
        const auto header = in.read<PartialHeader>();
        const auto part = in.read_vector<double>();
        auto& acc = totals[header.point];
        if (acc.empty()) acc.assign(k, 0.0);
        for (std::size_t row = 0; row < k; ++row) acc[row] += part[row];
      }
    }
    std::vector<KV> idx;
    std::vector<double> data;
    for (auto& [point, acc] : totals) {
      idx.push_back(KV{point, 0});
      for (std::size_t row = 0; row < k; ++row) {
        data.push_back(acc[row] * out_scale);
      }
    }
    ctx.store().set_vector("fjlt/out/idx", idx);
    ctx.store().set_vector("fjlt/out/data", data);
  };
}

Step make_kron_stage(StepParams params) {
  Deserializer d(params);
  const auto config = d.read<FjltConfig>();
  const auto block = static_cast<std::size_t>(d.read<std::uint64_t>());
  const auto t = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [config, block, t](MachineContext& ctx) {
    const std::size_t m_machines = ctx.num_machines();
    const std::size_t d_pad = config.padded_dim;
    const std::size_t k = config.output_dim;
    const auto total_bits = static_cast<std::size_t>(floor_log2(d_pad));
    const auto chunk_bits = static_cast<std::size_t>(floor_log2(block));
    const std::size_t stages =
        std::max<std::size_t>(1, ceil_div(total_bits, chunk_bits));
    const auto stage_offset = [&](std::size_t s) { return s * chunk_bits; };
    const auto stage_bits = [&](std::size_t s) {
      return std::min(chunk_bits, total_bits - stage_offset(s));
    };
    const auto group_of = [&](std::size_t s, std::uint64_t point,
                              std::uint32_t e) {
      const std::size_t offset = stage_offset(s);
      const std::uint32_t low = e & ((1u << offset) - 1u);
      const std::uint32_t high =
          static_cast<std::uint32_t>(e >> (offset + stage_bits(s)));
      const std::uint32_t group = (high << offset) | low;
      return hash_combine(mix64(point ^ 0x9e0417ull), group);
    };
    const auto machine_of = [&](std::size_t s, std::uint64_t point,
                                std::uint32_t e) {
      return static_cast<MachineId>(group_of(s, point, e) % m_machines);
    };
    const auto owner = [&](std::uint64_t point) {
      return static_cast<MachineId>(point % m_machines);
    };
    const double h_scale = 1.0 / std::sqrt(static_cast<double>(d_pad));

    // Collect this stage's records (store for stage 0, inbox after).
    std::vector<ElemRecord> records;
    if (t == 0) {
      records = ctx.store().get_vector<ElemRecord>("fjlt/elems");
      ctx.store().erase("fjlt/elems");
      for (ElemRecord& rec : records) {
        rec.value *= fjlt_d_sign(config.seed, rec.index);
      }
    } else {
      records = Channel<ElemRecord>{kElemChannel}.receive(ctx);
    }

    // Group into axis-t fibers and butterfly each.
    const std::size_t offset = stage_offset(t);
    const std::size_t bits = stage_bits(t);
    const std::size_t fiber = 1u << bits;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<ElemRecord>>
        fibers;
    for (const ElemRecord& rec : records) {
      fibers[std::make_pair(rec.point, group_of(t, rec.point, rec.index))]
          .push_back(rec);
    }
    std::vector<double> buffer(fiber);
    const bool last = t + 1 == stages;
    const Channel<ElemRecord> elems{kElemChannel};
    std::vector<std::vector<ElemRecord>> route(m_machines);
    std::map<std::uint64_t, std::vector<double>> partials;
    for (auto& [key, recs] : fibers) {
      buffer.assign(fiber, 0.0);
      for (const ElemRecord& rec : recs) {
        buffer[(rec.index >> offset) & (fiber - 1)] = rec.value;
      }
      fwht(buffer);
      // Reconstruct indices: all fiber digits exist even if the
      // arriving records were sparse (they never are — every digit
      // was scattered — but zero padding keeps this exact anyway).
      const std::uint32_t base_index =
          recs.front().index &
          ~static_cast<std::uint32_t>((fiber - 1) << offset);
      for (std::size_t digit = 0; digit < fiber; ++digit) {
        const std::uint32_t e =
            base_index | static_cast<std::uint32_t>(digit << offset);
        const double value = buffer[digit];
        if (last) {
          if (value == 0.0) continue;
          auto& acc = partials[key.first];
          if (acc.empty()) acc.assign(k, 0.0);
          const double scaled = value * h_scale;
          for (std::size_t row = 0; row < k; ++row) {
            const double p_entry =
                fjlt_p_entry(config.seed, config.q, row, e);
            if (p_entry != 0.0) acc[row] += p_entry * scaled;
          }
        } else {
          // Route for the next stage. Batched per destination below.
          route[machine_of(t + 1, key.first, e)].push_back(
              ElemRecord{key.first, e, 0, value});
        }
      }
    }
    if (last) {
      std::vector<Serializer> out(m_machines);
      for (const auto& [point, acc] : partials) {
        Serializer& s = out[owner(point)];
        s.write(PartialHeader{point});
        s.write_vector(acc);
      }
      for (MachineId dst = 0; dst < m_machines; ++dst) {
        if (out[dst].size() > 0) {
          ctx.send(dst, std::move(out[dst]), kPartialChannel);
        }
      }
    } else {
      for (MachineId dst = 0; dst < m_machines; ++dst) {
        if (!route[dst].empty()) elems.send(ctx, dst, route[dst]);
      }
    }
  };
}

const RegisterStep kRegLocalTransform{"fjlt/local-transform",
                                      make_local_transform};
const RegisterStep kRegTranspose{"fjlt/D+fwht_b+transpose", make_transpose};
const RegisterStep kRegCollectColumns{"fjlt/collect-columns",
                                      make_collect_columns};
const RegisterStep kRegFwhtGPartials{"fjlt/fwht_g+P-partials",
                                     make_fwht_g_partials};
const RegisterStep kRegAssemble{"fjlt/assemble", make_assemble};
const RegisterStep kRegKronStage{"fjlt/kron-stage", make_kron_stage};

StepSpec config_block_spec(const char* name, const FjltConfig& config,
                           std::size_t block) {
  Serializer s;
  s.write(config);
  s.write(static_cast<std::uint64_t>(block));
  return StepSpec(name, std::move(s));
}

/// Local mode: every machine holds whole points and applies the sequential
/// transform — zero communication, one (empty-message) round.
PointSet run_local_mode(Cluster& cluster, const PointSet& points,
                        const FjltConfig& config) {
  const std::size_t m = cluster.num_machines();
  const std::size_t n = points.size();
  const std::size_t chunk = ceil_div(n, m);

  // Host-side scatter: suppressed while fast-forwarding a restored run
  // (its effect is already inside the restored stores).
  if (!cluster.fast_forwarding()) {
    for (MachineId id = 0; id < m; ++id) {
      const std::size_t begin = std::min(n, id * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      std::vector<double> data;
      data.reserve((end - begin) * points.dim());
      for (std::size_t i = begin; i < end; ++i) {
        const auto p = points[i];
        data.insert(data.end(), p.begin(), p.end());
      }
      cluster.store(id).set_vector("fjlt/in", data);
      cluster.store(id).set_value<std::uint64_t>("fjlt/in/first", begin);
      cluster.store(id).set_value<std::uint64_t>("fjlt/in/count",
                                                 end - begin);
    }
  }

  Serializer local;
  local.write(config);
  cluster.run_round(StepSpec("fjlt/local-transform", std::move(local)));

  // While still fast-forwarding past this point, the resumed run restored
  // state from *after* this gather erased its keys; the coordinates it
  // would return were already consumed by the snapshotted rounds, and the
  // resuming driver takes its derived decisions (delta, scale) from the
  // driver note instead. Return a placeholder with the correct shape.
  if (cluster.fast_forwarding()) return PointSet(n, config.output_dim);

  PointSet out(n, config.output_dim);
  for (MachineId id = 0; id < m; ++id) {
    const auto first = cluster.store(id).get_value<std::uint64_t>("fjlt/in/first");
    const auto count = cluster.store(id).get_value<std::uint64_t>("fjlt/in/count");
    const auto data = cluster.store(id).get_vector<double>("fjlt/out");
    for (std::uint64_t i = 0; i < count; ++i) {
      auto dst = out[first + i];
      for (std::size_t j = 0; j < config.output_dim; ++j) {
        dst[j] = data[i * config.output_dim + j];
      }
    }
    cluster.store(id).erase("fjlt/out");
    cluster.store(id).erase("fjlt/in/first");
    cluster.store(id).erase("fjlt/in/count");
  }
  return out;
}

/// Sharded mode: each point's padded coordinates are split into g row
/// blocks of size b (g <= b), spread round-robin over machines.
PointSet run_sharded_mode(Cluster& cluster, const PointSet& points,
                          const FjltConfig& config, std::size_t block) {
  const std::size_t m = cluster.num_machines();
  const std::size_t n = points.size();
  const std::size_t d_pad = config.padded_dim;
  const std::size_t g = d_pad / block;  // row blocks per point
  const std::size_t k = config.output_dim;

  const auto row_machine = [&](std::size_t point, std::size_t j) {
    return static_cast<MachineId>((point * g + j) % m);
  };

  // Host-side scatter of padded row blocks (suppressed during
  // fast-forward; see run_local_mode).
  if (!cluster.fast_forwarding()) {
    std::vector<std::vector<KV>> idx(m);
    std::vector<std::vector<double>> data(m);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = points[i];
      for (std::size_t j = 0; j < g; ++j) {
        const MachineId dst = row_machine(i, j);
        idx[dst].push_back(KV{i, j});
        for (std::size_t o = 0; o < block; ++o) {
          const std::size_t coord = j * block + o;
          data[dst].push_back(coord < points.dim() ? p[coord] : 0.0);
        }
      }
    }
    for (MachineId id = 0; id < m; ++id) {
      cluster.store(id).set_vector("fjlt/rows/idx", idx[id]);
      cluster.store(id).set_vector("fjlt/rows/data", data[id]);
    }
  }

  // Round 1: apply D, local FWHT_b (unnormalized; one global scale is
  // applied after the cross-block stage so the arithmetic matches the
  // sequential transform), then transpose-route chunks to column blocks.
  cluster.run_round(
      config_block_spec("fjlt/D+fwht_b+transpose", config, block));

  // Round 2: assemble column blocks (point, c) holding a g x chunk_len
  // matrix in row-block-major order.
  cluster.run_round(config_block_spec("fjlt/collect-columns", config, block));

  // Round 3: cross-block FWHT_g per offset, global 1/sqrt(d) scale, then
  // local P partial sums routed to each point's owner.
  cluster.run_round(
      config_block_spec("fjlt/fwht_g+P-partials", config, block));

  // Round 4: owners accumulate partials and apply the k^{-1/2} scale.
  Serializer assemble;
  assemble.write(static_cast<std::uint64_t>(k));
  cluster.run_round(StepSpec("fjlt/assemble", std::move(assemble)));

  // Host-side gather (placeholder during fast-forward; see run_local_mode).
  if (cluster.fast_forwarding()) return PointSet(n, k);
  PointSet out(n, k);
  for (MachineId id = 0; id < m; ++id) {
    const auto idx = cluster.store(id).get_vector<KV>("fjlt/out/idx");
    const auto data = cluster.store(id).get_vector<double>("fjlt/out/data");
    for (std::size_t rec = 0; rec < idx.size(); ++rec) {
      auto dst = out[idx[rec].key];
      for (std::size_t row = 0; row < k; ++row) {
        dst[row] = data[rec * k + row];
      }
    }
    cluster.store(id).erase("fjlt/out/idx");
    cluster.store(id).erase("fjlt/out/data");
  }
  return out;
}

/// Owner-side accumulation of P partials into the final k-dim outputs
/// (shared by the sharded paths' last round).
void assemble_outputs_round(Cluster& cluster, std::size_t k) {
  Serializer assemble;
  assemble.write(static_cast<std::uint64_t>(k));
  cluster.run_round(StepSpec("fjlt/assemble", std::move(assemble)));
}

/// Host-side gather of the assembled outputs.
PointSet gather_outputs(Cluster& cluster, std::size_t n, std::size_t k) {
  // Placeholder during fast-forward (see run_local_mode's gather).
  if (cluster.fast_forwarding()) return PointSet(n, k);
  PointSet out(n, k);
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    if (!cluster.store(id).contains("fjlt/out/idx")) continue;
    const auto idx = cluster.store(id).get_vector<KV>("fjlt/out/idx");
    const auto data = cluster.store(id).get_vector<double>("fjlt/out/data");
    for (std::size_t rec = 0; rec < idx.size(); ++rec) {
      auto dst = out[idx[rec].key];
      for (std::size_t row = 0; row < k; ++row) {
        dst[row] = data[rec * k + row];
      }
    }
    cluster.store(id).erase("fjlt/out/idx");
    cluster.store(id).erase("fjlt/out/data");
  }
  return out;
}

/// General multi-stage mode: H_d = ⊗_t H_{f_t} over bit-chunks of width
/// <= log2(block). Stage t co-locates, per point, the f_t elements of
/// every axis-t fiber (group = index with the chunk's bits removed),
/// applies the chunk's butterflies locally, and re-routes for stage t+1.
/// Works for any d_padded <= block^m — the eps < 1/2 regime.
PointSet run_multilevel_mode(Cluster& cluster, const PointSet& points,
                             const FjltConfig& config, std::size_t block,
                             std::size_t* levels_out) {
  const std::size_t m_machines = cluster.num_machines();
  const std::size_t n = points.size();
  const std::size_t d_pad = config.padded_dim;
  const std::size_t k = config.output_dim;
  const auto total_bits = static_cast<std::size_t>(floor_log2(d_pad));
  const auto chunk_bits = static_cast<std::size_t>(floor_log2(block));
  const std::size_t stages = std::max<std::size_t>(
      1, ceil_div(total_bits, chunk_bits));
  if (levels_out != nullptr) *levels_out = stages;

  // Bit ranges per stage (stage-0 routing only; the step bodies recompute
  // the same geometry from their params).
  const auto stage_offset = [&](std::size_t t) { return t * chunk_bits; };
  const auto stage_bits = [&](std::size_t t) {
    return std::min(chunk_bits, total_bits - stage_offset(t));
  };
  // Group id: the index with stage t's bits removed, plus the point.
  const auto group_of = [&](std::size_t t, std::uint64_t point,
                            std::uint32_t e) {
    const std::size_t offset = stage_offset(t);
    const std::uint32_t low = e & ((1u << offset) - 1u);
    const std::uint32_t high =
        static_cast<std::uint32_t>(e >> (offset + stage_bits(t)));
    const std::uint32_t group = (high << offset) | low;
    return hash_combine(mix64(point ^ 0x9e0417ull), group);
  };
  const auto machine_of = [&](std::size_t t, std::uint64_t point,
                              std::uint32_t e) {
    return static_cast<MachineId>(group_of(t, point, e) % m_machines);
  };

  // Host scatter: every padded element routed to its stage-0 machine
  // (suppressed during fast-forward; see run_local_mode).
  if (!cluster.fast_forwarding()) {
    std::vector<std::vector<ElemRecord>> init(m_machines);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = points[i];
      for (std::uint32_t e = 0; e < d_pad; ++e) {
        const double value = e < points.dim() ? p[e] : 0.0;
        init[machine_of(0, i, e)].push_back(ElemRecord{i, e, 0, value});
      }
    }
    for (MachineId id = 0; id < m_machines; ++id) {
      cluster.store(id).set_vector("fjlt/elems", init[id]);
    }
  }

  for (std::size_t t = 0; t < stages; ++t) {
    Serializer stage;
    stage.write(config);
    stage.write(static_cast<std::uint64_t>(block));
    stage.write(static_cast<std::uint64_t>(t));
    cluster.run_round(StepSpec("fjlt/kron-stage", std::move(stage)),
                      "fjlt/kron-stage-" + std::to_string(t));
  }

  assemble_outputs_round(cluster, k);
  return gather_outputs(cluster, n, k);
}

}  // namespace

PointSet mpc_fjlt(mpc::Cluster& cluster, const PointSet& points,
                  const FjltConfig& config, MpcFjltReport* report) {
  if (points.dim() != config.input_dim) {
    throw MpteError("mpc_fjlt: point dimension does not match config");
  }
  const std::size_t rounds_before = cluster.stats().rounds();
  const obs::Span span("fjlt", "mpc_fjlt", "points", points.size());
  const std::size_t budget = cluster.config().local_memory_bytes;
  const std::size_t m = cluster.num_machines();
  const std::size_t d_pad = config.padded_dim;

  // Whole-point mode if a machine's chunk of padded points, outputs, and an
  // estimated CSR of P all fit comfortably in half the budget.
  const std::size_t chunk_points = ceil_div(points.size(), m);
  const double nnz_estimate =
      2.0 * config.q * static_cast<double>(config.output_dim) *
          static_cast<double>(d_pad) +
      64.0;
  const std::size_t local_mode_bytes =
      chunk_points * 8 * (d_pad + config.output_dim) +
      static_cast<std::size_t>(16.0 * nnz_estimate);

  PointSet out;
  bool sharded = false;
  std::size_t block = 0;
  std::size_t levels = 0;
  if (local_mode_bytes * 2 <= budget || d_pad < 4) {
    const obs::Span mode_span("fjlt", "local-mode");
    out = run_local_mode(cluster, points, config);
  } else {
    // Largest power-of-two fiber a machine can hold with headroom.
    std::size_t block_cap = 1;
    while (8 * (block_cap * 2) * 4 <= budget) block_cap *= 2;
    if (block_cap < 2) {
      throw mpc::MpcViolation(
          "mpc_fjlt: local memory cannot hold even a 2-element fiber; "
          "increase local memory");
    }
    sharded = true;
    if (block_cap * block_cap >= d_pad) {
      // One transpose suffices: pick the balanced block ~ sqrt(d_pad).
      block = std::min(d_pad,
                       next_power_of_two(static_cast<std::size_t>(std::ceil(
                           std::sqrt(static_cast<double>(d_pad))))));
      levels = 2;
      const obs::Span mode_span("fjlt", "sharded-mode", "block", block);
      out = run_sharded_mode(cluster, points, config, block);
    } else {
      // General m-stage pipeline for the eps < 1/2 regime.
      block = block_cap;
      const obs::Span mode_span("fjlt", "multilevel-mode", "block", block);
      out = run_multilevel_mode(cluster, points, config, block, &levels);
    }
  }

  if (report != nullptr) {
    report->rounds = cluster.stats().rounds() - rounds_before;
    report->sharded = sharded;
    report->block_size = block;
    report->kronecker_levels = levels;
  }
  return out;
}

}  // namespace mpte
