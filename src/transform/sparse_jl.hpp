// Achlioptas' database-friendly (sparse sign) Johnson–Lindenstrauss
// transform — the third point on the JL design spectrum the benches
// compare (dense Gaussian, sparse signs, FJLT).
//
// Entries of the k×d matrix are sqrt(3/k)·{+1 w.p. 1/6, 0 w.p. 2/3,
// -1 w.p. 1/6}: same (1±xi) guarantee as dense JL at k = Theta(xi^-2
// log n) with a third of the work and integer arithmetic — but unlike the
// FJLT its nnz is Theta(kd/3), so it does NOT give Theorem 3's total-space
// saving; it exists here to make that distinction measurable (bench E4/E5).
// Entries are counter-based functions of (seed, row, col), like the FJLT's.
#pragma once

#include <cstdint>

#include "geometry/point_set.hpp"

namespace mpte {

/// Entry (row, col) of the (unscaled) sign matrix: -1, 0, or +1 as a pure
/// function of (seed, row, col).
int sparse_jl_sign(std::uint64_t seed, std::size_t row, std::size_t col);

/// A sampled Achlioptas transform R^d -> R^k.
class SparseJl {
 public:
  SparseJl(std::size_t input_dim, std::size_t output_dim,
           std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

  /// Number of nonzero matrix entries (~ k*d/3).
  std::size_t nonzeros() const { return cols_.size(); }

  /// Applies the map to one point.
  std::vector<double> apply(std::span<const double> p) const;

  /// Applies the map to every point.
  PointSet transform(const PointSet& points) const;

 private:
  std::size_t input_dim_;
  std::size_t output_dim_;
  std::uint64_t seed_;
  // CSR of the +-1 pattern. Values are the signs stored as doubles so the
  // dispatched gather kernel reads them without a widening pass; the
  // sqrt(3/k) scale is applied at the end of apply().
  std::vector<std::size_t> row_begin_;
  std::vector<std::uint32_t> cols_;
  std::vector<double> values_;
};

}  // namespace mpte
