// MPC implementation of the Fast Johnson–Lindenstrauss Transform
// (Algorithm 3 / Theorem 3).
//
// The pipeline computes k^{-1/2}·P·H·D·A with A the d×n point matrix
// distributed across machines, in O(1) rounds:
//
//   * D is applied entry-wise with no communication (counter-based
//     randomness: D_jj is a pure function of the shared seed).
//   * H (the orthonormal Walsh–Hadamard transform) is where the paper
//     invokes the MPC FFT of [45]. We implement the transform directly via
//     the Kronecker factorization H_d = ⊗_t H_{f_t}: each point's d_padded
//     coordinates are a tensor whose axes are bit-chunks of the index; one
//     FWHT along an axis needs only that axis's f_t <= b elements
//     co-resident, so each stage is a hash shuffle (group = index with the
//     axis digits removed) plus local butterflies. Two regimes:
//       - d <= b^2: one local FWHT_b, one transpose, one strided FWHT_g —
//         the minimal 2-factor split (4 rounds);
//       - any d <= b^m: the general m-stage pipeline (m + 3 rounds),
//         m = ceil(log d / log b) = O(1/eps) in the fully scalable regime.
//   * P is applied as local partial sums (every machine regenerates exactly
//     the P columns covering its resident coordinates, again counter-based)
//     followed by one shuffle keyed by (point, output row) to the point's
//     owner machine, which accumulates and scales by k^{-1/2}.
//
// When a whole padded point fits in a machine (the common case after the
// caps below), the "local mode" short-circuits all communication: each
// machine applies the sequential Fjlt to its chunk — bit-identical output,
// one round.
#pragma once

#include "geometry/point_set.hpp"
#include "mpc/cluster.hpp"
#include "transform/fjlt.hpp"

namespace mpte {

/// Execution report of one MPC FJLT run.
struct MpcFjltReport {
  /// Rounds consumed by this call (delta of cluster.stats()).
  std::size_t rounds = 0;
  /// True if a sharded (distributed-FWHT) path ran; false for local mode.
  bool sharded = false;
  /// Block size b used by a sharded path (0 in local mode).
  std::size_t block_size = 0;
  /// Kronecker factors applied: 0 local, 2 for the one-transpose path
  /// (d <= b^2), m >= 3 for the general multi-stage path (any d <= b^m).
  std::size_t kronecker_levels = 0;
};

/// Runs the MPC FJLT on `cluster`: scatters `points` (host-side input
/// loading), executes the rounds, gathers and returns the k-dimensional
/// output in input order. Round/space accounting accumulates in
/// cluster.stats(). In local mode the output is bit-identical to
/// Fjlt(config) applied sequentially; in sharded mode it is equal up to
/// floating-point summation order of the P partial sums.
///
/// Throws MpcViolation if the cluster's local memory cannot hold even one
/// sqrt(d_padded)-sized block (the fully scalable regime assumption).
PointSet mpc_fjlt(mpc::Cluster& cluster, const PointSet& points,
                  const FjltConfig& config, MpcFjltReport* report = nullptr);

}  // namespace mpte
