// Embedding ensembles.
//
// Theorems 1–2 bound E_T[dist_T(p,q)] — the guarantee is about the random
// tree's expectation, not any single draw. The practical consequence: an
// application wanting reliable estimates should hold several independent
// trees and combine queries. The ensemble exposes the two standard
// combiners:
//   * expected_distance — the empirical mean, the estimator the theorems
//     speak about (concentrates on E_T[dist_T]);
//   * min_distance — the lower envelope; since every tree dominates the
//     true metric (min over dominating estimates still dominates), it is
//     a strictly better point estimate and the one used in practice.
//
// Members are built concurrently on the mpte::par pool (each member's seed
// is a pure function of the root seed and its index, so the result is
// byte-identical to the serial build at any thread count), and every
// member carries a precomputed binary-lifting LcaIndex so point-pair
// queries cost O(log depth) instead of an O(depth) parent walk — the query
// path a long-lived service (serve/service.hpp) hammers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/embedder.hpp"
#include "tree/lca_index.hpp"

namespace mpte {

/// A set of independently seeded embeddings of the same points.
///
/// Move-only: each member owns its tree, and the per-member LcaIndex
/// borrows it. Moves are safe (vector moves do not relocate elements);
/// copies would leave the indexes borrowing the source's trees.
class EmbeddingEnsemble {
 public:
  /// Builds `trees` embeddings with seeds derived from options.seed,
  /// building up to `threads` members concurrently (0 = the mpte::par
  /// default). Fails if any member fails (after its own retries); on
  /// concurrent failures the lowest-index member's status is returned,
  /// matching the serial order.
  static Result<EmbeddingEnsemble> build(const PointSet& points,
                                         const EmbedOptions& options,
                                         std::size_t trees,
                                         std::size_t threads = 0);

  /// Wraps already-built embeddings (e.g. loaded from disk) as an
  /// ensemble. All members must embed the same number of points.
  static Result<EmbeddingEnsemble> from_members(std::vector<Embedding> members);

  EmbeddingEnsemble(EmbeddingEnsemble&&) = default;
  EmbeddingEnsemble& operator=(EmbeddingEnsemble&&) = default;
  EmbeddingEnsemble(const EmbeddingEnsemble&) = delete;
  EmbeddingEnsemble& operator=(const EmbeddingEnsemble&) = delete;

  std::size_t size() const { return members_.size(); }
  std::size_t num_points() const { return members_.front().tree.num_points(); }
  const Embedding& member(std::size_t i) const { return members_[i]; }

  /// The precomputed LCA/distance index over member i's tree. Distances it
  /// returns are in tree units; multiply by member(i).scale_to_input.
  const LcaIndex& index(std::size_t i) const { return indexes_[i]; }

  /// Mean tree distance over the ensemble, in input units. O(T log depth).
  double expected_distance(std::size_t p, std::size_t q) const;

  /// Minimum tree distance over the ensemble, in input units. Dominates
  /// the true distance (every member does) and is the tightest of the
  /// members' estimates. O(T log depth).
  double min_distance(std::size_t p, std::size_t q) const;

 private:
  explicit EmbeddingEnsemble(std::vector<Embedding> members);

  std::vector<Embedding> members_;
  /// One index per member, built once at construction. References into
  /// members_ stay valid because members_ is never resized afterwards.
  std::vector<LcaIndex> indexes_;
};

}  // namespace mpte
