// Embedding ensembles.
//
// Theorems 1–2 bound E_T[dist_T(p,q)] — the guarantee is about the random
// tree's expectation, not any single draw. The practical consequence: an
// application wanting reliable estimates should hold several independent
// trees and combine queries. The ensemble exposes the two standard
// combiners:
//   * expected_distance — the empirical mean, the estimator the theorems
//     speak about (concentrates on E_T[dist_T]);
//   * min_distance — the lower envelope; since every tree dominates the
//     true metric (min over dominating estimates still dominates), it is
//     a strictly better point estimate and the one used in practice.
#pragma once

#include <cstdint>
#include <vector>

#include "core/embedder.hpp"

namespace mpte {

/// A set of independently seeded embeddings of the same points.
class EmbeddingEnsemble {
 public:
  /// Builds `trees` embeddings with seeds derived from options.seed.
  /// Fails if any member fails (after its own retries).
  static Result<EmbeddingEnsemble> build(const PointSet& points,
                                         const EmbedOptions& options,
                                         std::size_t trees);

  std::size_t size() const { return members_.size(); }
  const Embedding& member(std::size_t i) const { return members_[i]; }

  /// Mean tree distance over the ensemble, in input units.
  double expected_distance(std::size_t p, std::size_t q) const;

  /// Minimum tree distance over the ensemble, in input units. Dominates
  /// the true distance (every member does) and is the tightest of the
  /// members' estimates.
  double min_distance(std::size_t p, std::size_t q) const;

 private:
  explicit EmbeddingEnsemble(std::vector<Embedding> members)
      : members_(std::move(members)) {}

  std::vector<Embedding> members_;
};

}  // namespace mpte
