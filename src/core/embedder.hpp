// Public API: sequential tree embedding pipelines.
//
// embed() runs the paper's full sequential pipeline on arbitrary real
// points in R^d:
//
//   (1) dimension reduction with the FJLT when it pays (Theorem 3),
//   (2) quantization to the integer grid [Delta]^d (the Theorem 1/2 input
//       model; Delta is chosen so rounding perturbs distances negligibly),
//   (3) hierarchical partitioning — grid (Arora baseline), ball (r = 1) or
//       hybrid (Algorithm 1) — with coverage-failure retries,
//   (4) HST assembly.
//
// The returned Embedding owns the tree and enough bookkeeping to convert
// tree distances back to input units.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point_set.hpp"
#include "geometry/quantize.hpp"
#include "partition/hybrid_partition.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Which hierarchical partitioning builds the tree.
enum class PartitionMethod {
  /// Arora's random shifted grid [9] — the O(log^2 n) baseline.
  kGrid,
  /// Charikar et al.'s ball partitioning [27] — hybrid with r = 1.
  kBall,
  /// The paper's hybrid partitioning (Algorithm 1).
  kHybrid,
};

const char* to_string(PartitionMethod method);

/// Options for embed(). Zeros mean "choose per the paper".
struct EmbedOptions {
  PartitionMethod method = PartitionMethod::kHybrid;
  /// Buckets r for kHybrid; 0 = auto: max(Theta(log log n) as in
  /// Theorem 1, ceil(dim / max_bucket_dim)).
  std::uint32_t num_buckets = 0;
  /// Cap on the per-bucket dimension d/r when num_buckets is auto. The
  /// grid count U grows as 2^{Theta(k log k)} in the bucket dimension k
  /// (Lemma 7), so while r = Theta(log log n) suffices asymptotically,
  /// any implementable scale needs small buckets — the very trade-off
  /// hybridization exists for. 3 keeps U in the hundreds.
  std::size_t max_bucket_dim = 3;
  /// Grid extent Delta; 0 = recommended_delta(points, quantize_eps, 2^20).
  std::uint64_t delta = 0;
  /// Relative distance error budget for quantization when delta = 0.
  double quantize_eps = 0.05;
  /// Root seed; retries derive fresh seeds from it.
  std::uint64_t seed = 1;

  /// Apply the FJLT first when the input dimension exceeds the target k.
  bool use_fjlt = true;
  /// FJLT distortion parameter xi in (0, 0.5).
  double fjlt_xi = 0.25;

  /// Grids per (level, bucket); 0 = auto from Lemma 7's union bound.
  std::size_t num_grids = 0;
  /// Coverage failure probability per run.
  double fail_prob = 1e-6;
  UncoveredPolicy uncovered = UncoveredPolicy::kFail;
  /// Coverage-failure retries before giving up (Theorem 1 reports failure;
  /// retrying with a fresh seed is the standard Monte Carlo amplification).
  int max_retries = 3;
};

/// A finished embedding.
struct Embedding {
  Hst tree;
  /// The points the tree was built on: quantized (and possibly
  /// dimension-reduced) coordinates in [1, delta]^dim.
  PointSet embedded_points;
  /// Multiply a tree distance (or an embedded-space distance) by this to
  /// express it in input units.
  double scale_to_input = 1.0;
  /// Parameters actually used.
  std::uint64_t delta_used = 0;
  std::uint32_t buckets_used = 0;
  std::size_t grids_used = 0;
  std::size_t dim_used = 0;
  bool fjlt_applied = false;
  int retries_used = 0;
  /// Stable external id of each embedded point (dense index -> id). Empty
  /// means the identity mapping 0..n-1 (every static build). mpte::dyn
  /// fills it so erase(id) survives a save/load round trip; embedding_io
  /// persists it in envelope version 2.
  std::vector<std::uint64_t> point_ids;

  /// Tree distance between input points p and q, in input units.
  double distance(std::size_t p, std::size_t q) const {
    return tree.distance(p, q) * scale_to_input;
  }
};

/// Embeds `points` into a weighted tree. Needs at least 2 points. Fails
/// with kCoverageFailure only if all retries fail (probability
/// <= fail_prob^(max_retries+1) under UncoveredPolicy::kFail).
Result<Embedding> embed(const PointSet& points, const EmbedOptions& options);

/// The r used by Theorem 1's parameterization: max(1, round(2·ln ln n)),
/// clamped to [1, dim].
std::uint32_t theorem1_num_buckets(std::size_t n, std::size_t dim);

/// The automatic bucket count: Theorem 1's r, raised so the per-bucket
/// dimension stays <= max_bucket_dim (see EmbedOptions::max_bucket_dim).
std::uint32_t auto_num_buckets(std::size_t n, std::size_t dim,
                               std::size_t max_bucket_dim);

}  // namespace mpte
