// Embedding persistence.
//
// The point of a tree embedding as a data structure is that it is a
// compact, storable sketch: embed once (possibly on a cluster), persist,
// answer distance/cluster queries later without the original O(nd) data.
// This serializes a full Embedding — tree, input-unit scale, pipeline
// metadata, and (optionally) the embedded coordinates — with the same
// versioned wire format family as tree/hst_io.
// On disk the payload travels inside the checksummed file envelope
// (common/checksum.hpp) — see tree/hst_io.hpp for the integrity contract.
//
// Envelope version 2 adds the stable point-id vector (Embedding::point_ids;
// empty = dense identity), so dynamically built embeddings (dyn/) keep
// their external ids across a round trip. Version-1 files still load, with
// ids left empty.
#pragma once

#include <string>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "core/embedder.hpp"

namespace mpte {

/// Serializes the embedding. `include_points` controls whether the
/// embedded (quantized) coordinates travel along — they are only needed
/// for coordinate-based post-processing (e.g. tree_mst edge lengths), not
/// for tree-metric queries.
void serialize_embedding(const Embedding& embedding, bool include_points,
                         Serializer& out);

std::vector<std::uint8_t> embedding_to_bytes(const Embedding& embedding,
                                             bool include_points = true);

/// Reconstructs an embedding; throws MpteError on malformed input. If the
/// file was written without points, `embedded_points` is empty.
Embedding deserialize_embedding(Deserializer& in);

Embedding embedding_from_bytes(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void save_embedding(const Embedding& embedding, const std::string& path,
                    bool include_points = true);
Embedding load_embedding(const std::string& path);

/// Like load_embedding but reports failure as a Status instead of
/// throwing: kUnavailable when the file cannot be opened, kInvalidArgument
/// when it is truncated, fails its checksum, or decodes to an invalid
/// embedding.
Result<Embedding> try_load_embedding(const std::string& path);

}  // namespace mpte
