#include "core/embedding_io.hpp"

#include <utility>

#include "common/checksum.hpp"
#include "tree/hst_io.hpp"

namespace mpte {
namespace {

constexpr std::uint32_t kMagic = 0x4d504542;  // "MPEB"
/// Version 1: config + optional points + tree. Version 2 adds the stable
/// point-id vector (empty = identity 0..n-1) right after the retries
/// field, so a dynamically built embedding (dyn/) keeps its external ids
/// across a save/load round trip. The writer always emits version 2;
/// version-1 files still load with empty (identity) ids.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersion = 2;

}  // namespace

void serialize_embedding(const Embedding& embedding, bool include_points,
                         Serializer& out) {
  out.write(kMagic);
  out.write(kVersion);
  out.write(embedding.scale_to_input);
  out.write(embedding.delta_used);
  out.write(embedding.buckets_used);
  out.write(static_cast<std::uint64_t>(embedding.grids_used));
  out.write(static_cast<std::uint64_t>(embedding.dim_used));
  out.write(static_cast<std::uint8_t>(embedding.fjlt_applied ? 1 : 0));
  out.write(static_cast<std::int32_t>(embedding.retries_used));
  out.write_vector(embedding.point_ids);
  out.write(static_cast<std::uint8_t>(include_points ? 1 : 0));
  if (include_points) {
    out.write(static_cast<std::uint64_t>(embedding.embedded_points.size()));
    out.write(static_cast<std::uint64_t>(embedding.embedded_points.dim()));
    out.write_vector(embedding.embedded_points.raw());
  }
  serialize_hst(embedding.tree, out);
}

std::vector<std::uint8_t> embedding_to_bytes(const Embedding& embedding,
                                             bool include_points) {
  Serializer s;
  serialize_embedding(embedding, include_points, s);
  return s.take();
}

Embedding deserialize_embedding(Deserializer& in) {
  if (in.read<std::uint32_t>() != kMagic) {
    throw MpteError("deserialize_embedding: bad magic");
  }
  const auto version = in.read<std::uint32_t>();
  if (version != kVersionLegacy && version != kVersion) {
    throw MpteError("deserialize_embedding: unsupported version");
  }
  const auto scale = in.read<double>();
  const auto delta = in.read<std::uint64_t>();
  const auto buckets = in.read<std::uint32_t>();
  const auto grids = in.read<std::uint64_t>();
  const auto dim_used = in.read<std::uint64_t>();
  const auto fjlt = in.read<std::uint8_t>();
  const auto retries = in.read<std::int32_t>();
  std::vector<std::uint64_t> point_ids;
  if (version >= kVersion) {
    point_ids = in.read_vector<std::uint64_t>();
  }
  const auto has_points = in.read<std::uint8_t>();
  PointSet points;
  if (has_points != 0) {
    const auto n = in.read<std::uint64_t>();
    const auto dim = in.read<std::uint64_t>();
    auto raw = in.read_vector<double>();
    points = PointSet(n, dim, std::move(raw));
  }
  Hst tree = deserialize_hst(in);
  if (has_points != 0 && points.size() != tree.num_points()) {
    throw MpteError("deserialize_embedding: point/tree size mismatch");
  }
  if (!point_ids.empty() && point_ids.size() != tree.num_points()) {
    throw MpteError("deserialize_embedding: ids/tree size mismatch");
  }
  return Embedding{std::move(tree),
                   std::move(points),
                   scale,
                   delta,
                   buckets,
                   static_cast<std::size_t>(grids),
                   static_cast<std::size_t>(dim_used),
                   fjlt != 0,
                   retries,
                   std::move(point_ids)};
}

Embedding embedding_from_bytes(const std::vector<std::uint8_t>& bytes) {
  Deserializer d(bytes);
  return deserialize_embedding(d);
}

void save_embedding(const Embedding& embedding, const std::string& path,
                    bool include_points) {
  const auto enveloped =
      wrap_checksummed(embedding_to_bytes(embedding, include_points));
  const Status status = write_file_atomic(path, enveloped);
  if (!status.ok()) throw MpteError("save_embedding: " + status.to_string());
}

Embedding load_embedding(const std::string& path) {
  auto embedding = try_load_embedding(path);
  if (!embedding.ok()) {
    throw MpteError("load_embedding: " + embedding.status().to_string());
  }
  return std::move(*embedding);
}

Result<Embedding> try_load_embedding(const std::string& path) {
  auto file_bytes = read_file_bytes(path);
  if (!file_bytes.ok()) return file_bytes.status();
  // Pre-envelope files carried the raw payload; still accepted.
  auto payload = unwrap_checksummed(std::move(*file_bytes),
                                    /*allow_legacy=*/true, path);
  if (!payload.ok()) return payload.status();
  try {
    return embedding_from_bytes(*payload);
  } catch (const MpteError& error) {
    return Status(StatusCode::kInvalidArgument,
                  path + ": " + error.what());
  }
}

}  // namespace mpte
