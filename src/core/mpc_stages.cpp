#include "core/mpc_stages.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "mpc/step.hpp"
#include "obs/trace.hpp"
#include "partition/ball_partition.hpp"
#include "simd/arena.hpp"

namespace mpte::detail {

using mpc::StepParams;
using mpc::Cluster;
using mpc::KV;
using mpc::MachineContext;
using mpc::MachineId;
using mpc::RegisterStep;
using mpc::Step;
using mpc::StepSpec;

void scatter_points(Cluster& cluster, const PointSet& points) {
  // Host-side write: suppressed while fast-forwarding a restored run (the
  // restored stores already reflect it — see mpc::Cluster::resume_from).
  if (cluster.fast_forwarding()) return;
  const obs::Span span("emb", "scatter", "points", points.size());
  const std::size_t m = cluster.num_machines();
  const std::size_t n = points.size();
  const std::size_t block = ceil_div(n, m);
  for (MachineId id = 0; id < m; ++id) {
    const std::size_t begin = std::min(n, id * block);
    const std::size_t end = std::min(n, begin + block);
    std::vector<std::uint64_t> idx;
    std::vector<double> data;
    idx.reserve(end - begin);
    data.reserve((end - begin) * points.dim());
    for (std::size_t i = begin; i < end; ++i) {
      idx.push_back(i);
      const auto p = points[i];
      data.insert(data.end(), p.begin(), p.end());
    }
    keys::kIdx.set(cluster.store(id), idx);
    keys::kPts.set(cluster.store(id), data);
  }
}

std::uint64_t pack_level_node(std::size_t level, std::uint64_t cluster_id) {
  return (static_cast<std::uint64_t>(level) << 56) | (cluster_id >> 8);
}

std::size_t packed_level(std::uint64_t key) {
  return static_cast<std::size_t>(key >> 56);
}

namespace {

Step make_quantize_extremes(StepParams params) {
  Deserializer d(params);
  const auto dim = static_cast<std::size_t>(d.read<std::uint64_t>());
  return [dim](MachineContext& ctx) {
    const auto data = keys::kPts.get(ctx.store());
    std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i * dim < data.size(); ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        lo[j] = std::min(lo[j], data[i * dim + j]);
        hi[j] = std::max(hi[j], data[i * dim + j]);
      }
    }
    // One message carrying both extreme vectors (mixed content, so a
    // raw Serializer rather than a Channel batch).
    Serializer s(2 * wire_size<double>(dim));
    s.write_vector(lo);
    s.write_vector(hi);
    ctx.send(0, std::move(s), keys::kBox);
  };
}

Step make_quantize_combine(StepParams params) {
  Deserializer pd(params);
  const auto dim = static_cast<std::size_t>(pd.read<std::uint64_t>());
  const auto delta = pd.read<std::uint64_t>();
  return [dim, delta](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
    for (const auto& msg : ctx.inbox()) {
      Deserializer d(msg.payload);
      const auto part_lo = d.read_vector<double>();
      const auto part_hi = d.read_vector<double>();
      for (std::size_t j = 0; j < dim; ++j) {
        lo[j] = std::min(lo[j], part_lo[j]);
        hi[j] = std::max(hi[j], part_hi[j]);
      }
    }
    double width = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      width = std::max(width, hi[j] - lo[j]);
    }
    const double cell =
        width > 0.0 ? width / static_cast<double>(delta - 1) : 1.0;
    Serializer s(sizeof(double) + wire_size<double>(dim));
    s.write(cell);
    s.write_vector(lo);
    ctx.store().set_blob(keys::kBox, s.take());
  };
}

Step make_quantize_snap(StepParams params) {
  Deserializer pd(params);
  const auto dim = static_cast<std::size_t>(pd.read<std::uint64_t>());
  const auto delta = pd.read<std::uint64_t>();
  return [dim, delta](MachineContext& ctx) {
    Deserializer d(ctx.store().blob(keys::kBox));
    const auto cell = d.read<double>();
    const auto lo = d.read_vector<double>();
    ctx.store().erase(keys::kBox);
    auto data = keys::kPts.get(ctx.store());
    for (std::size_t e = 0; e < data.size(); ++e) {
      const std::size_t j = e % dim;
      const double offset = (data[e] - lo[j]) / cell;
      const double snapped =
          std::clamp(std::round(offset), 0.0, static_cast<double>(delta - 1));
      data[e] = snapped + 1.0;
    }
    keys::kPts.set(ctx.store(), data);
  };
}

Step make_grids_build(StepParams params) {
  Deserializer d(params);
  const auto p = d.read<PartitionParams>();
  return [p](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    keys::kGrids.set(ctx.store(), p);
  };
}

/// Common body of the two stage-4 variants: computes each local point's
/// id chain and calls `emit(point, level, parent_id, child_id)` per level.
/// Returns the number of uncovered events under the kFail policy.
template <typename Emit>
std::uint64_t compute_paths(MachineContext& ctx, std::size_t dim,
                            const PartitionParams& p, Emit&& emit) {
  const ScaleLadder ladder =
      hybrid_scale_ladder(dim, p.num_buckets, p.delta);
  const auto idx = keys::kIdx.get(ctx.store());
  const auto data = keys::kPts.get(ctx.store());
  if (idx.empty()) return 0;

  // Construct every (level, bucket) grid set once, outside the point loop:
  // BallGrids materializes its shift table at construction, so rebuilding
  // it per point would redo U × bucket_dim hashes per assignment.
  std::vector<BallGrids> grids_cache;
  grids_cache.reserve(ladder.levels * p.num_buckets);
  for (std::size_t level = 1; level <= ladder.levels; ++level) {
    for (std::uint32_t j = 0; j < p.num_buckets; ++j) {
      grids_cache.emplace_back(p.bucket_dim, ladder.scales[level],
                               p.num_grids,
                               hybrid_grid_seed(p.seed, level, j));
    }
  }

  std::uint64_t failures = 0;
  // Per-attempt staging row from this thread's scratch arena rather than a
  // heap vector: machine steps run inside a ScratchScope (mpc::Cluster),
  // so the row is reclaimed when the step ends.
  simd::ScratchScope scratch_scope;
  const std::span<double> bucket_coords =
      scratch_scope.arena().alloc<double>(p.bucket_dim);
  for (std::size_t local = 0; local < idx.size(); ++local) {
    const std::uint64_t point = idx[local];
    std::uint64_t id = hybrid_root_id(p.seed);
    for (std::size_t level = 1; level <= ladder.levels; ++level) {
      const std::uint64_t parent = id;
      for (std::uint32_t j = 0; j < p.num_buckets; ++j) {
        const BallGrids& grids =
            grids_cache[(level - 1) * p.num_buckets + j];
        // Projection with zero padding past the true dimension
        // (footnote 3), matching PointSet::pad_dims + project.
        for (std::uint32_t t = 0; t < p.bucket_dim; ++t) {
          const std::size_t coord = j * p.bucket_dim + t;
          bucket_coords[t] = coord < dim ? data[local * dim + coord] : 0.0;
        }
        std::uint64_t ball = grids.assign(bucket_coords);
        if (ball == kUncovered) {
          if (p.uncovered_singleton == 0) {
            ++failures;
            ball = 0;  // placeholder; the attempt will be retried
          } else {
            ball = hash_combine(hash_combine(mix64(0xdeadull), point),
                                hash_combine(level, j));
          }
        }
        id = hash_combine(id, ball);
      }
      emit(point, level, parent, id);
    }
  }
  return failures;
}

Step make_paths_compute(StepParams params) {
  Deserializer pd(params);
  const auto dim = static_cast<std::size_t>(pd.read<std::uint64_t>());
  return [dim](MachineContext& ctx) {
    const auto p = keys::kGrids.get(ctx.store());
    keys::kGrids.erase(ctx.store());
    std::vector<KV> edges;
    std::vector<KV> leaves;
    std::uint64_t last_point = ~0ull;
    const std::uint64_t failures = compute_paths(
        ctx, dim, p,
        [&](std::uint64_t point, std::size_t level, std::uint64_t parent,
            std::uint64_t child) {
          edges.push_back(KV{child, parent});
          if (point != last_point) {
            leaves.push_back(KV{point, child});
            last_point = point;
          } else {
            leaves.back().value = child;
          }
          (void)level;
        });
    keys::kEdges.set(ctx.store(), edges);
    keys::kLeaf.set(ctx.store(), leaves);
    keys::kFail.set(ctx.store(), failures);
  };
}

Step make_paths_records(StepParams params) {
  Deserializer pd(params);
  const auto dim = static_cast<std::size_t>(pd.read<std::uint64_t>());
  const bool emit_links = pd.read<std::uint8_t>() != 0;
  return [dim, emit_links](MachineContext& ctx) {
    const auto p = keys::kGrids.get(ctx.store());
    keys::kGrids.erase(ctx.store());
    std::vector<KV> records;
    std::vector<KV> links;
    const std::uint64_t failures = compute_paths(
        ctx, dim, p,
        [&](std::uint64_t point, std::size_t level, std::uint64_t parent,
            std::uint64_t child) {
          records.push_back(KV{pack_level_node(level, child), point});
          if (emit_links) {
            links.push_back(KV{pack_level_node(level, child),
                               pack_level_node(level - 1, parent)});
          }
        });
    keys::kNodes.set(ctx.store(), records);
    if (emit_links) keys::kLinks.set(ctx.store(), links);
    keys::kFail.set(ctx.store(), failures);
  };
}

const RegisterStep kRegQuantizeExtremes{"quantize/extremes",
                                        make_quantize_extremes};
const RegisterStep kRegQuantizeCombine{"quantize/combine",
                                       make_quantize_combine};
const RegisterStep kRegQuantizeSnap{"quantize/snap", make_quantize_snap};
const RegisterStep kRegGridsBuild{"grids/build", make_grids_build};
const RegisterStep kRegPathsCompute{"paths/compute", make_paths_compute};
const RegisterStep kRegPathsRecords{"paths/records", make_paths_records};

/// Broadcast of the partition parameters (stage 3).
void broadcast_params(Cluster& cluster, const PartitionParams& params,
                      std::size_t fanout) {
  Serializer build;
  build.write(params);
  cluster.run_round(StepSpec("grids/build", std::move(build)));
  mpc::broadcast_blob(cluster, 0, keys::kGrids.name, fanout);
}

/// Converge-cast of the per-machine failure counters; returns the total.
std::uint64_t total_failures(Cluster& cluster) {
  mpc::sum_u64(cluster, keys::kFail.name, keys::kFailTotal.name, 0);
  return keys::kFailTotal.in(cluster.store(0))
             ? keys::kFailTotal.get(cluster.store(0))
             : 0;
}

}  // namespace

void mpc_quantize(Cluster& cluster, std::size_t dim, std::uint64_t delta,
                  std::size_t fanout) {
  const obs::Span span("emb", "quantize", "delta", delta);
  Serializer extremes;
  extremes.write(static_cast<std::uint64_t>(dim));
  cluster.run_round(StepSpec("quantize/extremes", std::move(extremes)));

  Serializer combine;
  combine.write(static_cast<std::uint64_t>(dim));
  combine.write(delta);
  cluster.run_round(StepSpec("quantize/combine", std::move(combine)));

  mpc::broadcast_blob(cluster, 0, keys::kBox, fanout);

  Serializer snap;
  snap.write(static_cast<std::uint64_t>(dim));
  snap.write(delta);
  cluster.run_round(StepSpec("quantize/snap", std::move(snap)));
}

std::uint64_t run_partition_attempt(Cluster& cluster, std::size_t dim,
                                    const PartitionParams& params,
                                    std::size_t fanout) {
  const obs::Span span("emb", "partition-attempt");
  broadcast_params(cluster, params, fanout);

  Serializer compute;
  compute.write(static_cast<std::uint64_t>(dim));
  cluster.run_round(StepSpec("paths/compute", std::move(compute)));

  return total_failures(cluster);
}

std::uint64_t run_path_records_attempt(Cluster& cluster, std::size_t dim,
                                       const PartitionParams& params,
                                       std::size_t fanout,
                                       bool emit_links) {
  const obs::Span span("emb", "path-records-attempt");
  broadcast_params(cluster, params, fanout);

  Serializer records;
  records.write(static_cast<std::uint64_t>(dim));
  records.write(static_cast<std::uint8_t>(emit_links ? 1 : 0));
  cluster.run_round(StepSpec("paths/records", std::move(records)));

  return total_failures(cluster);
}

}  // namespace mpte::detail
