#include "core/ensemble.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace mpte {

EmbeddingEnsemble::EmbeddingEnsemble(std::vector<Embedding> members)
    : members_(std::move(members)) {
  indexes_.reserve(members_.size());
  for (const Embedding& member : members_) {
    indexes_.emplace_back(member.tree);
  }
}

Result<EmbeddingEnsemble> EmbeddingEnsemble::build(const PointSet& points,
                                                   const EmbedOptions& options,
                                                   std::size_t trees,
                                                   std::size_t threads) {
  if (trees == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EmbeddingEnsemble: need at least one tree");
  }
  // Each member's options are a pure function of (options.seed, t), so the
  // members can be built in any order — one chunk per member on the pool.
  std::vector<std::optional<Embedding>> slots(trees);
  std::vector<Status> statuses(trees);
  par::parallel_for_chunked(
      0, trees, trees,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          EmbedOptions member_options = options;
          member_options.seed =
              hash_combine(mix64(options.seed ^ 0xe45eull), t);
          auto result = embed(points, member_options);
          if (result.ok()) {
            slots[t] = std::move(result).value();
          } else {
            statuses[t] = result.status();
          }
        }
      },
      threads);
  for (std::size_t t = 0; t < trees; ++t) {
    if (!statuses[t].ok()) return statuses[t];
  }
  std::vector<Embedding> members;
  members.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    members.push_back(std::move(*slots[t]));
  }
  return EmbeddingEnsemble(std::move(members));
}

Result<EmbeddingEnsemble> EmbeddingEnsemble::from_members(
    std::vector<Embedding> members) {
  if (members.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "EmbeddingEnsemble: need at least one member");
  }
  const std::size_t n = members.front().tree.num_points();
  for (const Embedding& member : members) {
    if (member.tree.num_points() != n) {
      return Status(StatusCode::kInvalidArgument,
                    "EmbeddingEnsemble: members embed different point sets");
    }
  }
  return EmbeddingEnsemble(std::move(members));
}

double EmbeddingEnsemble::expected_distance(std::size_t p,
                                            std::size_t q) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    sum += indexes_[i].distance(p, q) * members_[i].scale_to_input;
  }
  return sum / static_cast<double>(members_.size());
}

double EmbeddingEnsemble::min_distance(std::size_t p, std::size_t q) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    best = std::min(best, indexes_[i].distance(p, q) * members_[i].scale_to_input);
  }
  return best;
}

}  // namespace mpte
