#include "core/ensemble.hpp"

#include <algorithm>
#include <limits>

#include "common/rng.hpp"

namespace mpte {

Result<EmbeddingEnsemble> EmbeddingEnsemble::build(
    const PointSet& points, const EmbedOptions& options, std::size_t trees) {
  if (trees == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EmbeddingEnsemble: need at least one tree");
  }
  std::vector<Embedding> members;
  members.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    EmbedOptions member_options = options;
    member_options.seed = hash_combine(mix64(options.seed ^ 0xe45eull), t);
    auto result = embed(points, member_options);
    if (!result.ok()) return result.status();
    members.push_back(std::move(result).value());
  }
  return EmbeddingEnsemble(std::move(members));
}

double EmbeddingEnsemble::expected_distance(std::size_t p,
                                            std::size_t q) const {
  double sum = 0.0;
  for (const Embedding& member : members_) {
    sum += member.distance(p, q);
  }
  return sum / static_cast<double>(members_.size());
}

double EmbeddingEnsemble::min_distance(std::size_t p, std::size_t q) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Embedding& member : members_) {
    best = std::min(best, member.distance(p, q));
  }
  return best;
}

}  // namespace mpte
