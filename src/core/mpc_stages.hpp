// Reusable stages of the MPC embedding pipeline (Algorithm 2).
//
// mpc_embed() composes these; the Corollary 1 applications
// (apps/mpc_apps.*) reuse the same stages and then consume the
// *distributed* root-to-leaf paths directly — one extra shuffle instead of
// assembling the tree centrally. Keeping the stages in one place
// guarantees every consumer computes the identical hierarchy for a given
// seed.
//
// The cluster-resident state these stages leave behind is exposed as the
// typed keys in mpte::detail::keys below; the full data-layout contract
// (who writes what, when, in which format) is documented in
// docs/mpc-model.md ("The emb/* data layout").
#pragma once

#include <cstdint>

#include "geometry/point_set.hpp"
#include "mpc/channel.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"
#include "partition/hybrid_partition.hpp"

namespace mpte::detail {

/// The "grids" rank 0 builds and broadcasts (stage 3): the counter-based
/// description of every grid of every level and bucket — seed, scale
/// ladder parameters, and grid count.
struct PartitionParams {
  std::uint64_t seed = 0;
  std::uint64_t delta = 0;
  std::uint64_t num_grids = 0;
  std::uint32_t num_buckets = 0;
  std::uint32_t bucket_dim = 0;
  std::uint32_t effective_dim = 0;  // bucket_dim * num_buckets
  std::uint32_t uncovered_singleton = 0;
};

/// Typed handles to the cluster-resident state of the embedding pipeline.
/// See docs/mpc-model.md for the layout contract.
namespace keys {
inline const mpc::Key<std::uint64_t> kIdx{"emb/idx"};
inline const mpc::Key<double> kPts{"emb/pts"};
inline const mpc::Key<mpc::KV> kEdges{"emb/edges"};
inline const mpc::Key<mpc::KV> kLeaf{"emb/leaf"};
inline const mpc::Key<mpc::KV> kNodes{"emb/nodes"};
inline const mpc::Key<mpc::KV> kLinks{"emb/links"};
inline const mpc::ValueKey<std::uint64_t> kFail{"emb/fail"};
inline const mpc::ValueKey<std::uint64_t> kFailTotal{"emb/fail/total"};
inline const mpc::ValueKey<PartitionParams> kGrids{"emb/grids"};
/// Bounding-box blob of mpc_quantize: double cell size + length-prefixed
/// lo vector (mixed types — kept as a raw Serializer blob, not a Key<T>).
inline constexpr const char* kBox = "emb/box";
}  // namespace keys

/// Host-side input loading: scatters (index, coordinates) blocks of
/// `points` across machines under keys::kIdx / keys::kPts.
void scatter_points(mpc::Cluster& cluster, const PointSet& points);

/// Stage 2: distributed quantization to [1, delta]^dim — bounding box by
/// converge-cast, broadcast, local snap. Rewrites keys::kPts in place with
/// integer coordinates (identical arithmetic to quantize_to_grid).
void mpc_quantize(mpc::Cluster& cluster, std::size_t dim,
                  std::uint64_t delta, std::size_t fanout);

/// Stages 3+4 for one seed attempt: broadcast the grid description, then
/// every machine computes its points' root-to-leaf paths locally, leaving
/// keys::kEdges (KV child-id -> parent-id, per level) and keys::kLeaf
/// (KV point-index -> bottom cluster id). Returns the number of uncovered
/// (point, level, bucket) events under the kFail policy (0 = success);
/// under the singleton policy always returns 0.
std::uint64_t run_partition_attempt(mpc::Cluster& cluster, std::size_t dim,
                                    const PartitionParams& params,
                                    std::size_t fanout);

/// Node id of the hierarchy cluster a point occupies at `level`, packed
/// with the level in the top byte — the key format the distributed
/// applications reduce on. Levels are < 2^8 (<= ~70 for any representable
/// delta), ids keep 56 mixed bits.
std::uint64_t pack_level_node(std::size_t level, std::uint64_t cluster_id);

/// Inverse of pack_level_node's level field.
std::size_t packed_level(std::uint64_t key);

/// Like run_partition_attempt, but emits per-(point, level) records
/// keys::kNodes: KV{pack_level_node(level, id), point-index}, the input to
/// path-based reductions (EMD imbalance, subtree counts, representatives).
/// With emit_links it additionally stores keys::kLinks:
/// KV{packed child, packed parent} (needed by the distributed MST).
/// Also leaves keys::kFail like run_partition_attempt; same return.
std::uint64_t run_path_records_attempt(mpc::Cluster& cluster,
                                       std::size_t dim,
                                       const PartitionParams& params,
                                       std::size_t fanout,
                                       bool emit_links = false);

}  // namespace mpte::detail
