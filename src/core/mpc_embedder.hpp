// Public API: the MPC tree-embedding pipeline (Algorithm 2 / Theorem 1).
//
// Stages, each a constant number of rounds on the simulated cluster:
//
//   (1) MPC FJLT (Theorem 3) when the ambient dimension exceeds the target
//       k = Theta(log n) — see transform/mpc_fjlt.hpp.
//   (2) Distributed quantization to [1, Delta]^dim: local per-dimension
//       extremes, converge-cast to rank 0, broadcast of the bounding box,
//       local snap. (Identical arithmetic to geometry/quantize.hpp, so the
//       sequential and MPC pipelines see the same integer points.)
//   (3) Rank 0 "builds the grids and sends them to all machines": the grid
//       set is its (seed, scale ladder, U) description — the counter-based
//       form of the object Lemma 8 sizes — broadcast via the fan-out tree.
//   (4) Every machine computes, locally, the root-to-leaf path of each of
//       its points (per level, per bucket ball assignment, hash-chained
//       cluster ids — the same chain the sequential Algorithm 1 computes),
//       plus a failure flag if any point is uncovered. A converge-cast
//       aggregates failure; on failure the stage retries with a fresh seed
//       (Theorem 1 "reports failure").
//   (5) The tree is the union of the paths: one shuffle deduplicates the
//       (child, parent) edge records; the host assembles the HST with the
//       same pruning pass as the sequential builder, so for equal seeds
//       the two pipelines return trees with identical metrics.
#pragma once

#include "core/embedder.hpp"
#include "geometry/point_set.hpp"
#include "mpc/cluster.hpp"
#include "partition/hybrid_partition.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Options for mpc_embed(). Zeros mean "choose per the paper".
struct MpcEmbedOptions {
  /// Buckets r; 0 = auto (Theorem 1's Theta(log log n) raised so the
  /// per-bucket dimension stays <= max_bucket_dim — see
  /// EmbedOptions::max_bucket_dim for the rationale).
  std::uint32_t num_buckets = 0;
  std::size_t max_bucket_dim = 3;
  /// Grid extent Delta; 0 = host-side recommended_delta (the aspect-ratio
  /// promise is an *input* precondition in the paper, so computing it is
  /// not part of the round count).
  std::uint64_t delta = 0;
  double quantize_eps = 0.05;
  std::uint64_t seed = 1;
  bool use_fjlt = true;
  double fjlt_xi = 0.25;
  std::size_t num_grids = 0;
  double fail_prob = 1e-6;
  UncoveredPolicy uncovered = UncoveredPolicy::kFail;
  int max_retries = 3;
  /// Fan-out of broadcast trees (M^eps in the fully scalable regime).
  std::size_t broadcast_fanout = 4;
};

/// A finished MPC embedding plus its cost accounting.
struct MpcEmbedding {
  Hst tree;
  /// Quantized (and possibly reduced) points, gathered for inspection.
  PointSet embedded_points;
  double scale_to_input = 1.0;
  std::uint64_t delta_used = 0;
  std::uint32_t buckets_used = 0;
  std::size_t grids_used = 0;
  std::size_t dim_used = 0;
  bool fjlt_applied = false;
  int retries_used = 0;
  /// Rounds consumed by this call (delta of cluster.stats()).
  std::size_t rounds_used = 0;

  double distance(std::size_t p, std::size_t q) const {
    return tree.distance(p, q) * scale_to_input;
  }
};

/// Runs the full MPC pipeline on `cluster`. Input scatter and output
/// gather are host-side (the model's input/output are distributed); all
/// real work happens in audited rounds, accounted in cluster.stats().
Result<MpcEmbedding> mpc_embed(mpc::Cluster& cluster, const PointSet& points,
                               const MpcEmbedOptions& options);

}  // namespace mpte
