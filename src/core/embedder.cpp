#include "core/embedder.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "tree/embedding_builder.hpp"
#include "transform/fjlt.hpp"

namespace mpte {

const char* to_string(PartitionMethod method) {
  switch (method) {
    case PartitionMethod::kGrid:
      return "grid";
    case PartitionMethod::kBall:
      return "ball";
    case PartitionMethod::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::uint32_t theorem1_num_buckets(std::size_t n, std::size_t dim) {
  const double ln_n = std::log(std::max<double>(3.0, static_cast<double>(n)));
  const double r = 2.0 * std::log(std::max(std::numbers::e_v<double>, ln_n));
  const auto rounded =
      static_cast<std::uint32_t>(std::max(1.0, std::round(r)));
  return std::min<std::uint32_t>(rounded,
                                 static_cast<std::uint32_t>(dim));
}

std::uint32_t auto_num_buckets(std::size_t n, std::size_t dim,
                               std::size_t max_bucket_dim) {
  const std::uint32_t theory = theorem1_num_buckets(n, dim);
  const auto practical = static_cast<std::uint32_t>(
      ceil_div(dim, std::max<std::size_t>(1, max_bucket_dim)));
  return std::min<std::uint32_t>(static_cast<std::uint32_t>(dim),
                                 std::max(theory, practical));
}

Result<Embedding> embed(const PointSet& points, const EmbedOptions& options) {
  if (points.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "embed: need at least two points");
  }

  // (1) Dimension reduction when the ambient dimension exceeds the FJLT
  // target k — below that the transform only adds distortion.
  PointSet working = points;
  bool fjlt_applied = false;
  if (options.use_fjlt) {
    const FjltConfig config = FjltConfig::make(
        points.size(), points.dim(), options.fjlt_xi, mix64(options.seed));
    if (config.output_dim < points.dim()) {
      working = Fjlt(config).transform(points);
      fjlt_applied = true;
    }
  }

  // (2) Quantization to [1, Delta]^dim.
  const std::uint64_t delta =
      options.delta > 0
          ? options.delta
          : recommended_delta(working, options.quantize_eps, 1ull << 20);
  Quantized quantized = quantize_to_grid(working, delta);

  // (3) Partitioning with retries, (4) assembly.
  const std::size_t dim = quantized.points.dim();
  Status last_failure(StatusCode::kInternal, "unreached");
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    const std::uint64_t attempt_seed =
        hash_combine(mix64(options.seed), static_cast<std::uint64_t>(attempt));
    Result<Hierarchy> hierarchy = [&]() -> Result<Hierarchy> {
      switch (options.method) {
        case PartitionMethod::kGrid:
          return build_grid_hierarchy(quantized.points, delta, attempt_seed);
        case PartitionMethod::kBall:
        case PartitionMethod::kHybrid: {
          HybridOptions hybrid;
          hybrid.num_buckets =
              options.method == PartitionMethod::kBall
                  ? 1
                  : (options.num_buckets > 0
                         ? options.num_buckets
                         : auto_num_buckets(points.size(), dim,
                                            options.max_bucket_dim));
          hybrid.delta = delta;
          hybrid.seed = attempt_seed;
          hybrid.num_grids = options.num_grids;
          hybrid.fail_prob = options.fail_prob;
          hybrid.uncovered = options.uncovered;
          return build_hybrid_hierarchy(quantized.points, hybrid);
        }
      }
      return Status(StatusCode::kInvalidArgument, "embed: unknown method");
    }();

    if (!hierarchy.ok()) {
      last_failure = hierarchy.status();
      if (last_failure.code() == StatusCode::kCoverageFailure) {
        continue;  // Monte Carlo retry with a fresh seed
      }
      return last_failure;
    }

    Embedding embedding{
        build_hst(*hierarchy),
        std::move(quantized.points),
        quantized.scale_back,
        delta,
        hierarchy->num_buckets,
        hierarchy->num_grids,
        dim,
        fjlt_applied,
        attempt,
        /*point_ids=*/{},
    };
    return embedding;
  }
  return last_failure;
}

}  // namespace mpte
