#include "core/mpc_embedder.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/mpc_stages.hpp"
#include "geometry/bounding_box.hpp"
#include "geometry/quantize.hpp"
#include "mpc/primitives.hpp"
#include "obs/trace.hpp"
#include "partition/coverage.hpp"
#include "transform/mpc_fjlt.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte {

using mpc::Cluster;
using mpc::KV;
using mpc::MachineId;

namespace {

constexpr std::uint32_t kNoteMagic = 0x65746f6e;  // "note"

/// Host-side decisions recorded in the cluster's driver note (and thus in
/// every snapshot): the quantization geometry chosen after the FJLT stage
/// and the Monte Carlo attempt in progress. A resumed run fast-forwards
/// the rounds that produced these values, so it reads them from here
/// instead of recomputing them from stores it is skipping over.
struct ResumeNote {
  std::uint8_t has_geometry = 0;
  std::uint64_t delta = 0;
  double scale_to_input = 1.0;
  std::uint32_t attempt = 0;

  mpc::Buffer to_buffer() const {
    Serializer s(32);
    s.write(kNoteMagic);
    s.write(has_geometry);
    s.write(delta);
    s.write(scale_to_input);
    s.write(attempt);
    return mpc::Buffer(s.take());
  }

  static std::optional<ResumeNote> from_buffer(const mpc::Buffer& buffer) {
    if (buffer.empty()) return std::nullopt;
    try {
      Deserializer d(buffer.span());
      if (d.read<std::uint32_t>() != kNoteMagic) return std::nullopt;
      ResumeNote note;
      note.has_geometry = d.read<std::uint8_t>();
      note.delta = d.read<std::uint64_t>();
      note.scale_to_input = d.read<double>();
      note.attempt = d.read<std::uint32_t>();
      return note;
    } catch (const MpteError&) {
      return std::nullopt;
    }
  }
};

}  // namespace

Result<MpcEmbedding> mpc_embed(Cluster& cluster, const PointSet& points,
                               const MpcEmbedOptions& options) {
  if (points.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_embed: need at least two points");
  }
  const std::size_t rounds_before = cluster.stats().rounds();
  const std::size_t n = points.size();
  const obs::Span pipeline_span("emb", "mpc_embed", "points", n);

  // When the cluster was just restored from a snapshot it is
  // fast-forwarding: rounds up to the snapshot point are skipped, and
  // host-side reads in that prefix would observe snapshot-time state
  // rather than the values the original run saw. The driver note captured
  // with the snapshot disambiguates (see ResumeNote above). Each use
  // below re-checks fast_forwarding() at its own program point, so a
  // stale note from before the snapshot's pipeline is never consulted.
  const std::optional<ResumeNote> restored =
      cluster.fast_forwarding()
          ? ResumeNote::from_buffer(cluster.driver_note())
          : std::nullopt;

  // Stage 1: MPC FJLT.
  PointSet working = points;
  bool fjlt_applied = false;
  if (options.use_fjlt) {
    const FjltConfig config = FjltConfig::make(
        n, points.dim(), options.fjlt_xi, mix64(options.seed));
    if (config.output_dim < points.dim()) {
      working = mpc_fjlt(cluster, points, config);
      fjlt_applied = true;
    }
  }
  const std::size_t dim = working.dim();

  std::uint64_t delta;
  double scale_to_input;
  if (cluster.fast_forwarding() && restored && restored->has_geometry) {
    // The snapshot lies beyond the FJLT gather, so `working` is a
    // fast-forward placeholder; take the geometry the original run chose.
    delta = restored->delta;
    scale_to_input = restored->scale_to_input;
  } else {
    // Delta is the paper's input promise; derive it host-side if absent.
    delta = options.delta > 0
                ? options.delta
                : recommended_delta(working, options.quantize_eps, 1ull << 20);
    // scale_to_input mirrors the snap cell (same arithmetic, host-side).
    const double width = BoundingBox::of(working).width();
    scale_to_input =
        width > 0.0 ? width / static_cast<double>(delta - 1) : 1.0;
  }
  if (delta < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_embed: delta must be >= 2");
  }

  // Record the geometry before the rounds it feeds: every snapshot taken
  // from here on carries it.
  ResumeNote note;
  note.has_geometry = 1;
  note.delta = delta;
  note.scale_to_input = scale_to_input;
  cluster.set_driver_note(note.to_buffer());

  // Stage 2: distributed quantization.
  detail::scatter_points(cluster, working);
  detail::mpc_quantize(cluster, dim, delta, options.broadcast_fanout);

  // Partition parameters.
  detail::PartitionParams params;
  params.delta = delta;
  params.num_buckets =
      options.num_buckets > 0
          ? std::min<std::uint32_t>(options.num_buckets,
                                    static_cast<std::uint32_t>(dim))
          : auto_num_buckets(n, dim, options.max_bucket_dim);
  params.bucket_dim =
      static_cast<std::uint32_t>(ceil_div(dim, params.num_buckets));
  params.effective_dim = params.bucket_dim * params.num_buckets;
  params.uncovered_singleton =
      options.uncovered == UncoveredPolicy::kSingleton ? 1 : 0;
  const ScaleLadder ladder =
      hybrid_scale_ladder(dim, params.num_buckets, delta);
  params.num_grids =
      options.num_grids > 0
          ? options.num_grids
          : recommended_num_grids(params.bucket_dim, n, params.num_buckets,
                                  ladder.levels, options.fail_prob);

  // Stages 3–4 with Monte Carlo retries.
  int attempt = 0;
  for (;; ++attempt) {
    note.attempt = static_cast<std::uint32_t>(attempt);
    cluster.set_driver_note(note.to_buffer());
    params.seed = hash_combine(mix64(options.seed),
                               static_cast<std::uint64_t>(attempt));
    std::uint64_t failures = detail::run_partition_attempt(
        cluster, dim, params, options.broadcast_fanout);
    // While fast-forwarding, the fail-total read above observed the
    // snapshot round's state, not this attempt's own converge-cast. The
    // noted attempt disambiguates: every attempt before the one in
    // progress at the snapshot had failed (or there would have been no
    // later attempt), and the in-progress attempt's own total is exactly
    // what is resident at the snapshot point.
    if (cluster.fast_forwarding() && restored &&
        attempt < static_cast<int>(restored->attempt)) {
      failures = 1;
    }
    if (failures == 0) break;
    if (attempt >= options.max_retries) {
      return Status(StatusCode::kCoverageFailure,
                    "mpc_embed: ball partitioning left " +
                        std::to_string(failures) +
                        " (point, level, bucket) events uncovered after " +
                        std::to_string(attempt + 1) + " attempts");
    }
  }

  // Stage 5: the tree is the deduplicated union of paths.
  const mpc::Key<KV> dedup_key{detail::keys::kEdges.name + "/dedup"};
  {
    const obs::Span span("emb", "dedup-edges");
    mpc::dedup_kv(cluster, detail::keys::kEdges.name, dedup_key.name);
  }

  // Host-side assembly (output readout): BFS from the root id over the
  // gathered edge set, then the shared pruning pass.
  const obs::Span assemble_span("emb", "assemble");
  const auto edges = mpc::gather_vector<KV>(cluster, dedup_key.name);
  const auto leaves = mpc::gather_vector<KV>(cluster, detail::keys::kLeaf.name);

  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> children;
  children.reserve(edges.size());
  for (const KV& edge : edges) {
    children[edge.value].push_back(edge.key);
  }

  RawTree raw;
  raw.edge_weight = ladder.edge_weight;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  const std::uint64_t root_id = hybrid_root_id(params.seed);
  raw.nodes.push_back(RawTree::RawNode{root_id, -1, 0});
  index_of.emplace(root_id, 0);
  // The frontier expands level by level; node order stays topological.
  for (std::size_t head = 0; head < raw.nodes.size(); ++head) {
    const auto it = children.find(raw.nodes[head].key);
    if (it == children.end()) continue;
    // Deterministic child order (dedup_kv sorts per machine, but the
    // gather concatenates machines).
    std::vector<std::uint64_t> kids = it->second;
    std::sort(kids.begin(), kids.end());
    for (const std::uint64_t kid : kids) {
      const auto index = static_cast<std::uint32_t>(raw.nodes.size());
      raw.nodes.push_back(RawTree::RawNode{
          kid, static_cast<std::int32_t>(head), raw.nodes[head].level + 1});
      index_of.emplace(kid, index);
    }
  }

  raw.bottom_of_point.assign(n, 0);
  for (const KV& leaf : leaves) {
    raw.bottom_of_point[leaf.key] = index_of.at(leaf.value);
  }

  // Gather the quantized points for inspection/distortion measurement.
  PointSet embedded(n, dim);
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    auto& store = cluster.store(id);
    const auto idx = detail::keys::kIdx.get(store);
    const auto data = detail::keys::kPts.get(store);
    for (std::size_t local = 0; local < idx.size(); ++local) {
      auto dst = embedded[idx[local]];
      for (std::size_t j = 0; j < dim; ++j) dst[j] = data[local * dim + j];
    }
    detail::keys::kIdx.erase(store);
    detail::keys::kPts.erase(store);
    dedup_key.erase(store);
    detail::keys::kLeaf.erase(store);
    detail::keys::kFail.erase(store);
  }
  detail::keys::kFailTotal.erase(cluster.store(0));

  MpcEmbedding embedding{
      assemble_pruned(raw),
      std::move(embedded),
      scale_to_input,
      delta,
      params.num_buckets,
      params.num_grids,
      dim,
      fjlt_applied,
      attempt,
      cluster.stats().rounds() - rounds_before,
  };
  return embedding;
}

}  // namespace mpte
