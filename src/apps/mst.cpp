#include "apps/mst.hpp"

#include <limits>

#include "common/status.hpp"

namespace mpte {

MstResult exact_mst(const PointSet& points) {
  const std::size_t n = points.size();
  MstResult result;
  if (n < 2) return result;

  // Prim with O(n^2) distance maintenance.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<bool> in_tree(n, false);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = l2_distance(points[0], points[j]);
  }
  result.edges.reserve(n - 1);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t next = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && (next == n || best[j] < best[next])) next = j;
    }
    in_tree[next] = true;
    result.edges.push_back(MstEdge{best_from[next], next, best[next]});
    result.total_length += best[next];
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const double d = l2_distance(points[next], points[j]);
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = next;
      }
    }
  }
  return result;
}

MstResult tree_mst(const Hst& tree, const PointSet& points) {
  if (tree.num_points() != points.size()) {
    throw MpteError("tree_mst: tree/point count mismatch");
  }
  const std::size_t nodes = tree.num_nodes();
  MstResult result;
  if (points.size() < 2) return result;

  // Representative point of each node's subtree. Children have larger
  // indices than parents, so a reverse sweep fills leaves before internal
  // nodes; each internal node connects all later children's representatives
  // to its first child's.
  std::vector<std::int64_t> representative(nodes, -1);
  for (std::size_t i = nodes; i-- > 0;) {
    const HstNode& node = tree.node(i);
    if (node.point >= 0) {
      representative[i] = node.point;
      continue;
    }
    const auto& kids = tree.children(i);
    representative[i] = representative[kids.front()];
    for (std::size_t c = 1; c < kids.size(); ++c) {
      const auto u = static_cast<std::size_t>(representative[kids[0]]);
      const auto v = static_cast<std::size_t>(representative[kids[c]]);
      const double length = l2_distance(points[u], points[v]);
      result.edges.push_back(MstEdge{u, v, length});
      result.total_length += length;
    }
  }
  return result;
}

}  // namespace mpte
