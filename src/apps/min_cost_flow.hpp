// Minimum-cost maximum-flow — the exact-EMD substrate.
//
// Earth-Mover distance between equal-mass point multisets is an assignment
// problem: a complete bipartite min-cost matching. The paper compares its
// tree-based EMD against the true value, so we need an exact solver: this
// is the classic successive-shortest-augmenting-path algorithm with
// Johnson potentials (Dijkstra per augmentation), exact for nonnegative
// reduced costs and fast enough for bench-scale instances (hundreds of
// points per side).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpte {

/// Min-cost max-flow on a directed graph with per-edge capacity and cost.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed edge u -> v; returns its id. Cost must be >= 0 in the
  /// initial graph (reduced costs stay nonnegative thereafter).
  std::size_t add_edge(std::size_t u, std::size_t v, std::int64_t capacity,
                       double cost);

  /// Result of a run: total flow pushed and its total cost.
  struct FlowResult {
    std::int64_t flow = 0;
    double cost = 0.0;
  };

  /// Pushes up to max_flow units from source to sink along successive
  /// shortest paths; returns the flow achieved and its cost.
  FlowResult solve(std::size_t source, std::size_t sink,
                   std::int64_t max_flow);

  /// Remaining capacity of edge `id` (for tests/diagnostics).
  std::int64_t residual_capacity(std::size_t id) const;

  /// Flow currently on edge `id`.
  std::int64_t flow_on(std::size_t id) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t rev;  // index of the reverse arc in graph_[to]
    std::int64_t capacity;
    double cost;
  };
  std::vector<std::vector<Arc>> graph_;
  // (node, arc-slot) location of user edge id, to report flows.
  std::vector<std::pair<std::size_t, std::size_t>> edge_location_;
  std::vector<std::int64_t> initial_capacity_;
};

}  // namespace mpte
