#include "apps/nearest_neighbor.hpp"

#include <limits>

#include "common/status.hpp"

namespace mpte {
namespace {

/// Appends the point indices of `node`'s subtree to `out` (DFS over the
/// children lists), stopping once `cap` indices are collected.
void collect_subtree_points(const Hst& tree, std::size_t node,
                            std::size_t cap,
                            std::vector<std::size_t>& out) {
  if (out.size() >= cap) return;
  const HstNode& n = tree.node(node);
  if (n.point >= 0) {
    out.push_back(static_cast<std::size_t>(n.point));
    return;
  }
  for (const std::uint32_t child : tree.children(node)) {
    collect_subtree_points(tree, child, cap, out);
    if (out.size() >= cap) return;
  }
}

}  // namespace

NeighborResult tree_nearest_neighbor(const Hst& tree, const PointSet& points,
                                     std::size_t query, std::size_t budget) {
  if (points.size() < 2) {
    throw MpteError("tree_nearest_neighbor: need at least two points");
  }
  if (tree.num_points() != points.size()) {
    throw MpteError("tree_nearest_neighbor: tree/point count mismatch");
  }
  budget = std::max<std::size_t>(budget, 2);

  // Harvest candidates outward from the query's leaf: at each ancestor,
  // collect the siblings' subtrees (the query's own subtree was already
  // harvested), so the closest clusters fill the budget first.
  std::vector<std::size_t> candidates;
  candidates.reserve(budget);
  std::size_t node = tree.leaf(query);
  std::size_t harvested = node;
  while (candidates.size() < budget && tree.node(node).parent >= 0) {
    node = static_cast<std::size_t>(tree.node(node).parent);
    for (const std::uint32_t child : tree.children(node)) {
      if (child == harvested) continue;
      collect_subtree_points(tree, child, budget, candidates);
      if (candidates.size() >= budget) break;
    }
    harvested = node;
  }

  NeighborResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (const std::size_t candidate : candidates) {
    if (candidate == query) continue;
    ++best.candidates;
    const double d = l2_distance(points[query], points[candidate]);
    if (d < best.distance) {
      best.distance = d;
      best.neighbor = candidate;
    }
  }
  return best;
}

std::vector<NeighborResult> tree_all_nearest_neighbors(
    const Hst& tree, const PointSet& points, std::size_t budget) {
  std::vector<NeighborResult> results;
  results.reserve(points.size());
  for (std::size_t q = 0; q < points.size(); ++q) {
    results.push_back(tree_nearest_neighbor(tree, points, q, budget));
  }
  return results;
}

NeighborResult exact_nearest_neighbor(const PointSet& points,
                                      std::size_t query) {
  if (points.size() < 2) {
    throw MpteError("exact_nearest_neighbor: need at least two points");
  }
  NeighborResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t candidate = 0; candidate < points.size(); ++candidate) {
    if (candidate == query) continue;
    ++best.candidates;
    const double d = l2_distance(points[query], points[candidate]);
    if (d < best.distance) {
      best.distance = d;
      best.neighbor = candidate;
    }
  }
  return best;
}

}  // namespace mpte
