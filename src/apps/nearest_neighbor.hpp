// Approximate nearest neighbors through the tree embedding.
//
// The HST's hierarchy is a similarity index: points that stay together
// deep in the tree are close (diameter bound, Lemma 1), and a point's
// nearest neighbor is, in expectation, among the first points it shares a
// cluster with when walking up from its leaf. The query routine walks up
// until it has gathered `budget` candidates and returns the Euclidean-best
// among them — O(budget) distance evaluations instead of O(n), with
// quality governed by the embedding distortion. (This is the tree-metric
// analogue of the classic LSH-forest / quadtree ANN recipe; Andoni [4],
// whose grid covering Lemma 6 underlies the partitioner, develops the
// theory.)
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point_set.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// One query answer.
struct NeighborResult {
  /// Index of the reported neighbor (never equals the query).
  std::size_t neighbor = 0;
  /// Euclidean distance to it.
  double distance = 0.0;
  /// Candidates actually examined.
  std::size_t candidates = 0;
};

/// Approximate nearest neighbor of point `query` (an index into the
/// embedded set): walk up from its leaf, collect subtree members until at
/// least `budget` candidates, return the closest. Requires >= 2 points.
NeighborResult tree_nearest_neighbor(const Hst& tree, const PointSet& points,
                                     std::size_t query, std::size_t budget);

/// All-pairs convenience: the approximate nearest neighbor of every point.
std::vector<NeighborResult> tree_all_nearest_neighbors(
    const Hst& tree, const PointSet& points, std::size_t budget);

/// Exact nearest neighbor by linear scan (the baseline), O(n d) per query.
NeighborResult exact_nearest_neighbor(const PointSet& points,
                                      std::size_t query);

}  // namespace mpte
