#include "apps/min_cost_flow.hpp"

#include <limits>
#include <queue>

#include "common/status.hpp"

namespace mpte {

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t u, std::size_t v,
                                  std::int64_t capacity, double cost) {
  if (u >= graph_.size() || v >= graph_.size()) {
    throw MpteError("MinCostFlow::add_edge: node out of range");
  }
  if (cost < 0.0) {
    throw MpteError("MinCostFlow::add_edge: negative cost");
  }
  const std::size_t id = edge_location_.size();
  edge_location_.emplace_back(u, graph_[u].size());
  initial_capacity_.push_back(capacity);
  graph_[u].push_back(Arc{v, graph_[v].size(), capacity, cost});
  graph_[v].push_back(Arc{u, graph_[u].size() - 1, 0, -cost});
  return id;
}

MinCostFlow::FlowResult MinCostFlow::solve(std::size_t source,
                                           std::size_t sink,
                                           std::int64_t max_flow) {
  const std::size_t n = graph_.size();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> potential(n, 0.0);  // costs nonnegative: start at 0
  FlowResult result;

  while (result.flow < max_flow) {
    // Dijkstra on reduced costs.
    std::vector<double> dist(n, kInf);
    std::vector<std::size_t> prev_node(n, n);
    std::vector<std::size_t> prev_arc(n, 0);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[source] = 0.0;
    queue.emplace(0.0, source);
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      for (std::size_t a = 0; a < graph_[u].size(); ++a) {
        const Arc& arc = graph_[u][a];
        if (arc.capacity <= 0) continue;
        const double reduced =
            arc.cost + potential[u] - potential[arc.to];
        if (dist[u] + reduced < dist[arc.to] - 1e-15) {
          dist[arc.to] = dist[u] + reduced;
          prev_node[arc.to] = u;
          prev_arc[arc.to] = a;
          queue.emplace(dist[arc.to], arc.to);
        }
      }
    }
    if (dist[sink] == kInf) break;  // no augmenting path

    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }

    // Bottleneck along the path.
    std::int64_t push = max_flow - result.flow;
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_arc[v]].capacity);
    }
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      Arc& arc = graph_[prev_node[v]][prev_arc[v]];
      arc.capacity -= push;
      graph_[v][arc.rev].capacity += push;
      result.cost += static_cast<double>(push) * arc.cost;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::residual_capacity(std::size_t id) const {
  const auto [node, slot] = edge_location_.at(id);
  return graph_[node][slot].capacity;
}

std::int64_t MinCostFlow::flow_on(std::size_t id) const {
  return initial_capacity_.at(id) - residual_capacity(id);
}

}  // namespace mpte
