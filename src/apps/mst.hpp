// Minimum spanning tree: exact Euclidean baseline and the tree-embedding
// approximation (Corollary 1.2).
//
// The embedding route: process HST internal nodes bottom-up; at each node,
// connect its children's components through representative points. The
// resulting edge set spans the data, and because any two points' Euclidean
// distance is at most their tree distance (domination), its Euclidean cost
// is at most the HST-metric MST cost — which exceeds the true MST by at
// most the distortion. The bench measures the realized ratio.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point_set.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// A spanning-tree edge between two point indices.
struct MstEdge {
  std::size_t u;
  std::size_t v;
  double length;
};

/// A spanning tree with its total Euclidean length.
struct MstResult {
  std::vector<MstEdge> edges;
  double total_length = 0.0;
};

/// Exact Euclidean MST by Prim's algorithm, O(n^2 d). The baseline.
MstResult exact_mst(const PointSet& points);

/// Approximate Euclidean MST from a tree embedding of the same points:
/// bottom-up merging through cluster representatives; edge lengths are
/// true Euclidean distances (so the result is a real spanning tree of the
/// input, only its *choice* of edges is guided by the HST).
MstResult tree_mst(const Hst& tree, const PointSet& points);

}  // namespace mpte
