// k-median over a tree embedding — the "dynamic programs on trees"
// application family of Section 1.3.3.
//
// tree_kmedian_dp solves k-median *exactly under the HST's cluster metric*
// d'(x, y) = 2 * down(lca(x, y)), where down(v) is the weight-height of
// v's subtree. On our geometrically-decaying HSTs, d' is within a factor 2
// of the true tree metric (dist_T <= d' <= 2 * dist_T), so combined with
// the embedding's expected distortion the chosen medians are an
// O(distortion)-approximate Euclidean k-median. Under d' a leaf left
// unserved in a median-free subtree is always served at the *lowest*
// ancestor that owns a median (serving higher only costs more), which
// collapses the DP to a clean O(nodes * k^2) knapsack:
//   dp[v][j] = min over child allocations summing to j (j >= 1) of
//              sum_c (j_c >= 1 ? dp[c][j_c] : leaves(c) * 2 * down(v)).
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point_set.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Result of the tree k-median DP.
struct KMedianResult {
  /// Chosen median point indices, size min(k, num_points).
  std::vector<std::size_t> medians;
  /// Optimal connection cost under the cluster metric d'.
  double tree_cost = 0.0;
};

/// Exact k-median in the HST cluster metric (medians are input points).
/// O(nodes * k^2). Requires k >= 1 (k > n is clamped to n).
KMedianResult tree_kmedian_dp(const Hst& tree, std::size_t k);

/// Connection cost of `medians` under the Euclidean metric of `points`.
double kmedian_cost(const PointSet& points,
                    const std::vector<std::size_t>& medians);

/// Exhaustive optimal Euclidean k-median (point medians) for tiny inputs —
/// the test baseline. O(C(n,k) * n * k); requires n choose k to be small.
double exact_kmedian_cost(const PointSet& points, std::size_t k);

}  // namespace mpte
