#include "apps/emd.hpp"

#include <cmath>
#include <unordered_map>

#include "apps/min_cost_flow.hpp"
#include "common/status.hpp"

namespace mpte {

double exact_emd(const PointSet& a, const PointSet& b) {
  if (a.size() != b.size()) {
    throw MpteError("exact_emd: point sets must have equal size");
  }
  if (a.dim() != b.dim()) {
    throw MpteError("exact_emd: dimension mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) return 0.0;

  // Nodes: source, n left, n right, sink.
  const std::size_t source = 0;
  const std::size_t sink = 2 * n + 1;
  MinCostFlow flow(2 * n + 2);
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, 1, 0.0);
    flow.add_edge(1 + n + i, sink, 1, 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      flow.add_edge(1 + i, 1 + n + j, 1, l2_distance(a[i], b[j]));
    }
  }
  const auto result = flow.solve(source, sink, static_cast<std::int64_t>(n));
  if (result.flow != static_cast<std::int64_t>(n)) {
    throw MpteError("exact_emd: matching incomplete");
  }
  return result.cost;
}

double exact_emd_weighted(const PointSet& a, const PointSet& b,
                          const std::vector<std::int64_t>& mass_a,
                          const std::vector<std::int64_t>& mass_b) {
  if (mass_a.size() != a.size() || mass_b.size() != b.size()) {
    throw MpteError("exact_emd_weighted: mass vector size mismatch");
  }
  if (a.dim() != b.dim()) {
    throw MpteError("exact_emd_weighted: dimension mismatch");
  }
  std::int64_t total_a = 0, total_b = 0;
  for (const std::int64_t m : mass_a) {
    if (m < 0) throw MpteError("exact_emd_weighted: negative mass");
    total_a += m;
  }
  for (const std::int64_t m : mass_b) {
    if (m < 0) throw MpteError("exact_emd_weighted: negative mass");
    total_b += m;
  }
  if (total_a != total_b) {
    throw MpteError("exact_emd_weighted: total masses differ");
  }
  if (total_a == 0) return 0.0;

  const std::size_t n = a.size(), m = b.size();
  const std::size_t source = 0;
  const std::size_t sink = n + m + 1;
  MinCostFlow flow(n + m + 2);
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, mass_a[i], 0.0);
  }
  for (std::size_t j = 0; j < m; ++j) {
    flow.add_edge(1 + n + j, sink, mass_b[j], 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (mass_a[i] == 0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      if (mass_b[j] == 0) continue;
      flow.add_edge(1 + i, 1 + n + j, std::min(mass_a[i], mass_b[j]),
                    l2_distance(a[i], b[j]));
    }
  }
  const auto result = flow.solve(source, sink, total_a);
  if (result.flow != total_a) {
    throw MpteError("exact_emd_weighted: transport incomplete");
  }
  return result.cost;
}

double tree_emd_weighted(const Hst& tree,
                         const std::vector<std::int64_t>& mass) {
  if (mass.size() != tree.num_points()) {
    throw MpteError("tree_emd_weighted: mass vector size mismatch");
  }
  std::vector<std::int64_t> imbalance(tree.num_nodes(), 0);
  double total = 0.0;
  for (std::size_t i = tree.num_nodes(); i-- > 1;) {
    const HstNode& node = tree.node(i);
    if (node.point >= 0) {
      imbalance[i] += mass[static_cast<std::size_t>(node.point)];
    }
    total += node.edge_weight *
             static_cast<double>(std::llabs(imbalance[i]));
    imbalance[static_cast<std::size_t>(node.parent)] += imbalance[i];
  }
  if (imbalance[0] != 0) {
    throw MpteError("tree_emd_weighted: masses do not balance (sum != 0)");
  }
  return total;
}

double tree_emd(const Hst& tree, const std::vector<int>& side) {
  if (side.size() != tree.num_points()) {
    throw MpteError("tree_emd: side vector size mismatch");
  }
  // Imbalance of each subtree, bottom-up; every edge carries |imbalance|.
  std::vector<std::int64_t> imbalance(tree.num_nodes(), 0);
  double total = 0.0;
  for (std::size_t i = tree.num_nodes(); i-- > 1;) {
    const HstNode& node = tree.node(i);
    if (node.point >= 0) {
      imbalance[i] += side[static_cast<std::size_t>(node.point)];
    }
    total += node.edge_weight *
             static_cast<double>(std::llabs(imbalance[i]));
    imbalance[static_cast<std::size_t>(node.parent)] += imbalance[i];
  }
  if (imbalance[0] != 0) {
    throw MpteError("tree_emd: sides do not balance (sum != 0)");
  }
  return total;
}

double hierarchy_emd(const Hierarchy& hierarchy,
                     const std::vector<int>& side) {
  if (side.size() != hierarchy.num_points()) {
    throw MpteError("hierarchy_emd: side vector size mismatch");
  }
  double total = 0.0;
  for (std::size_t level = 1; level < hierarchy.levels(); ++level) {
    std::unordered_map<std::uint64_t, std::int64_t> imbalance;
    for (std::size_t i = 0; i < side.size(); ++i) {
      imbalance[hierarchy.cluster_of_point[level][i]] += side[i];
    }
    std::int64_t root_check = 0;
    for (const auto& [id, im] : imbalance) {
      total += hierarchy.edge_weight[level] *
               static_cast<double>(std::llabs(im));
      root_check += im;
    }
    if (root_check != 0) {
      throw MpteError("hierarchy_emd: sides do not balance (sum != 0)");
    }
  }
  return total;
}

double tree_emd_split(const Hst& tree, std::size_t a_count) {
  std::vector<int> side(tree.num_points());
  for (std::size_t i = 0; i < side.size(); ++i) {
    side[i] = i < a_count ? 1 : -1;
  }
  return tree_emd(tree, side);
}

}  // namespace mpte
