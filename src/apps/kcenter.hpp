// k-center through the tree embedding, with the Gonzalez 2-approximation
// as the exact-side baseline.
//
// k-center asks for k centers minimizing the maximum point-to-center
// distance. On an HST the answer is structural: take the deepest level at
// which the hierarchy has at most k clusters; one representative per
// cluster covers every point within that level's subtree diameter bound.
// Domination + expected distortion turn that bound into an
// O(distortion)-approximation in the original metric. The classic
// farthest-point traversal (Gonzalez) gives the 2-approx baseline the
// bench compares against.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point_set.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// A k-center solution: chosen centers and the realized covering radius
/// (max distance from any point to its nearest center, Euclidean).
struct KCenterResult {
  std::vector<std::size_t> centers;
  double radius = 0.0;
};

/// Gonzalez' farthest-point 2-approximation, O(n k d). The baseline.
KCenterResult gonzalez_kcenter(const PointSet& points, std::size_t k);

/// Tree route: walk levels top-down to the deepest antichain of <= k
/// subtrees (greedily expanding the widest node while the count stays
/// <= k), take one representative per subtree. The realized radius is
/// evaluated in the Euclidean metric of `points`.
KCenterResult tree_kcenter(const Hst& tree, const PointSet& points,
                           std::size_t k);

/// Covering radius of an arbitrary center set (max-min distance).
double covering_radius(const PointSet& points,
                       const std::vector<std::size_t>& centers);

}  // namespace mpte
