#include "apps/kcenter.hpp"

#include <limits>
#include <queue>

#include "common/status.hpp"

namespace mpte {

double covering_radius(const PointSet& points,
                       const std::vector<std::size_t>& centers) {
  if (centers.empty()) throw MpteError("covering_radius: no centers");
  double worst = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const std::size_t c : centers) {
      best = std::min(best, l2_distance(points[i], points[c]));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

KCenterResult gonzalez_kcenter(const PointSet& points, std::size_t k) {
  if (k == 0 || points.empty()) {
    throw MpteError("gonzalez_kcenter: need k >= 1 and points");
  }
  k = std::min(k, points.size());
  KCenterResult result;
  result.centers.push_back(0);
  std::vector<double> nearest(points.size(),
                              std::numeric_limits<double>::infinity());
  while (result.centers.size() < k) {
    const std::size_t latest = result.centers.back();
    std::size_t farthest = 0;
    double farthest_dist = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest[i] =
          std::min(nearest[i], l2_distance(points[i], points[latest]));
      if (nearest[i] > farthest_dist) {
        farthest_dist = nearest[i];
        farthest = i;
      }
    }
    if (farthest_dist == 0.0) break;  // fewer than k distinct points
    result.centers.push_back(farthest);
  }
  result.radius = covering_radius(points, result.centers);
  return result;
}

KCenterResult tree_kcenter(const Hst& tree, const PointSet& points,
                           std::size_t k) {
  if (k == 0) throw MpteError("tree_kcenter: need k >= 1");
  if (tree.num_points() != points.size()) {
    throw MpteError("tree_kcenter: tree/point count mismatch");
  }
  // Weight-height below each node: the subtree's tree-metric radius bound.
  std::vector<double> down(tree.num_nodes(), 0.0);
  for (std::size_t i = tree.num_nodes(); i-- > 1;) {
    const auto parent = static_cast<std::size_t>(tree.node(i).parent);
    down[parent] =
        std::max(down[parent], down[i] + tree.node(i).edge_weight);
  }

  // Phase 1 — level cut: the hierarchy's antichain at level L is the set
  // of nodes with level <= L and every child past L (leaves included).
  // Its size only grows with L (laminar refinement), so take the deepest
  // level whose antichain still fits in k. This is robust to bursty
  // branching: a node with many children just pins the cut one level up.
  const std::size_t nodes = tree.num_nodes();
  std::vector<std::uint32_t> child_min_level(
      nodes, std::numeric_limits<std::uint32_t>::max());
  std::uint32_t max_level = 0;
  for (std::size_t i = 1; i < nodes; ++i) {
    const auto parent = static_cast<std::size_t>(tree.node(i).parent);
    child_min_level[parent] =
        std::min(child_min_level[parent], tree.node(i).level);
    max_level = std::max(max_level, tree.node(i).level);
  }
  const std::size_t slack_budget = std::min(points.size(), 8 * k);
  const auto cut_nodes = [&](std::uint32_t level) {
    std::vector<std::size_t> cut;
    for (std::size_t i = 0; i < nodes; ++i) {
      if (tree.node(i).level <= level && child_min_level[i] > level) {
        cut.push_back(i);
        if (cut.size() > slack_budget) break;  // over budget; back off
      }
    }
    return cut;
  };
  // Allow the cut some slack (up to 8k clusters): deeper cuts have far
  // smaller cluster diameters, and phase 2 condenses the representatives
  // back to k.
  std::vector<std::size_t> frontier{tree.root()};
  for (std::uint32_t level = 0; level <= max_level; ++level) {
    auto cut = cut_nodes(level);
    if (cut.size() > slack_budget) break;
    frontier = std::move(cut);
  }

  // Phase 2 — condense: one representative per frontier cluster, then
  // Gonzalez over the representatives picks the k centers. Each cluster
  // is within its diameter bound of its representative, so the realized
  // radius is (rep-set 2-approx radius) + O(cluster diameter) — the
  // standard coreset composition.
  const auto representative = [&](std::size_t node) {
    while (tree.node(node).point < 0) {
      node = tree.children(node).front();
    }
    return static_cast<std::size_t>(tree.node(node).point);
  };
  std::vector<std::size_t> reps;
  reps.reserve(frontier.size());
  for (const std::size_t node : frontier) {
    reps.push_back(representative(node));
  }

  KCenterResult result;
  if (reps.size() <= k) {
    result.centers = std::move(reps);
  } else {
    const PointSet rep_points = points.select(reps);
    const KCenterResult reduced = gonzalez_kcenter(rep_points, k);
    result.centers.reserve(reduced.centers.size());
    for (const std::size_t local : reduced.centers) {
      result.centers.push_back(reps[local]);
    }
  }
  result.radius = covering_radius(points, result.centers);
  return result;
}

}  // namespace mpte
