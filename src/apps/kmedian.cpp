#include "apps/kmedian.hpp"

#include <algorithm>
#include <limits>

#include "common/status.hpp"

namespace mpte {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

KMedianResult tree_kmedian_dp(const Hst& tree, std::size_t k) {
  if (k == 0) throw MpteError("tree_kmedian_dp: k must be >= 1");
  const std::size_t nodes = tree.num_nodes();
  const std::size_t n = tree.num_points();
  k = std::min(k, n);

  // down[v]: weight-height of v's subtree (children follow parents).
  std::vector<double> down(nodes, 0.0);
  for (std::size_t i = nodes; i-- > 1;) {
    const auto parent = static_cast<std::size_t>(tree.node(i).parent);
    down[parent] =
        std::max(down[parent], down[i] + tree.node(i).edge_weight);
  }

  // dp[v] has k+1 entries; dp[v][0] is implicit (cost 0, all leaves
  // pending) and dp[v][j>=1] is the exact cost with all of v's leaves
  // served inside v. choice[v][j] records per-child allocations for
  // extraction.
  std::vector<std::vector<double>> dp(nodes,
                                      std::vector<double>(k + 1, kInf));
  std::vector<std::vector<std::vector<std::size_t>>> choice(nodes);

  for (std::size_t v = nodes; v-- > 0;) {
    choice[v].assign(k + 1, {});
    const HstNode& node = tree.node(v);
    if (node.point >= 0) {
      dp[v][0] = 0.0;  // pending leaf
      if (k >= 1) dp[v][1] = 0.0;
      continue;
    }
    const auto& kids = tree.children(v);
    const double serve_here = 2.0 * down[v];
    // Knapsack over children: best[j] = min cost allocating j medians to
    // the prefix of children, pending leaves of median-free children
    // charged at this node.
    std::vector<double> best(k + 1, kInf);
    std::vector<std::vector<std::size_t>> alloc(k + 1);
    best[0] = 0.0;
    for (const std::uint32_t c : kids) {
      std::vector<double> next(k + 1, kInf);
      std::vector<std::vector<std::size_t>> next_alloc(k + 1);
      const double skip_cost =
          static_cast<double>(tree.node(c).subtree_size) * serve_here;
      for (std::size_t have = 0; have <= k; ++have) {
        if (best[have] == kInf) continue;
        // Child gets 0 medians: its leaves pay serve_here each.
        if (best[have] + skip_cost < next[have]) {
          next[have] = best[have] + skip_cost;
          next_alloc[have] = alloc[have];
          next_alloc[have].push_back(0);
        }
        // Child gets jc >= 1 medians.
        const std::size_t cap =
            std::min<std::size_t>(k - have, tree.node(c).subtree_size);
        for (std::size_t jc = 1; jc <= cap; ++jc) {
          if (dp[c][jc] == kInf) continue;
          const double cost = best[have] + dp[c][jc];
          if (cost < next[have + jc]) {
            next[have + jc] = cost;
            next_alloc[have + jc] = alloc[have];
            next_alloc[have + jc].push_back(jc);
          }
        }
      }
      best = std::move(next);
      alloc = std::move(next_alloc);
    }
    dp[v][0] = 0.0;
    for (std::size_t j = 1; j <= k; ++j) {
      dp[v][j] = best[j];
      choice[v][j] = std::move(alloc[j]);
    }
  }

  // Extraction.
  KMedianResult result;
  result.tree_cost = dp[tree.root()][k];
  std::vector<std::pair<std::size_t, std::size_t>> stack{{tree.root(), k}};
  while (!stack.empty()) {
    const auto [v, j] = stack.back();
    stack.pop_back();
    if (j == 0) continue;
    const HstNode& node = tree.node(v);
    if (node.point >= 0) {
      result.medians.push_back(static_cast<std::size_t>(node.point));
      continue;
    }
    const auto& kids = tree.children(v);
    const auto& allocation = choice[v][j];
    for (std::size_t c = 0; c < kids.size(); ++c) {
      if (allocation[c] > 0) stack.emplace_back(kids[c], allocation[c]);
    }
  }
  std::sort(result.medians.begin(), result.medians.end());
  return result;
}

double kmedian_cost(const PointSet& points,
                    const std::vector<std::size_t>& medians) {
  if (medians.empty()) throw MpteError("kmedian_cost: no medians");
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = kInf;
    for (const std::size_t m : medians) {
      best = std::min(best, l2_distance(points[i], points[m]));
    }
    total += best;
  }
  return total;
}

double exact_kmedian_cost(const PointSet& points, std::size_t k) {
  const std::size_t n = points.size();
  if (k == 0 || k > n) {
    throw MpteError("exact_kmedian_cost: need 1 <= k <= n");
  }
  // Enumerate k-subsets via the standard lexicographic combination walk.
  std::vector<std::size_t> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  double best = kInf;
  for (;;) {
    best = std::min(best, kmedian_cost(points, combo));
    // Advance.
    std::size_t i = k;
    while (i-- > 0) {
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return best;
    }
  }
}

}  // namespace mpte
