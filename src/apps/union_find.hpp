// Disjoint-set union — substrate for MST construction and clustering.
#pragma once

#include <cstddef>
#include <vector>

namespace mpte {

/// Union–find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b);

  /// True iff a and b share a set.
  bool connected(std::size_t a, std::size_t b);

  /// Size of x's set.
  std::size_t size_of(std::size_t x);

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace mpte
