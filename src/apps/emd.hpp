// Earth-Mover distance: exact min-cost-flow baseline and the
// tree-embedding approximation (Corollary 1.3).
//
// For equal-size point multisets A and B, EMD is the min-cost perfect
// matching under Euclidean costs. On a tree embedding of A ∪ B it
// collapses to a closed form: route all mass along tree paths; every edge
// carries exactly |#A below − #B below| units, so
//   EMD_T = sum_e weight(e) * |imbalance_below(e)|,
// computable in one bottom-up sweep. Domination gives EMD_T >= EMD, and
// expected distortion bounds the ratio — the E9 bench measures it.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point_set.hpp"
#include "partition/hybrid_partition.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Exact EMD between equal-size point sets (min-cost perfect matching via
/// successive shortest paths). O(n^3 log n)-ish; bench-scale only.
double exact_emd(const PointSet& a, const PointSet& b);

/// Exact EMD between weighted point multisets: mass_a[i] units at a[i],
/// mass_b[j] at b[j], sum(mass_a) == sum(mass_b) (transportation problem,
/// solved as min-cost flow with capacities = masses).
double exact_emd_weighted(const PointSet& a, const PointSet& b,
                          const std::vector<std::int64_t>& mass_a,
                          const std::vector<std::int64_t>& mass_b);

/// Tree EMD on an embedding of the concatenated set A ∪ B: `side[i]` is
/// +1 for points of A and -1 for points of B (sum must be 0). One O(nodes)
/// sweep.
double tree_emd(const Hst& tree, const std::vector<int>& side);

/// Weighted tree EMD: signed mass per embedded point (positive = supply,
/// negative = demand; must sum to 0). Every tree edge carries exactly the
/// net mass below it.
double tree_emd_weighted(const Hst& tree,
                         const std::vector<std::int64_t>& mass);

/// Convenience: embeds nothing — given a tree over the concatenation
/// [a..., b...] (a.size() == b.size()), computes tree_emd with the
/// canonical sides.
double tree_emd_split(const Hst& tree, std::size_t a_count);

/// Tree EMD evaluated directly on an (unpruned) Hierarchy:
/// sum over levels and clusters of edge_weight[level] * |imbalance|.
/// This is the quantity the distributed mpc_tree_emd computes — it differs
/// from tree_emd on the pruned HST only by the chain edges below
/// singletons (a bounded geometric tail), and the two MPC/sequential
/// routes agree exactly for equal seeds (tested).
double hierarchy_emd(const Hierarchy& hierarchy,
                     const std::vector<int>& side);

}  // namespace mpte
