#include "apps/densest_ball.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace mpte {

DensestBallResult densest_ball_exact(const PointSet& points, double radius) {
  DensestBallResult best;
  best.diameter = 2.0 * radius;
  const double radius_sq = radius * radius;
  for (std::size_t c = 0; c < points.size(); ++c) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (l2_distance_squared(points[c], points[i]) <= radius_sq) ++count;
    }
    if (count > best.count) {
      best.count = count;
      best.center = c;
    }
  }
  return best;
}

DensestBallResult densest_ball_tree(const Hst& tree, double max_diameter) {
  if (max_diameter < 0.0) {
    throw MpteError("densest_ball_tree: negative diameter");
  }
  // Height in tree-metric weight below each node; children follow parents
  // in index order, so a reverse sweep sees children first.
  std::vector<double> down(tree.num_nodes(), 0.0);
  for (std::size_t i = tree.num_nodes(); i-- > 1;) {
    const HstNode& node = tree.node(i);
    const auto parent = static_cast<std::size_t>(node.parent);
    down[parent] = std::max(down[parent], down[i] + node.edge_weight);
  }

  DensestBallResult best;
  best.count = 0;
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    // Any two leaves below i are within 2*down[i] in the tree metric, and
    // by domination also in Euclidean distance.
    const double bound = 2.0 * down[i];
    if (bound > max_diameter) continue;
    const std::size_t count = tree.node(i).subtree_size;
    if (count > best.count) {
      best.count = count;
      best.center = i;
      best.diameter = bound;
    }
  }
  return best;
}

DensestBallResult hierarchy_densest_ball(const Hierarchy& hierarchy,
                                         double max_diameter) {
  if (max_diameter < 0.0) {
    throw MpteError("hierarchy_densest_ball: negative diameter");
  }
  const double sqrt_r =
      std::sqrt(static_cast<double>(hierarchy.num_buckets));
  DensestBallResult best;
  best.count = 1;  // a singleton always qualifies (diameter 0)
  best.diameter = 0.0;
  for (std::size_t level = 0; level < hierarchy.levels(); ++level) {
    const double bound = 2.0 * sqrt_r * hierarchy.scales[level];
    if (bound > max_diameter) continue;
    std::unordered_map<std::uint64_t, std::size_t> sizes;
    for (const std::uint64_t id : hierarchy.cluster_of_point[level]) {
      ++sizes[id];
    }
    for (const auto& [id, count] : sizes) {
      if (count > best.count) {
        best.count = count;
        best.diameter = bound;
      }
    }
  }
  return best;
}

}  // namespace mpte
