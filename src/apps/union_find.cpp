#include "apps/union_find.hpp"

#include <numeric>

namespace mpte {

UnionFind::UnionFind(std::size_t n) : parent_(n), size_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --sets_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t UnionFind::size_of(std::size_t x) { return size_[find(x)]; }

}  // namespace mpte
