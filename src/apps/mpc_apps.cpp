#include "apps/mpc_apps.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/mpc_stages.hpp"
#include "geometry/bounding_box.hpp"
#include "geometry/quantize.hpp"
#include "mpc/primitives.hpp"
#include "mpc/step.hpp"
#include "partition/coverage.hpp"
#include "transform/mpc_fjlt.hpp"

namespace mpte {
namespace {

using mpc::StepParams;
using mpc::Channel;
using mpc::Cluster;
using mpc::Key;
using mpc::KV;
using mpc::MachineContext;
using mpc::MachineId;
using mpc::RegisterStep;
using mpc::Step;
using mpc::StepSpec;
using mpc::ValueKey;
using detail::keys::kFail;
using detail::keys::kFailTotal;
using detail::keys::kIdx;
using detail::keys::kLinks;
using detail::keys::kNodes;
using detail::keys::kPts;

// Typed handles to the per-application cluster state.
const Key<KV> kEmdIn{"emd/in"};
const Key<KV> kEmdImbalance{"emd/imbalance"};
const ValueKey<double> kEmdPartial{"emd/partial"};
const ValueKey<double> kEmdTotal{"emd/total"};
const Key<std::int64_t> kMass{"emb/mass"};
const Key<KV> kDbIn{"db/in"};
const Key<KV> kDbCounts{"db/counts"};
const Key<KV> kMstRep{"mst/rep"};
const Key<KV> kMstLinks{"mst/links"};
const Key<KV> kMstEdges{"mst/edges"};
const Key<KV> kMstEdgesDedup{"mst/edges/dedup"};

/// Wire record of the densest-ball converge-cast: a machine's best
/// qualifying cluster size and its diameter bound.
struct BallBest {
  std::uint64_t count;
  double bound;
};

const Channel<BallBest> kBestCh{"db/best"};
const ValueKey<BallBest> kBestKey{"db/best"};

// --- registered steps -------------------------------------------------------
// Level weights and diameter bounds are recomputed worker-side from the
// ladder's defining triple (dim, num_buckets, delta) — the same
// counter-based-randomness discipline the partition stages use.

Step make_emd_label(StepParams params) {
  Deserializer d(params);
  const auto a_count = d.read<std::uint64_t>();
  return [a_count](MachineContext& ctx) {
    auto records = kNodes.get(ctx.store());
    kNodes.erase(ctx.store());
    for (KV& kv : records) {
      const std::int64_t side = kv.value < a_count ? 1 : -1;
      kv.value = static_cast<std::uint64_t>(side);
    }
    kEmdIn.set(ctx.store(), records);
  };
}

Step make_emd_label_weighted(StepParams /*params*/) {
  return [](MachineContext& ctx) {
    const auto idx = kIdx.get(ctx.store());
    const auto mass = kMass.get(ctx.store());
    std::unordered_map<std::uint64_t, std::int64_t> mass_of;
    mass_of.reserve(idx.size());
    for (std::size_t local = 0; local < idx.size(); ++local) {
      mass_of.emplace(idx[local], mass[local]);
    }
    auto records = kNodes.get(ctx.store());
    kNodes.erase(ctx.store());
    for (KV& kv : records) {
      kv.value = static_cast<std::uint64_t>(mass_of.at(kv.value));
    }
    kEmdIn.set(ctx.store(), records);
  };
}

Step make_emd_weight(StepParams params) {
  Deserializer d(params);
  const auto dim = static_cast<std::size_t>(d.read<std::uint64_t>());
  const auto num_buckets = d.read<std::uint32_t>();
  const auto delta = d.read<std::uint64_t>();
  return [dim, num_buckets, delta](MachineContext& ctx) {
    const ScaleLadder ladder = hybrid_scale_ladder(dim, num_buckets, delta);
    double partial = 0.0;
    for (const KV& kv : kEmdImbalance.get(ctx.store())) {
      const std::size_t level = detail::packed_level(kv.key);
      const auto imbalance = static_cast<std::int64_t>(kv.value);
      partial += ladder.edge_weight[level] *
                 static_cast<double>(std::llabs(imbalance));
    }
    kEmdImbalance.erase(ctx.store());
    kEmdPartial.set(ctx.store(), partial);
  };
}

Step make_densest_count_prep(StepParams /*params*/) {
  return [](MachineContext& ctx) {
    auto records = kNodes.get(ctx.store());
    kNodes.erase(ctx.store());
    for (KV& kv : records) kv.value = 1;
    kDbIn.set(ctx.store(), records);
  };
}

Step make_densest_local_best(StepParams params) {
  Deserializer d(params);
  const auto dim = static_cast<std::size_t>(d.read<std::uint64_t>());
  const auto num_buckets = d.read<std::uint32_t>();
  const auto delta = d.read<std::uint64_t>();
  const auto max_diameter_q = d.read<double>();
  return [dim, num_buckets, delta, max_diameter_q](MachineContext& ctx) {
    const ScaleLadder ladder = hybrid_scale_ladder(dim, num_buckets, delta);
    const double sqrt_r = std::sqrt(static_cast<double>(num_buckets));
    BallBest best{0, 0.0};
    for (const KV& kv : kDbCounts.get(ctx.store())) {
      const std::size_t level = detail::packed_level(kv.key);
      const double bound = 2.0 * sqrt_r * ladder.scales[level];
      if (bound > max_diameter_q) continue;
      if (kv.value > best.count) best = BallBest{kv.value, bound};
    }
    kDbCounts.erase(ctx.store());
    kBestCh.send_one(ctx, 0, best);
  };
}

Step make_densest_global_best(StepParams /*params*/) {
  return [](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    BallBest best{1, 0.0};  // a singleton always qualifies
    for (const BallBest& candidate : kBestCh.receive_raw(ctx)) {
      if (candidate.count > best.count) best = candidate;
    }
    kBestKey.set(ctx.store(), best);
  };
}

Step make_mst_route_child_reps(StepParams /*params*/) {
  return [](MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    const Channel<KV> reps_ch{kMstLinks.name};
    std::unordered_map<std::uint64_t, std::uint64_t> rep;
    for (const KV& kv : kMstRep.get(ctx.store())) {
      rep.emplace(kv.key, kv.value);
    }
    std::vector<std::vector<KV>> out(m);
    for (const KV& link : kMstLinks.get(ctx.store())) {
      const std::uint64_t child_rep = rep.at(link.key);
      out[mix64(link.value) % m].push_back(KV{link.value, child_rep});
    }
    kMstLinks.erase(ctx.store());
    for (MachineId dst = 0; dst < m; ++dst) {
      if (!out[dst].empty()) reps_ch.send(ctx, dst, out[dst]);
    }
  };
}

Step make_mst_emit_edges(StepParams /*params*/) {
  return [](MachineContext& ctx) {
    const Channel<KV> reps_ch{kMstLinks.name};
    std::unordered_map<std::uint64_t, std::uint64_t> rep;
    for (const KV& kv : kMstRep.get(ctx.store())) {
      rep.emplace(kv.key, kv.value);
    }
    kMstRep.erase(ctx.store());
    std::vector<KV> edges;
    for (const KV& record : reps_ch.receive(ctx)) {
      // record = {parent node, child rep}.
      const auto it = rep.find(record.key);
      // The root (level 0) never appears under kNodes — its
      // representative is the global min index, 0.
      const std::uint64_t parent_rep = it != rep.end() ? it->second : 0;
      if (parent_rep != record.value) {
        edges.push_back(KV{std::min(parent_rep, record.value),
                           std::max(parent_rep, record.value)});
      }
    }
    std::sort(edges.begin(), edges.end(), mpc::kv_less);
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    kMstEdges.set(ctx.store(), edges);
  };
}

const RegisterStep kRegEmdLabel{"emd/label", make_emd_label};
const RegisterStep kRegEmdLabelWeighted{"emd/label-weighted",
                                        make_emd_label_weighted};
const RegisterStep kRegEmdWeight{"emd/weight", make_emd_weight};
const RegisterStep kRegDensestCountPrep{"densest/count-prep",
                                        make_densest_count_prep};
const RegisterStep kRegDensestLocalBest{"densest/local-best",
                                        make_densest_local_best};
const RegisterStep kRegDensestGlobalBest{"densest/global-best",
                                         make_densest_global_best};
const RegisterStep kRegMstRouteChildReps{"mst/route-child-reps",
                                         make_mst_route_child_reps};
const RegisterStep kRegMstEmitEdges{"mst/emit-edges", make_mst_emit_edges};

/// Everything the shared pipeline prologue produces.
struct Prep {
  std::size_t dim = 0;
  std::uint64_t delta = 0;
  double scale_to_input = 1.0;
  detail::PartitionParams params;
  ScaleLadder ladder;
  int retries = 0;
  std::size_t rounds_before = 0;
};

/// Runs stages 1–4 (FJLT, quantize, grids, path records) with retries and
/// leaves keys::kNodes (+ optional keys::kLinks) distributed.
Result<Prep> prepare_paths(Cluster& cluster, const PointSet& points,
                           const MpcEmbedOptions& options, bool emit_links) {
  if (points.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc apps: need at least two points");
  }
  Prep prep;
  prep.rounds_before = cluster.stats().rounds();
  const std::size_t n = points.size();

  PointSet working = points;
  if (options.use_fjlt) {
    const FjltConfig config = FjltConfig::make(
        n, points.dim(), options.fjlt_xi, mix64(options.seed));
    if (config.output_dim < points.dim()) {
      working = mpc_fjlt(cluster, points, config);
    }
  }
  prep.dim = working.dim();

  prep.delta =
      options.delta > 0
          ? options.delta
          : recommended_delta(working, options.quantize_eps, 1ull << 20);
  if (prep.delta < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc apps: delta must be >= 2");
  }

  detail::scatter_points(cluster, working);
  detail::mpc_quantize(cluster, prep.dim, prep.delta,
                       options.broadcast_fanout);
  const double width = BoundingBox::of(working).width();
  prep.scale_to_input =
      width > 0.0 ? width / static_cast<double>(prep.delta - 1) : 1.0;

  prep.params.delta = prep.delta;
  prep.params.num_buckets =
      options.num_buckets > 0
          ? std::min<std::uint32_t>(options.num_buckets,
                                    static_cast<std::uint32_t>(prep.dim))
          : auto_num_buckets(n, prep.dim, options.max_bucket_dim);
  prep.params.bucket_dim = static_cast<std::uint32_t>(
      ceil_div(prep.dim, prep.params.num_buckets));
  prep.params.effective_dim =
      prep.params.bucket_dim * prep.params.num_buckets;
  prep.params.uncovered_singleton =
      options.uncovered == UncoveredPolicy::kSingleton ? 1 : 0;
  prep.ladder =
      hybrid_scale_ladder(prep.dim, prep.params.num_buckets, prep.delta);
  prep.params.num_grids =
      options.num_grids > 0
          ? options.num_grids
          : recommended_num_grids(prep.params.bucket_dim, n,
                                  prep.params.num_buckets,
                                  prep.ladder.levels, options.fail_prob);

  for (prep.retries = 0;; ++prep.retries) {
    prep.params.seed = hash_combine(
        mix64(options.seed), static_cast<std::uint64_t>(prep.retries));
    const std::uint64_t failures = detail::run_path_records_attempt(
        cluster, prep.dim, prep.params, options.broadcast_fanout,
        emit_links);
    if (failures == 0) break;
    if (prep.retries >= options.max_retries) {
      return Status(StatusCode::kCoverageFailure,
                    "mpc apps: ball partitioning left " +
                        std::to_string(failures) +
                        " (point, level, bucket) events uncovered after " +
                        std::to_string(prep.retries + 1) + " attempts");
    }
  }
  return prep;
}

/// Clears all per-run keys from every machine.
void cleanup(Cluster& cluster, std::initializer_list<std::string> keys) {
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    for (const std::string& key : keys) cluster.store(id).erase(key);
  }
}

/// Scatters a signed per-point value with the same block layout as
/// detail::scatter_points, so each machine holds the values of exactly its
/// own points (keyed by global index in "emb/idx").
void scatter_point_values(Cluster& cluster, const Key<std::int64_t>& key,
                          const std::vector<std::int64_t>& values) {
  // Host-side write: suppressed while fast-forwarding a restored run, like
  // every other scatter (the apps recover by restart, so this only matters
  // if a caller resumes a cluster mid-pipeline by hand).
  if (cluster.fast_forwarding()) return;
  const std::size_t m = cluster.num_machines();
  const std::size_t block = ceil_div(values.size(), m);
  for (MachineId id = 0; id < m; ++id) {
    const std::size_t begin = std::min(values.size(), id * block);
    const std::size_t end = std::min(values.size(), begin + block);
    key.set(cluster.store(id),
            std::vector<std::int64_t>(values.begin() + begin,
                                      values.begin() + end));
  }
}

/// Shared tail of both EMD variants: reduce per-cluster imbalances, weight
/// by level, converge-cast, read out, clean up. The caller must have left
/// signed per-record values under "emd/in".
MpcEmdResult finish_emd(Cluster& cluster, const Prep& prep) {
  mpc::reduce_kv_sum(cluster, kEmdIn.name, kEmdImbalance.name);

  Serializer weight;
  weight.write(static_cast<std::uint64_t>(prep.dim));
  weight.write(prep.params.num_buckets);
  weight.write(prep.delta);
  cluster.run_round(StepSpec("emd/weight", std::move(weight)));

  mpc::sum_double(cluster, kEmdPartial.name, kEmdTotal.name, 0);

  MpcEmdResult result;
  result.emd = kEmdTotal.get(cluster.store(0)) * prep.scale_to_input;
  result.retries_used = prep.retries;
  result.rounds_used = cluster.stats().rounds() - prep.rounds_before;
  cleanup(cluster, {kIdx.name, kPts.name, kFail.name, kFailTotal.name,
                    kMass.name, kEmdPartial.name, kEmdTotal.name});
  return result;
}

}  // namespace

Result<MpcEmdResult> mpc_tree_emd(Cluster& cluster, const PointSet& a,
                                  const PointSet& b,
                                  const MpcEmbedOptions& options) {
  if (a.size() != b.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_tree_emd: sides must have equal size");
  }
  if (a.dim() != b.dim()) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_tree_emd: dimension mismatch");
  }
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);

  auto prep = prepare_paths(cluster, all, options, /*emit_links=*/false);
  if (!prep.ok()) return prep.status();

  // Side-label the path records: +1 for points of a, -1 for points of b
  // (two's-complement u64 so the KV sum reduction computes signed sums).
  Serializer label;
  label.write(static_cast<std::uint64_t>(a.size()));
  cluster.run_round(StepSpec("emd/label", std::move(label)));

  return finish_emd(cluster, *prep);
}

Result<MpcEmdResult> mpc_tree_emd_weighted(
    Cluster& cluster, const PointSet& a, const PointSet& b,
    const std::vector<std::int64_t>& mass_a,
    const std::vector<std::int64_t>& mass_b,
    const MpcEmbedOptions& options) {
  if (mass_a.size() != a.size() || mass_b.size() != b.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_tree_emd_weighted: mass vector size mismatch");
  }
  if (a.dim() != b.dim()) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_tree_emd_weighted: dimension mismatch");
  }
  std::int64_t total = 0;
  std::vector<std::int64_t> signed_mass;
  signed_mass.reserve(mass_a.size() + mass_b.size());
  for (const std::int64_t m : mass_a) {
    if (m < 0) {
      return Status(StatusCode::kInvalidArgument,
                    "mpc_tree_emd_weighted: negative mass");
    }
    total += m;
    signed_mass.push_back(m);
  }
  for (const std::int64_t m : mass_b) {
    if (m < 0) {
      return Status(StatusCode::kInvalidArgument,
                    "mpc_tree_emd_weighted: negative mass");
    }
    total -= m;
    signed_mass.push_back(-m);
  }
  if (total != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_tree_emd_weighted: total masses differ");
  }

  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);

  auto prep = prepare_paths(cluster, all, options, /*emit_links=*/false);
  if (!prep.ok()) return prep.status();

  // Distribute the masses with the points' block layout (they are part of
  // the distributed input), then label each record with its point's mass.
  scatter_point_values(cluster, kMass, signed_mass);
  cluster.run_round(StepSpec("emd/label-weighted"));

  return finish_emd(cluster, *prep);
}

Result<MpcDensestBallResult> mpc_densest_ball(
    Cluster& cluster, const PointSet& points, double max_diameter,
    const MpcEmbedOptions& options) {
  if (max_diameter < 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  "mpc_densest_ball: negative diameter");
  }
  auto prep = prepare_paths(cluster, points, options, /*emit_links=*/false);
  if (!prep.ok()) return prep.status();
  const double max_diameter_q = max_diameter / prep->scale_to_input;

  // Per-cluster point counts.
  cluster.run_round(StepSpec("densest/count-prep"));
  mpc::reduce_kv_sum(cluster, kDbIn.name, kDbCounts.name);

  // Local best among qualifying levels, converge-cast to rank 0.
  Serializer local_best;
  local_best.write(static_cast<std::uint64_t>(prep->dim));
  local_best.write(prep->params.num_buckets);
  local_best.write(prep->delta);
  local_best.write(max_diameter_q);
  cluster.run_round(StepSpec("densest/local-best", std::move(local_best)));
  cluster.run_round(StepSpec("densest/global-best"));

  MpcDensestBallResult result;
  {
    const BallBest best = kBestKey.get(cluster.store(0));
    result.count = best.count;
    result.diameter = best.bound * prep->scale_to_input;
  }
  // The root cluster (level 0, all n points) is not in the path records;
  // it qualifies whenever its diameter bound fits.
  const double sqrt_r =
      std::sqrt(static_cast<double>(prep->params.num_buckets));
  const double root_bound = 2.0 * sqrt_r * prep->ladder.scales[0];
  if (root_bound <= max_diameter_q && points.size() > result.count) {
    result.count = points.size();
    result.diameter = root_bound * prep->scale_to_input;
  }
  result.retries_used = prep->retries;
  result.rounds_used = cluster.stats().rounds() - prep->rounds_before;
  cleanup(cluster, {kIdx.name, kPts.name, kFail.name, kFailTotal.name,
                    kBestKey.name});
  return result;
}

Result<MpcMstResult> mpc_tree_mst(Cluster& cluster, const PointSet& points,
                                  const MpcEmbedOptions& options) {
  auto prep = prepare_paths(cluster, points, options, /*emit_links=*/true);
  if (!prep.ok()) return prep.status();

  // Representative (min point index) per cluster; child->parent links
  // land on the same machines (same key hashing).
  mpc::reduce_kv_min(cluster, kNodes.name, kMstRep.name);
  mpc::dedup_kv(cluster, kLinks.name, kMstLinks.name);

  // Route each link's child-representative to the parent's machine.
  cluster.run_round(StepSpec("mst/route-child-reps"));

  // Pair child reps with the parent's rep; emit connecting edges.
  cluster.run_round(StepSpec("mst/emit-edges"));

  mpc::dedup_kv(cluster, kMstEdges.name, kMstEdgesDedup.name);

  // Output readout: the distributed edge list, lengths evaluated against
  // the original points.
  MpcMstResult result;
  const auto edges = mpc::gather_vector<KV>(cluster, kMstEdgesDedup.name);
  result.edges.reserve(edges.size());
  for (const KV& edge : edges) {
    const double length = l2_distance(points[edge.key], points[edge.value]);
    result.edges.push_back(MstEdge{static_cast<std::size_t>(edge.key),
                                   static_cast<std::size_t>(edge.value),
                                   length});
    result.total_length += length;
  }
  result.retries_used = prep->retries;
  result.rounds_used = cluster.stats().rounds() - prep->rounds_before;
  cleanup(cluster, {kIdx.name, kPts.name, kFail.name, kFailTotal.name,
                    kMstEdgesDedup.name});
  return result;
}

}  // namespace mpte
