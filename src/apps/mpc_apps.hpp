// Fully distributed Corollary 1 applications.
//
// Corollary 1 is an *MPC* statement: O(1)-round algorithms for densest
// ball, minimum spanning tree, and Earth-Mover distance. These entry
// points run the shared pipeline stages (optional MPC FJLT, distributed
// quantization, grid broadcast, local path computation — core/mpc_stages)
// and then consume the distributed (level, cluster)-keyed path records
// with one or two shuffles each, never assembling the tree on one machine:
//
//   * EMD      — reduce per-cluster side imbalance, locally weight by the
//                level's edge weight, converge-cast the sum.
//   * densest  — reduce per-cluster counts, keep the best cluster whose
//     ball       Lemma 1 diameter bound fits, converge-cast the max.
//   * MST      — elect a representative (min point index) per cluster,
//                join child and parent representatives by one routed
//                round, emit connecting edges; host reads out the edge
//                list (the output), lengths evaluated in input space.
//
// All three inherit Theorem 1's O(1) rounds and fully scalable space, and
// agree exactly (same seeds) with their sequential Hierarchy-based
// counterparts in apps/emd.hpp and apps/densest_ball.hpp — tested.
#pragma once

#include "apps/mst.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/point_set.hpp"
#include "mpc/cluster.hpp"

namespace mpte {

/// Result of the distributed tree EMD.
struct MpcEmdResult {
  /// EMD under the hierarchy tree metric, in input units.
  double emd = 0.0;
  std::size_t rounds_used = 0;
  int retries_used = 0;
};

/// Distributed EMD between equal-size point sets `a` and `b`
/// (Corollary 1.3). Embeds a ∪ b once and routes all mass along the
/// hierarchy. Options as for mpc_embed.
Result<MpcEmdResult> mpc_tree_emd(mpc::Cluster& cluster, const PointSet& a,
                                  const PointSet& b,
                                  const MpcEmbedOptions& options);

/// Weighted (transportation) variant: mass_a[i] units of supply at a[i],
/// mass_b[j] of demand at b[j]; totals must agree. The masses are part of
/// the distributed input (scattered with the points); everything else is
/// the same constant-round reduction.
Result<MpcEmdResult> mpc_tree_emd_weighted(
    mpc::Cluster& cluster, const PointSet& a, const PointSet& b,
    const std::vector<std::int64_t>& mass_a,
    const std::vector<std::int64_t>& mass_b,
    const MpcEmbedOptions& options);

/// Result of the distributed densest ball.
struct MpcDensestBallResult {
  /// Points in the best cluster.
  std::size_t count = 0;
  /// Lemma 1 diameter bound of that cluster, in input units.
  double diameter = 0.0;
  std::size_t rounds_used = 0;
  int retries_used = 0;
};

/// Distributed densest ball (Corollary 1.1): the largest hierarchy
/// cluster whose diameter bound is <= max_diameter (input units).
Result<MpcDensestBallResult> mpc_densest_ball(
    mpc::Cluster& cluster, const PointSet& points, double max_diameter,
    const MpcEmbedOptions& options);

/// Result of the distributed MST.
struct MpcMstResult {
  /// Spanning edges between input point indices; lengths are Euclidean in
  /// input units (evaluated at readout).
  std::vector<MstEdge> edges;
  double total_length = 0.0;
  std::size_t rounds_used = 0;
  int retries_used = 0;
};

/// Distributed approximate Euclidean MST (Corollary 1.2) via per-cluster
/// representatives.
Result<MpcMstResult> mpc_tree_mst(mpc::Cluster& cluster,
                                  const PointSet& points,
                                  const MpcEmbedOptions& options);

}  // namespace mpte
