// Densest ball: exact baseline and the tree-embedding bicriteria
// approximation (Corollary 1.1).
//
// Given a target diameter D, the densest ball problem asks for the ball of
// diameter D containing the most points. An (alpha, beta)-approximation
// finds a ball with at least alpha times the optimal count whose diameter
// may stretch to beta*D. On a tree embedding, every cluster at the level
// whose diameter bound is ~D is a candidate ball: the densest such cluster
// contains (in expectation over trees) nearly the optimal count, with the
// diameter blow-up absorbing the distortion. The baseline searches balls
// centered at input points.
#pragma once

#include <cstddef>

#include "geometry/point_set.hpp"
#include "partition/hybrid_partition.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// A candidate ball: a center point index (or a tree node), the number of
/// points it holds, and its realized diameter bound.
struct DensestBallResult {
  /// Point count inside.
  std::size_t count = 0;
  /// For the exact baseline: the center point index. For the tree version:
  /// the HST node index of the chosen cluster.
  std::size_t center = 0;
  /// Diameter within which the counted points provably lie.
  double diameter = 0.0;
};

/// Exact (point-centered) baseline: the densest ball of *radius* D/2
/// centered at an input point — the standard polynomial relaxation, which
/// is itself within factor 1 of the optimum count at diameter 2D... more
/// precisely: any diameter-D ball lies inside the radius-D ball centered
/// at one of its member points, so max over point-centered radius-D balls
/// upper-bounds the optimum; with radius D/2 it lower-bounds it. Both
/// flavors are exposed via `radius`.
DensestBallResult densest_ball_exact(const PointSet& points, double radius);

/// Tree route: the largest cluster among HST nodes whose subtree diameter
/// bound (twice the weight from the node down to its deepest leaf) is at
/// most `max_diameter`. Returns count and that bound.
DensestBallResult densest_ball_tree(const Hst& tree, double max_diameter);

/// Densest ball evaluated directly on an (unpruned) Hierarchy via the
/// level-wise Lemma 1 diameter bound 2*sqrt(r)*w_level: the largest
/// cluster at any level whose bound is <= max_diameter (falling back to a
/// singleton if none qualifies). This is the quantity the distributed
/// mpc_densest_ball computes; the two routes agree exactly for equal
/// seeds (tested). `center` is unused (no single tree node exists here).
DensestBallResult hierarchy_densest_ball(const Hierarchy& hierarchy,
                                         double max_diameter);

}  // namespace mpte
