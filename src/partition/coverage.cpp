#include "partition/coverage.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "common/status.hpp"

namespace mpte {

std::size_t recommended_num_grids(std::size_t bucket_dim,
                                  std::size_t n_points, std::size_t buckets,
                                  std::size_t levels, double fail_prob) {
  if (fail_prob <= 0.0 || fail_prob >= 1.0) {
    throw MpteError("recommended_num_grids: fail_prob must be in (0, 1)");
  }
  if (bucket_dim == 0) {
    throw MpteError("recommended_num_grids: bucket_dim must be >= 1");
  }
  const double p = ball_grid_cover_probability(
      static_cast<unsigned>(bucket_dim));
  const double events = static_cast<double>(std::max<std::size_t>(
                            1, n_points * buckets * levels));
  // (1-p)^U * events <= fail_prob  =>  U >= ln(events/fail_prob)/(-ln(1-p)).
  const double u = std::log(events / fail_prob) / (-std::log1p(-p));
  // Saturate: for bucket dims past ~12 the count exceeds anything
  // representable or runnable — exactly the infeasibility that motivates
  // hybridization. Callers hitting the cap get a deterministic huge value
  // rather than cast UB.
  constexpr double kCap = 1e15;
  return static_cast<std::size_t>(std::clamp(std::ceil(u), 1.0, kCap));
}

double lemma7_grid_bound(std::size_t bucket_dim, std::size_t buckets,
                         std::size_t levels, double fail_prob) {
  const double k = static_cast<double>(std::max<std::size_t>(bucket_dim, 2));
  const double exponent = k * std::log2(k);
  return std::exp2(exponent) *
         std::log(static_cast<double>(buckets * levels) / fail_prob);
}

double coverage_failure_probability(std::size_t bucket_dim,
                                    std::size_t n_points, std::size_t grids) {
  const double p = ball_grid_cover_probability(
      static_cast<unsigned>(bucket_dim));
  const double miss =
      std::exp(static_cast<double>(grids) * std::log1p(-p));
  return std::min(1.0, static_cast<double>(n_points) * miss);
}

}  // namespace mpte
