// Random shifted grid partitioning (Arora [9]; Definition 1 of the paper).
//
// One level partitions space into axis-aligned cells of width w, the whole
// grid translated by a uniform shift in [0,w)^d. It is the r = d extreme of
// hybrid partitioning (with touching balls) and the O(log^2 n)-distortion
// baseline hybrid partitioning beats.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point_set.hpp"

namespace mpte {

/// One randomly shifted grid at a fixed scale; shifts are counter-based
/// functions of the seed, exactly like BallGrids.
class ShiftedGrid {
 public:
  ShiftedGrid(std::size_t dim, double cell_width, std::uint64_t seed);

  std::size_t dim() const { return dim_; }
  double cell_width() const { return cell_width_; }

  /// Shift component t, uniform in [0, cell_width); a pure function of
  /// (seed, t), precomputed into a table at construction.
  double shift(std::size_t t) const { return shifts_[t]; }

  /// Hash id of the cell containing p.
  std::uint64_t cell_id(std::span<const double> p) const;

 private:
  std::size_t dim_;
  double cell_width_;
  double inv_cell_;
  std::uint64_t seed_;
  /// Precomputed shift vector (a cache; identity is still (seed, w, dim)).
  std::vector<double> shifts_;
};

/// Assigns every point its cell id under one shifted grid.
std::vector<std::uint64_t> grid_partition(const PointSet& points,
                                          const ShiftedGrid& grid);

}  // namespace mpte
