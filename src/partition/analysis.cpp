#include "partition/analysis.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

namespace mpte {

std::vector<LevelStats> analyze_hierarchy(const Hierarchy& hierarchy) {
  std::vector<LevelStats> stats;
  stats.reserve(hierarchy.levels());
  const double n = static_cast<double>(hierarchy.num_points());
  for (std::size_t level = 0; level < hierarchy.levels(); ++level) {
    std::unordered_map<std::uint64_t, std::size_t> sizes;
    for (const std::uint64_t id : hierarchy.cluster_of_point[level]) {
      ++sizes[id];
    }
    LevelStats s;
    s.level = level;
    s.scale = hierarchy.scales[level];
    s.clusters = sizes.size();
    for (const auto& [id, count] : sizes) {
      s.largest = std::max(s.largest, count);
      if (count == 1) ++s.singletons;
      const double p = static_cast<double>(count) / n;
      s.entropy -= p * std::log(p);
    }
    stats.push_back(s);
  }
  return stats;
}

std::size_t full_shatter_level(const Hierarchy& hierarchy) {
  const auto stats = analyze_hierarchy(hierarchy);
  for (const LevelStats& s : stats) {
    if (s.largest <= 1) return s.level;
  }
  return hierarchy.levels();
}

std::string hierarchy_report(const Hierarchy& hierarchy) {
  std::ostringstream out;
  out << "level    scale      clusters  largest  singletons  entropy\n";
  for (const LevelStats& s : analyze_hierarchy(hierarchy)) {
    out << ' ' << s.level << '\t' << s.scale << '\t' << s.clusters << '\t'
        << s.largest << '\t' << s.singletons << '\t' << s.entropy << '\n';
  }
  return out.str();
}

}  // namespace mpte
