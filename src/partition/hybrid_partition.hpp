// Hybrid partitioning (Definition 3 / Algorithm 1) and the hierarchical
// drivers producing per-level cluster assignments.
//
// One hybrid level with parameters (w, r): the d dimensions are split into
// r contiguous buckets of d/r; each bucket runs an independent ball
// partitioning at scale w on the projected points; two points share a
// hybrid partition iff they share a ball in *every* bucket. r = 1 is pure
// ball partitioning; r = d (with touching balls) is grid partitioning.
//
// The hierarchy halves w per level. Cluster identity at level i is the
// hash chain of per-bucket ball ids along the whole path from the root, so
// the family of clusters is laminar by construction and equals the
// child-product construction in Algorithm 1. Scales start at
// w_1 = Delta*sqrt(d)/2 — high enough that the level-0 root's diameter
// bound covers the whole box, which is what makes the domination inequality
// (Lemma 2) hold at the first separation — and stop once the diameter
// bound 2*sqrt(r)*w drops below the minimum interpoint distance 1 of
// integer inputs, guaranteeing singleton leaves.
//
// Edge weights: the edge entering a level-i node weighs 2*sqrt(r)*w_i
// (hybrid; the within-cluster diameter bound) and sqrt(d)*w_i (grid; the
// cell diagonal). Both satisfy domination; see tree/embedding_builder.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "geometry/point_set.hpp"

namespace mpte {

/// What to do with a point no grid covered (probability <= fail_prob).
enum class UncoveredPolicy {
  /// Report StatusCode::kCoverageFailure — Theorem 1's contract; the caller
  /// retries with a fresh seed.
  kFail,
  /// Give the point a private singleton ball. Keeps the run alive at the
  /// cost of unbounded distortion for that point's pairs (practical mode).
  kSingleton,
};

/// Options for the hybrid hierarchy (and the special cases r=1, grid).
struct HybridOptions {
  /// Number of dimension buckets r in [1, d]. Dimensions are zero-padded
  /// internally so r divides the effective dimension (footnote 3).
  std::uint32_t num_buckets = 1;
  /// Coordinate bound: points must lie in [1, delta]^d (see
  /// geometry/quantize.hpp). Fixes the scale ladder and level count.
  std::uint64_t delta = 0;
  /// Root randomness; every level/bucket derives its own stream.
  std::uint64_t seed = 0;
  /// Grids per (level, bucket); 0 = auto from recommended_num_grids.
  std::size_t num_grids = 0;
  /// Target failure probability delta for auto num_grids.
  double fail_prob = 1e-6;
  UncoveredPolicy uncovered = UncoveredPolicy::kFail;
};

/// Per-level cluster assignments of a hierarchical partitioning — the
/// input to tree/embedding_builder. Level 0 is the root (all points share
/// one id); cluster ids are hash-chain values over the full path, so
/// chains continue below singleton clusters (the tree builder prunes those
/// — identically for the sequential and MPC paths).
struct Hierarchy {
  /// cluster_of_point[level][point]; level 0 .. levels().
  std::vector<std::vector<std::uint64_t>> cluster_of_point;
  /// Scale w_i per level (scales[0] is the notional root scale, unused).
  std::vector<double> scales;
  /// Weight of the tree edge *entering* a node on this level.
  std::vector<double> edge_weight;
  /// Buckets used (1 for ball, d for grid-style).
  std::uint32_t num_buckets = 1;
  /// Grids per (level, bucket) (0 for the grid method).
  std::size_t num_grids = 0;
  /// Total bytes explicit grid-shift storage would need (Lemma 8 metric).
  std::size_t explicit_grid_bytes = 0;
  /// Count of (point, level, bucket) cover misses resolved by the
  /// kSingleton policy (always 0 under kFail success).
  std::size_t uncovered_events = 0;

  std::size_t levels() const { return cluster_of_point.size(); }
  std::size_t num_points() const {
    return cluster_of_point.empty() ? 0 : cluster_of_point[0].size();
  }
};

/// The scale/weight ladder shared by the sequential and MPC hybrid
/// pipelines: w_i = w_max / 2^i with w_max = delta*sqrt(d), level count
/// chosen so the diameter bound 2*sqrt(r)*w_L < 1, and per-level edge
/// weights 2*sqrt(r)*w_i.
struct ScaleLadder {
  double w_max = 0.0;
  std::size_t levels = 0;
  /// scales[0] = w_max (root), scales[i] = w_max / 2^i, size levels+1.
  std::vector<double> scales;
  /// edge_weight[i] = weight of an edge entering a level-i node, size
  /// levels+1 (index 0 is 0).
  std::vector<double> edge_weight;
};

ScaleLadder hybrid_scale_ladder(std::size_t dim, std::uint32_t num_buckets,
                                std::uint64_t delta);

/// The ladder build_grid_hierarchy walks: w_max = 2*delta, cell width
/// halving per level until the cell diagonal sqrt(d)*w drops below 1,
/// edge weight sqrt(d)*w_i. Shared with mpte::dyn so incremental updates
/// reproduce the static levels exactly.
ScaleLadder grid_scale_ladder(std::size_t dim, std::uint64_t delta);

/// Per-level seed of the grid hierarchy's ShiftedGrid (counter-based, like
/// hybrid_grid_seed).
std::uint64_t grid_level_seed(std::uint64_t seed, std::size_t level);

/// Grid seed for (level, bucket) — the shared counter-based derivation.
std::uint64_t hybrid_grid_seed(std::uint64_t seed, std::size_t level,
                               std::uint32_t bucket);

/// Root cluster id for a run seed.
std::uint64_t hybrid_root_id(std::uint64_t seed);

/// Builds the hybrid hierarchy of Algorithm 1 over integer points in
/// [1, delta]^d. Fails with kCoverageFailure under UncoveredPolicy::kFail
/// if any level/bucket leaves a point uncovered.
Result<Hierarchy> build_hybrid_hierarchy(const PointSet& points,
                                         const HybridOptions& options);

/// Builds Arora's random-shifted-grid hierarchy (the baseline): one grid
/// per level, cell width halving from delta, edge weight sqrt(d)*w.
/// Never fails (grids always cover).
Result<Hierarchy> build_grid_hierarchy(const PointSet& points,
                                       std::uint64_t delta,
                                       std::uint64_t seed);

/// Convenience: ball partitioning hierarchy = hybrid with r = 1.
Result<Hierarchy> build_ball_hierarchy(const PointSet& points,
                                       HybridOptions options);

}  // namespace mpte
