#include "partition/ball_partition.hpp"

#include <bit>
#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace mpte {

BallGrids::BallGrids(std::size_t dim, double radius, std::size_t num_grids,
                     std::uint64_t seed)
    : dim_(dim), radius_(radius), num_grids_(num_grids), seed_(seed) {
  if (dim == 0) throw MpteError("BallGrids: dim must be >= 1");
  if (radius <= 0.0) throw MpteError("BallGrids: radius must be positive");
  if (num_grids == 0) throw MpteError("BallGrids: need at least one grid");
}

double BallGrids::shift(std::size_t grid, std::size_t t) const {
  // 53 mixed bits of hash(seed, grid, t) scaled into [0, cell_width).
  const std::uint64_t h =
      hash_combine(hash_combine(mix64(seed_ ^ 0x5ba1ull), grid), t);
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit * cell_width();
}

std::uint64_t BallGrids::assign_counted(std::span<const double> p,
                                        std::size_t* grids_scanned) const {
  if (p.size() != dim_) {
    throw MpteError("BallGrids::assign: dimension mismatch");
  }
  const double cell = cell_width();
  const double radius_sq = radius_ * radius_;
  for (std::size_t u = 0; u < num_grids_; ++u) {
    // Nearest lattice ball center of grid u: per dimension, the closest
    // point of cell * Z + shift.
    double dist_sq = 0.0;
    std::uint64_t id = mix64(seed_ ^ (0xba11ull + u));
    bool inside = true;
    for (std::size_t t = 0; t < dim_; ++t) {
      const double s = shift(u, t);
      const double z = std::round((p[t] - s) / cell);
      const double center = z * cell + s;
      const double diff = p[t] - center;
      dist_sq += diff * diff;
      if (dist_sq > radius_sq) {
        inside = false;
        break;
      }
      id = hash_combine(
          id, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(z)));
    }
    if (inside) {
      if (grids_scanned != nullptr) *grids_scanned += u + 1;
      return id == kUncovered ? mix64(id) : id;
    }
  }
  if (grids_scanned != nullptr) *grids_scanned += num_grids_;
  return kUncovered;
}

std::uint64_t BallGrids::assign(std::span<const double> p) const {
  return assign_counted(p, nullptr);
}

BallPartitionResult ball_partition(const PointSet& points,
                                   const BallGrids& grids) {
  BallPartitionResult result;
  result.ball_of_point.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t id =
        grids.assign_counted(points[i], &result.total_grids_scanned);
    if (id == kUncovered) ++result.uncovered;
    result.ball_of_point.push_back(id);
  }
  return result;
}

}  // namespace mpte
