#include "partition/ball_partition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

BallGrids::BallGrids(std::size_t dim, double radius, std::size_t num_grids,
                     std::uint64_t seed)
    : dim_(dim),
      radius_(radius),
      num_grids_(num_grids),
      seed_(seed),
      cell_(4.0 * radius),
      inv_cell_(1.0 / (4.0 * radius)),
      radius_sq_(radius * radius) {
  if (dim == 0) throw MpteError("BallGrids: dim must be >= 1");
  if (radius <= 0.0) throw MpteError("BallGrids: radius must be positive");
  if (num_grids == 0) throw MpteError("BallGrids: need at least one grid");
  // Materialize the num_grids × dim shift table once: assign() reads
  // shift(u, t) per point per dimension, and the two mix64 chains per
  // lookup dominated its inner loop. Each entry stays the same pure
  // function of (seed, u, t) it always was — this is a cache, and the
  // 32-byte (seed, radius, U, dim) description remains what travels
  // between machines (Lemma 8 accounting is unchanged). The layout is
  // grid-minor (entry (u, t) at t * num_grids + u) so the vectorized scan
  // streams consecutive grids' shifts for one dimension.
  shifts_by_dim_.resize(num_grids * dim);
  for (std::size_t u = 0; u < num_grids; ++u) {
    for (std::size_t t = 0; t < dim; ++t) {
      // 53 mixed bits of hash(seed, grid, t) scaled into [0, cell_width).
      const std::uint64_t h =
          hash_combine(hash_combine(mix64(seed_ ^ 0x5ba1ull), u), t);
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      shifts_by_dim_[t * num_grids + u] = unit * cell_;
    }
  }
}

std::uint64_t BallGrids::assign_counted(std::span<const double> p,
                                        std::size_t* grids_scanned) const {
  if (p.size() != dim_) {
    throw MpteError("BallGrids::assign: dimension mismatch");
  }
  // The dispatched kernel scans grids four per vector, accumulating each
  // grid's squared distance to its nearest lattice ball center in
  // dimension order, and reports the first covering grid.
  const std::size_t u = simd::ops().ball_first_cover(
      p.data(), dim_, shifts_by_dim_.data(), num_grids_, cell_, inv_cell_,
      radius_sq_);
  if (u == num_grids_) {
    if (grids_scanned != nullptr) *grids_scanned += num_grids_;
    return kUncovered;
  }
  if (grids_scanned != nullptr) *grids_scanned += u + 1;
  // Hash the covering ball's id from the lattice coordinates. z repeats
  // the kernel's sub → mul → round-half-even chain — three exactly-rounded
  // ops with no contraction opportunity, so it is bit-identical to the
  // z the kernel derived for grid u on every backend.
  std::uint64_t id = mix64(seed_ ^ (0xba11ull + u));
  for (std::size_t t = 0; t < dim_; ++t) {
    const double s = shifts_by_dim_[t * num_grids_ + u];
    const double z = simd::round_nearest_even((p[t] - s) * inv_cell_);
    id = hash_combine(
        id, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(z)));
  }
  return id == kUncovered ? mix64(id) : id;
}

std::uint64_t BallGrids::assign(std::span<const double> p) const {
  return assign_counted(p, nullptr);
}

BallPartitionResult ball_partition(const PointSet& points,
                                   const BallGrids& grids) {
  BallPartitionResult result;
  const std::size_t n = points.size();
  result.ball_of_point.resize(n);
  // Per-point assignments write disjoint slots; the two counters are
  // accumulated per chunk and merged in chunk order. Both are integer
  // sums, so the totals are identical at every thread count.
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(par::resolve_threads(0), n));
  std::vector<std::size_t> uncovered(chunks, 0);
  std::vector<std::size_t> scanned(chunks, 0);
  par::parallel_for_chunked(
      0, n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t id =
              grids.assign_counted(points[i], &scanned[chunk]);
          if (id == kUncovered) ++uncovered[chunk];
          result.ball_of_point[i] = id;
        }
      });
  for (std::size_t c = 0; c < chunks; ++c) {
    result.uncovered += uncovered[c];
    result.total_grids_scanned += scanned[c];
  }
  return result;
}

}  // namespace mpte
