#include "partition/ball_partition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace mpte {

BallGrids::BallGrids(std::size_t dim, double radius, std::size_t num_grids,
                     std::uint64_t seed)
    : dim_(dim), radius_(radius), num_grids_(num_grids), seed_(seed) {
  if (dim == 0) throw MpteError("BallGrids: dim must be >= 1");
  if (radius <= 0.0) throw MpteError("BallGrids: radius must be positive");
  if (num_grids == 0) throw MpteError("BallGrids: need at least one grid");
  // Materialize the num_grids × dim shift table once: assign() reads
  // shift(u, t) per point per dimension, and the two mix64 chains per
  // lookup dominated its inner loop. Each entry stays the same pure
  // function of (seed, u, t) it always was — this is a cache, and the
  // 32-byte (seed, radius, U, dim) description remains what travels
  // between machines (Lemma 8 accounting is unchanged).
  shifts_.resize(num_grids * dim);
  const double cell = cell_width();
  for (std::size_t u = 0; u < num_grids; ++u) {
    for (std::size_t t = 0; t < dim; ++t) {
      // 53 mixed bits of hash(seed, grid, t) scaled into [0, cell_width).
      const std::uint64_t h =
          hash_combine(hash_combine(mix64(seed_ ^ 0x5ba1ull), u), t);
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      shifts_[u * dim + t] = unit * cell;
    }
  }
}

std::uint64_t BallGrids::assign_counted(std::span<const double> p,
                                        std::size_t* grids_scanned) const {
  if (p.size() != dim_) {
    throw MpteError("BallGrids::assign: dimension mismatch");
  }
  const double cell = cell_width();
  const double radius_sq = radius_ * radius_;
  for (std::size_t u = 0; u < num_grids_; ++u) {
    // Nearest lattice ball center of grid u: per dimension, the closest
    // point of cell * Z + shift.
    double dist_sq = 0.0;
    std::uint64_t id = mix64(seed_ ^ (0xba11ull + u));
    bool inside = true;
    const double* shifts = shifts_.data() + u * dim_;
    for (std::size_t t = 0; t < dim_; ++t) {
      const double s = shifts[t];
      const double z = std::round((p[t] - s) / cell);
      const double center = z * cell + s;
      const double diff = p[t] - center;
      dist_sq += diff * diff;
      if (dist_sq > radius_sq) {
        inside = false;
        break;
      }
      id = hash_combine(
          id, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(z)));
    }
    if (inside) {
      if (grids_scanned != nullptr) *grids_scanned += u + 1;
      return id == kUncovered ? mix64(id) : id;
    }
  }
  if (grids_scanned != nullptr) *grids_scanned += num_grids_;
  return kUncovered;
}

std::uint64_t BallGrids::assign(std::span<const double> p) const {
  return assign_counted(p, nullptr);
}

BallPartitionResult ball_partition(const PointSet& points,
                                   const BallGrids& grids) {
  BallPartitionResult result;
  const std::size_t n = points.size();
  result.ball_of_point.resize(n);
  // Per-point assignments write disjoint slots; the two counters are
  // accumulated per chunk and merged in chunk order. Both are integer
  // sums, so the totals are identical at every thread count.
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(par::resolve_threads(0), n));
  std::vector<std::size_t> uncovered(chunks, 0);
  std::vector<std::size_t> scanned(chunks, 0);
  par::parallel_for_chunked(
      0, n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t id =
              grids.assign_counted(points[i], &scanned[chunk]);
          if (id == kUncovered) ++uncovered[chunk];
          result.ball_of_point[i] = id;
        }
      });
  for (std::size_t c = 0; c < chunks; ++c) {
    result.uncovered += uncovered[c];
    result.total_grids_scanned += scanned[c];
  }
  return result;
}

}  // namespace mpte
