// Grid-count mathematics for ball partitioning (Lemmas 6 and 7).
//
// A single random shifted grid of radius-w balls on cells of width 4w
// covers a fixed point with probability p_k = V_k(1)/4^k in k dimensions,
// so U independent grids miss it with probability (1-p_k)^U. Lemma 7's
// U = 2^{O((d/r)log(d/r))} · log(r·logDelta/delta) is the closed form of
// choosing U so that a union bound over every (point, level, bucket) event
// stays below delta; recommended_num_grids computes that exact union-bound
// count, and lemma7_grid_bound evaluates the paper's asymptotic expression
// for comparison (bench E7).
#pragma once

#include <cstddef>

namespace mpte {

/// Exact union-bound grid count: the smallest U with
/// n_points * levels * buckets * (1 - p_k)^U <= fail_prob.
/// k is the per-bucket dimension d/r. Requires fail_prob in (0, 1).
std::size_t recommended_num_grids(std::size_t bucket_dim,
                                  std::size_t n_points, std::size_t buckets,
                                  std::size_t levels, double fail_prob);

/// The paper's Lemma 7 bound 2^{k log2 k} * ln(buckets * levels /
/// fail_prob) evaluated literally (with k = bucket_dim, the exponent's
/// implied constant set to 1). For reporting alongside the exact count.
double lemma7_grid_bound(std::size_t bucket_dim, std::size_t buckets,
                         std::size_t levels, double fail_prob);

/// Probability that U grids fail to cover at least one of n_points points
/// (per level per bucket), by the union bound: min(1, n * (1-p_k)^U).
double coverage_failure_probability(std::size_t bucket_dim,
                                    std::size_t n_points, std::size_t grids);

}  // namespace mpte
