// Ball partitioning (Charikar et al. [27]; Definition 2 of the paper).
//
// A ball partitioning at scale w draws a sequence of grids G_1, G_2, ...
// of cell width 4w, each shifted by an independent uniform vector in
// [0,4w)^k, and places a ball of radius w at every lattice point. A point
// belongs to the *first* ball (in grid order) that contains it; two points
// share a partition iff they share that first ball. Balls within one grid
// cannot overlap (radius w < half the cell width 2w), and U grids cover
// everything with probability controlled by Lemmas 6–7 (see
// partition/coverage.hpp).
//
// The grid shifts are counter-based: shift component (u, t) is a pure
// function of (seed, u, t), so a "grid set" is 32 bytes of parameters —
// that is what machines exchange. (Locally each BallGrids caches the
// num_grids × dim shift table at construction so the assignment inner
// loop indexes instead of rehashing; the cache never leaves the host.)
// This is the PRG-seed form of the
// same object the paper stores explicitly (Lemma 8 space accounting);
// explicit_storage_bytes() reports what explicit storage would cost so the
// E7 bench can compare against the Lemma-8 budget. Assignment scans grids
// in order and stops at the first cover, so expected work per point is
// O(k / p_k) independent of U.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point_set.hpp"

namespace mpte {

/// Sentinel ball id for a point no grid covered.
inline constexpr std::uint64_t kUncovered = ~0ull;

/// The sequence of U shifted ball-grids used by one (level, bucket) of a
/// partitioning. Immutable once constructed.
class BallGrids {
 public:
  /// Grids of radius `radius` (cell width 4*radius) in `dim` dimensions.
  BallGrids(std::size_t dim, double radius, std::size_t num_grids,
            std::uint64_t seed);

  std::size_t dim() const { return dim_; }
  double radius() const { return radius_; }
  double cell_width() const { return cell_; }
  std::size_t num_grids() const { return num_grids_; }
  std::uint64_t seed() const { return seed_; }

  /// Shift component t of grid u, uniform in [0, cell_width); a pure
  /// function of (seed, u, t), precomputed into a table at construction
  /// (assign() reads it per point per dimension).
  double shift(std::size_t grid, std::size_t t) const {
    return shifts_by_dim_[t * num_grids_ + grid];
  }

  /// The id of the first ball containing p (hash of grid index and lattice
  /// cell), or kUncovered if no grid covers p. p.size() must equal dim().
  std::uint64_t assign(std::span<const double> p) const;

  /// Like assign, but also reports how many grids were scanned (the
  /// geometric-trials statistic benches check against 1/p_k).
  std::uint64_t assign_counted(std::span<const double> p,
                               std::size_t* grids_scanned) const;

  /// Bytes explicit shift storage would need: num_grids * dim * 8. The
  /// paper's Lemma 8 accounting charges this; the counter-based
  /// representation actually uses O(1).
  std::size_t explicit_storage_bytes() const {
    return num_grids_ * dim_ * sizeof(double);
  }

 private:
  std::size_t dim_;
  double radius_;
  std::size_t num_grids_;
  std::uint64_t seed_;
  /// Cell width (4 * radius), its reciprocal, and radius^2, precomputed so
  /// the assignment inner loop carries no per-call derivations.
  double cell_;
  double inv_cell_;
  double radius_sq_;
  /// Precomputed shift table in grid-minor (transposed) layout,
  /// shifts_by_dim_[t * num_grids_ + u] = shift(u, t), so the vectorized
  /// lattice scan — grids in the lanes — loads four consecutive grids'
  /// shifts for one dimension with a single unit-stride load. A local
  /// cache only — the object's identity (and wire form) is still the
  /// 32-byte parameter tuple.
  std::vector<double> shifts_by_dim_;
};

/// Result of ball-partitioning a point set at one scale.
struct BallPartitionResult {
  /// Per point: the first covering ball's id, or kUncovered.
  std::vector<std::uint64_t> ball_of_point;
  /// Number of uncovered points.
  std::size_t uncovered = 0;
  /// Total grids scanned over all points (work/probe statistic).
  std::size_t total_grids_scanned = 0;
};

/// Assigns every point of `points` (dimension must equal grids.dim()).
BallPartitionResult ball_partition(const PointSet& points,
                                   const BallGrids& grids);

}  // namespace mpte
