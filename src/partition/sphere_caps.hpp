// Sphere/ball sampling and the equator-band probabilities of Lemmas 4–5.
//
// The separation-probability analysis (Lemma 3 → Lemma 1) reduces to: for
// a uniformly random direction u in R^d, Pr[|u_1| <= t] = O(sqrt(d) * t).
// Lemma 4 states it for the unit sphere, Lemma 5 for the unit ball. These
// helpers sample both distributions exactly (Gaussian normalization /
// radius reweighting) and estimate the band probability empirically, so
// tests and the E2 bench can check the paper's O(sqrt(d) * D / w) shape at
// its geometric root.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mpte {

/// Uniform random point on the unit sphere S^{d-1} (normalized Gaussian).
std::vector<double> sample_unit_sphere(Rng& rng, std::size_t dim);

/// Uniform random point in the closed unit ball B^d (sphere direction
/// scaled by U^{1/d}).
std::vector<double> sample_unit_ball(Rng& rng, std::size_t dim);

/// Monte Carlo estimate of Pr[|x_1| <= band] for x uniform on the sphere
/// (on_sphere = true) or in the ball (false).
double equator_band_probability(std::size_t dim, double band,
                                std::size_t samples, std::uint64_t seed,
                                bool on_sphere);

/// The Lemma 4/5 upper-bound expression sqrt(d) * band (implied constant
/// 1; the empirical probability divided by this should be bounded by a
/// small constant uniformly over d and band).
double lemma4_bound(std::size_t dim, double band);

}  // namespace mpte
