#include "partition/hybrid_partition.hpp"

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "partition/ball_partition.hpp"
#include "partition/coverage.hpp"
#include "partition/grid_partition.hpp"

namespace mpte {
namespace {

/// Number of levels so the diameter bound `diameter_factor * w` drops
/// below 1 (the minimum distance of integer inputs): smallest L with
/// diameter_factor * w_max / 2^L < 1.
std::size_t ladder_levels(double w_max, double diameter_factor) {
  const double target = diameter_factor * w_max;
  if (target < 1.0) return 1;
  return static_cast<std::size_t>(std::floor(std::log2(target))) + 1;
}

}  // namespace

ScaleLadder grid_scale_ladder(std::size_t dim, std::uint64_t delta) {
  ScaleLadder ladder;
  const double sqrt_d = std::sqrt(static_cast<double>(dim));
  // w_1 = delta: one level-1 cell can contain the whole box.
  ladder.w_max = 2.0 * static_cast<double>(delta);
  ladder.levels = ladder_levels(ladder.w_max, sqrt_d);
  ladder.scales.push_back(ladder.w_max);
  ladder.edge_weight.push_back(0.0);
  for (std::size_t level = 1; level <= ladder.levels; ++level) {
    const double w = ladder.w_max / std::exp2(static_cast<double>(level));
    ladder.scales.push_back(w);
    ladder.edge_weight.push_back(sqrt_d * w);
  }
  return ladder;
}

std::uint64_t grid_level_seed(std::uint64_t seed, std::size_t level) {
  return hash_combine(mix64(seed ^ 0x96d1ull), level);
}

ScaleLadder hybrid_scale_ladder(std::size_t dim, std::uint32_t num_buckets,
                                std::uint64_t delta) {
  ScaleLadder ladder;
  const double sqrt_r = std::sqrt(static_cast<double>(num_buckets));
  ladder.w_max =
      static_cast<double>(delta) * std::sqrt(static_cast<double>(dim));
  ladder.levels = ladder_levels(ladder.w_max, 2.0 * sqrt_r);
  ladder.scales.push_back(ladder.w_max);
  ladder.edge_weight.push_back(0.0);
  for (std::size_t level = 1; level <= ladder.levels; ++level) {
    const double w = ladder.w_max / std::exp2(static_cast<double>(level));
    ladder.scales.push_back(w);
    ladder.edge_weight.push_back(2.0 * sqrt_r * w);
  }
  return ladder;
}

std::uint64_t hybrid_grid_seed(std::uint64_t seed, std::size_t level,
                               std::uint32_t bucket) {
  return hash_combine(hash_combine(mix64(seed ^ 0x9b1d5ull), level), bucket);
}

std::uint64_t hybrid_root_id(std::uint64_t seed) {
  return mix64(seed ^ 0x700a0ull);
}

Result<Hierarchy> build_hybrid_hierarchy(const PointSet& points,
                                         const HybridOptions& options) {
  if (points.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "build_hybrid_hierarchy: empty point set");
  }
  if (options.delta < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "build_hybrid_hierarchy: delta must be >= 1");
  }
  const std::size_t d = points.dim();
  const std::uint32_t r = options.num_buckets;
  if (r < 1 || r > d) {
    return Status(StatusCode::kInvalidArgument,
                  "build_hybrid_hierarchy: need 1 <= num_buckets <= dim");
  }

  // Zero-pad so r divides the dimension (footnote 3).
  const std::size_t bucket_dim = ceil_div(d, r);
  const std::size_t d_eff = bucket_dim * r;
  const PointSet padded = d_eff == d ? points : points.pad_dims(d_eff);

  // Scale ladder: w_1 = w_max / 2 with w_max = delta * sqrt(d) (an upper
  // bound on the data diameter, so the root's diameter bound covers it).
  const ScaleLadder ladder = hybrid_scale_ladder(d, r, options.delta);
  const std::size_t levels = ladder.levels;

  const std::size_t n = points.size();
  const std::size_t num_grids =
      options.num_grids > 0
          ? options.num_grids
          : recommended_num_grids(bucket_dim, n, r, levels,
                                  options.fail_prob);

  // Project each bucket once.
  std::vector<PointSet> buckets;
  buckets.reserve(r);
  for (std::uint32_t j = 0; j < r; ++j) {
    buckets.push_back(
        padded.project(j * bucket_dim, (j + 1) * bucket_dim));
  }

  Hierarchy h;
  h.num_buckets = r;
  h.num_grids = num_grids;
  h.scales = ladder.scales;
  h.edge_weight = ladder.edge_weight;
  h.cluster_of_point.emplace_back(n, hybrid_root_id(options.seed));

  // Chains continue below singleton clusters; the tree builder prunes them
  // (so the MPC path, where no machine knows global cluster sizes, computes
  // the identical structure).
  std::vector<std::uint64_t> bucket_ids(n);
  for (std::size_t level = 1; level <= levels; ++level) {
    const double w = ladder.scales[level];
    std::vector<std::uint64_t> next = h.cluster_of_point.back();

    for (std::uint32_t j = 0; j < r; ++j) {
      const BallGrids grids(bucket_dim, w, num_grids,
                            hybrid_grid_seed(options.seed, level, j));
      h.explicit_grid_bytes += grids.explicit_storage_bytes();
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t ball = grids.assign(buckets[j][i]);
        if (ball == kUncovered) {
          if (options.uncovered == UncoveredPolicy::kFail) {
            return Status(
                StatusCode::kCoverageFailure,
                "ball partitioning left point " + std::to_string(i) +
                    " uncovered at level " + std::to_string(level) +
                    " bucket " + std::to_string(j) + " (U=" +
                    std::to_string(num_grids) + ")");
          }
          ++h.uncovered_events;
          ball = hash_combine(hash_combine(mix64(0xdeadull), i),
                              hash_combine(level, j));
        }
        bucket_ids[i] = ball;
      }
      // Fold this bucket's ball ids into the cluster chain.
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = hash_combine(next[i], bucket_ids[i]);
      }
    }

    h.cluster_of_point.push_back(std::move(next));
  }

  return h;
}

Result<Hierarchy> build_grid_hierarchy(const PointSet& points,
                                       std::uint64_t delta,
                                       std::uint64_t seed) {
  if (points.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "build_grid_hierarchy: empty point set");
  }
  if (delta < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "build_grid_hierarchy: delta must be >= 1");
  }
  const std::size_t d = points.dim();
  const std::size_t n = points.size();
  const ScaleLadder ladder = grid_scale_ladder(d, delta);

  Hierarchy h;
  h.num_buckets = static_cast<std::uint32_t>(d);
  h.scales = ladder.scales;
  h.edge_weight = ladder.edge_weight;
  h.cluster_of_point.emplace_back(n, hybrid_root_id(seed));

  for (std::size_t level = 1; level <= ladder.levels; ++level) {
    const double w = ladder.scales[level];
    std::vector<std::uint64_t> next = h.cluster_of_point.back();
    const ShiftedGrid grid(d, w, grid_level_seed(seed, level));
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = hash_combine(next[i], grid.cell_id(points[i]));
    }
    h.cluster_of_point.push_back(std::move(next));
  }

  return h;
}

Result<Hierarchy> build_ball_hierarchy(const PointSet& points,
                                       HybridOptions options) {
  options.num_buckets = 1;
  return build_hybrid_hierarchy(points, options);
}

}  // namespace mpte
