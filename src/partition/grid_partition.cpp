#include "partition/grid_partition.hpp"

#include <bit>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "simd/arena.hpp"
#include "simd/dispatch.hpp"

namespace mpte {

ShiftedGrid::ShiftedGrid(std::size_t dim, double cell_width,
                         std::uint64_t seed)
    : dim_(dim),
      cell_width_(cell_width),
      inv_cell_(1.0 / cell_width),
      seed_(seed) {
  if (dim == 0) throw MpteError("ShiftedGrid: dim must be >= 1");
  if (cell_width <= 0.0) {
    throw MpteError("ShiftedGrid: cell width must be positive");
  }
  // Materialize the shift vector once (same pure function of (seed, t) as
  // before; the hash chains dominated cell_id's inner loop).
  shifts_.resize(dim);
  for (std::size_t t = 0; t < dim; ++t) {
    const std::uint64_t h = hash_combine(mix64(seed_ ^ 0x961dull), t);
    shifts_[t] = static_cast<double>(h >> 11) * 0x1.0p-53 * cell_width_;
  }
}

std::uint64_t ShiftedGrid::cell_id(std::span<const double> p) const {
  if (p.size() != dim_) {
    throw MpteError("ShiftedGrid::cell_id: dimension mismatch");
  }
  // Vectorized lattice coordinates into thread-local scratch, then the
  // sequential hash chain over them.
  simd::ScratchScope scope;
  auto z = simd::scratch().alloc<double>(dim_);
  simd::ops().lattice_floor(p.data(), shifts_.data(), dim_, inv_cell_,
                            z.data());
  std::uint64_t id = mix64(seed_ ^ 0xce11ull);
  for (std::size_t t = 0; t < dim_; ++t) {
    id = hash_combine(
        id, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(z[t])));
  }
  return id;
}

std::vector<std::uint64_t> grid_partition(const PointSet& points,
                                          const ShiftedGrid& grid) {
  std::vector<std::uint64_t> cells(points.size());
  // Pure per-point hashing into disjoint slots — parallel over points.
  par::parallel_for(0, points.size(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        cells[i] = grid.cell_id(points[i]);
                      }
                    });
  return cells;
}

}  // namespace mpte
