// Diagnostics over hierarchical partitionings.
//
// Per-level statistics — cluster counts, size distribution, singleton
// fraction — are how one *sees* a hierarchy: where mass separates, how
// balanced the refinement is, how quickly the recursion bottoms out.
// Used by tests (structure sanity), benches (reporting), and the CLI.
#pragma once

#include <string>
#include <vector>

#include "partition/hybrid_partition.hpp"

namespace mpte {

/// Statistics of one hierarchy level.
struct LevelStats {
  std::size_t level = 0;
  double scale = 0.0;
  /// Number of distinct clusters.
  std::size_t clusters = 0;
  /// Largest cluster size.
  std::size_t largest = 0;
  /// Clusters of size 1.
  std::size_t singletons = 0;
  /// Shannon entropy (nats) of the cluster-size distribution — 0 when one
  /// cluster holds everything, log(n) at full shatter.
  double entropy = 0.0;
};

/// Per-level statistics, index 0 = root level.
std::vector<LevelStats> analyze_hierarchy(const Hierarchy& hierarchy);

/// The first level at which every cluster is a singleton (== levels() if
/// duplicates never separate).
std::size_t full_shatter_level(const Hierarchy& hierarchy);

/// Multi-line human-readable table of analyze_hierarchy.
std::string hierarchy_report(const Hierarchy& hierarchy);

}  // namespace mpte
