#include "partition/sphere_caps.hpp"

#include <cmath>

#include "common/status.hpp"

namespace mpte {

std::vector<double> sample_unit_sphere(Rng& rng, std::size_t dim) {
  if (dim == 0) throw MpteError("sample_unit_sphere: dim must be >= 1");
  std::vector<double> v(dim);
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (double& x : v) {
      x = rng.normal();
      norm_sq += x * x;
    }
  } while (norm_sq == 0.0);
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
  return v;
}

std::vector<double> sample_unit_ball(Rng& rng, std::size_t dim) {
  std::vector<double> v = sample_unit_sphere(rng, dim);
  // Radius ~ U^{1/d} makes the volume element uniform.
  const double radius =
      std::pow(rng.uniform(), 1.0 / static_cast<double>(dim));
  for (double& x : v) x *= radius;
  return v;
}

double equator_band_probability(std::size_t dim, double band,
                                std::size_t samples, std::uint64_t seed,
                                bool on_sphere) {
  if (samples == 0) {
    throw MpteError("equator_band_probability: need samples > 0");
  }
  Rng rng(seed);
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::vector<double> x =
        on_sphere ? sample_unit_sphere(rng, dim) : sample_unit_ball(rng, dim);
    if (std::abs(x[0]) <= band) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double lemma4_bound(std::size_t dim, double band) {
  return std::sqrt(static_cast<double>(dim)) * band;
}

}  // namespace mpte
