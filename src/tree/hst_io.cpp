#include "tree/hst_io.hpp"

#include <utility>

#include "common/checksum.hpp"

namespace mpte {
namespace {

constexpr std::uint32_t kMagic = 0x4d505445;  // "MPTE"
constexpr std::uint32_t kVersion = 1;

/// Flat, trivially copyable on-disk form of HstNode.
struct WireNode {
  std::uint64_t cluster_id;
  std::int64_t point;
  std::int32_t parent;
  std::uint32_t level;
  double edge_weight;
  std::uint32_t subtree_size;
  std::uint32_t padding = 0;
};

}  // namespace

void serialize_hst(const Hst& tree, Serializer& out) {
  out.write(kMagic);
  out.write(kVersion);
  std::vector<WireNode> nodes;
  nodes.reserve(tree.num_nodes());
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const HstNode& node = tree.node(i);
    nodes.push_back(WireNode{node.cluster_id, node.point, node.parent,
                             node.level, node.edge_weight,
                             node.subtree_size});
  }
  out.write_vector(nodes);
  std::vector<std::uint32_t> leaves(tree.num_points());
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    leaves[p] = static_cast<std::uint32_t>(tree.leaf(p));
  }
  out.write_vector(leaves);
}

std::vector<std::uint8_t> hst_to_bytes(const Hst& tree) {
  Serializer s;
  serialize_hst(tree, s);
  return s.take();
}

Hst deserialize_hst(Deserializer& in) {
  if (in.read<std::uint32_t>() != kMagic) {
    throw MpteError("deserialize_hst: bad magic");
  }
  if (in.read<std::uint32_t>() != kVersion) {
    throw MpteError("deserialize_hst: unsupported version");
  }
  const auto wire = in.read_vector<WireNode>();
  std::vector<HstNode> nodes;
  nodes.reserve(wire.size());
  for (const WireNode& w : wire) {
    HstNode node;
    node.cluster_id = w.cluster_id;
    node.point = w.point;
    node.parent = w.parent;
    node.level = w.level;
    node.edge_weight = w.edge_weight;
    node.subtree_size = w.subtree_size;
    nodes.push_back(node);
  }
  auto leaves = in.read_vector<std::uint32_t>();
  Hst tree(std::move(nodes), std::move(leaves));
  const Status valid = tree.validate();
  if (!valid.ok()) {
    throw MpteError("deserialize_hst: invalid tree: " + valid.to_string());
  }
  return tree;
}

Hst hst_from_bytes(const std::vector<std::uint8_t>& bytes) {
  Deserializer d(bytes);
  return deserialize_hst(d);
}

void save_hst(const Hst& tree, const std::string& path) {
  const auto enveloped = wrap_checksummed(hst_to_bytes(tree));
  const Status status = write_file_atomic(path, enveloped);
  if (!status.ok()) throw MpteError("save_hst: " + status.to_string());
}

Hst load_hst(const std::string& path) {
  auto tree = try_load_hst(path);
  if (!tree.ok()) throw MpteError("load_hst: " + tree.status().to_string());
  return std::move(*tree);
}

Result<Hst> try_load_hst(const std::string& path) {
  auto file_bytes = read_file_bytes(path);
  if (!file_bytes.ok()) return file_bytes.status();
  // Pre-envelope files carried the raw payload; still accepted.
  auto payload = unwrap_checksummed(std::move(*file_bytes),
                                    /*allow_legacy=*/true, path);
  if (!payload.ok()) return payload.status();
  try {
    return hst_from_bytes(*payload);
  } catch (const MpteError& error) {
    return Status(StatusCode::kInvalidArgument,
                  path + ": " + error.what());
  }
}

}  // namespace mpte
