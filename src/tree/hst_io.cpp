#include "tree/hst_io.hpp"

#include <utility>

#include "common/checksum.hpp"

namespace mpte {
namespace {

constexpr std::uint32_t kMagic = 0x4d505445;  // "MPTE"
/// Version 1: nodes + leaves. Version 2 appends a stable-id vector
/// alongside the leaves (dyn/dynamic_embedder.hpp), so erase(id) survives
/// a save/load round trip. The id-less writer still emits version 1 —
/// hst_to_bytes(tree) stays byte-stable (the cross-backend golden
/// fingerprints hash it).
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersionIds = 2;

/// Flat, trivially copyable on-disk form of HstNode.
struct WireNode {
  std::uint64_t cluster_id;
  std::int64_t point;
  std::int32_t parent;
  std::uint32_t level;
  double edge_weight;
  std::uint32_t subtree_size;
  std::uint32_t padding = 0;
};

}  // namespace

void serialize_hst(const Hst& tree, Serializer& out) {
  out.write(kMagic);
  out.write(kVersionLegacy);
  std::vector<WireNode> nodes;
  nodes.reserve(tree.num_nodes());
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const HstNode& node = tree.node(i);
    nodes.push_back(WireNode{node.cluster_id, node.point, node.parent,
                             node.level, node.edge_weight,
                             node.subtree_size});
  }
  out.write_vector(nodes);
  std::vector<std::uint32_t> leaves(tree.num_points());
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    leaves[p] = static_cast<std::uint32_t>(tree.leaf(p));
  }
  out.write_vector(leaves);
}

void serialize_hst(const Hst& tree, std::span<const std::uint64_t> ids,
                   Serializer& out) {
  if (!ids.empty() && ids.size() != tree.num_points()) {
    throw MpteError("serialize_hst: ids/points size mismatch");
  }
  Serializer legacy;
  serialize_hst(tree, legacy);
  const auto body = legacy.take();
  // Version 2 = version-1 body with the version stamp bumped, followed by
  // the stable-id vector (dense 0..n-1 when the caller passed none).
  out.write(kMagic);
  out.write(kVersionIds);
  out.write_raw(std::span<const std::uint8_t>(
      body.data() + 2 * sizeof(std::uint32_t),
      body.size() - 2 * sizeof(std::uint32_t)));
  std::vector<std::uint64_t> dense;
  if (ids.empty()) {
    dense.resize(tree.num_points());
    for (std::size_t p = 0; p < tree.num_points(); ++p) dense[p] = p;
    ids = dense;
  }
  out.write_vector(std::vector<std::uint64_t>(ids.begin(), ids.end()));
}

std::vector<std::uint8_t> hst_to_bytes(const Hst& tree) {
  Serializer s;
  serialize_hst(tree, s);
  return s.take();
}

Hst deserialize_hst(Deserializer& in, std::vector<std::uint64_t>* ids) {
  if (in.read<std::uint32_t>() != kMagic) {
    throw MpteError("deserialize_hst: bad magic");
  }
  const auto version = in.read<std::uint32_t>();
  if (version != kVersionLegacy && version != kVersionIds) {
    throw MpteError("deserialize_hst: unsupported version");
  }
  const auto wire = in.read_vector<WireNode>();
  std::vector<HstNode> nodes;
  nodes.reserve(wire.size());
  for (const WireNode& w : wire) {
    HstNode node;
    node.cluster_id = w.cluster_id;
    node.point = w.point;
    node.parent = w.parent;
    node.level = w.level;
    node.edge_weight = w.edge_weight;
    node.subtree_size = w.subtree_size;
    nodes.push_back(node);
  }
  auto leaves = in.read_vector<std::uint32_t>();
  std::vector<std::uint64_t> loaded_ids;
  if (version == kVersionIds) {
    loaded_ids = in.read_vector<std::uint64_t>();
    if (loaded_ids.size() != leaves.size()) {
      throw MpteError("deserialize_hst: ids/leaves size mismatch");
    }
  } else {
    // Legacy files predate stable ids: synthesize the dense identity.
    loaded_ids.resize(leaves.size());
    for (std::size_t p = 0; p < loaded_ids.size(); ++p) loaded_ids[p] = p;
  }
  Hst tree(std::move(nodes), std::move(leaves));
  const Status valid = tree.validate();
  if (!valid.ok()) {
    throw MpteError("deserialize_hst: invalid tree: " + valid.to_string());
  }
  if (ids != nullptr) *ids = std::move(loaded_ids);
  return tree;
}

Hst hst_from_bytes(const std::vector<std::uint8_t>& bytes,
                   std::vector<std::uint64_t>* ids) {
  Deserializer d(bytes);
  return deserialize_hst(d, ids);
}

void save_hst(const Hst& tree, const std::string& path) {
  const auto enveloped = wrap_checksummed(hst_to_bytes(tree));
  const Status status = write_file_atomic(path, enveloped);
  if (!status.ok()) throw MpteError("save_hst: " + status.to_string());
}

void save_hst(const Hst& tree, std::span<const std::uint64_t> ids,
              const std::string& path) {
  Serializer s;
  serialize_hst(tree, ids, s);
  const auto enveloped = wrap_checksummed(s.take());
  const Status status = write_file_atomic(path, enveloped);
  if (!status.ok()) throw MpteError("save_hst: " + status.to_string());
}

Hst load_hst(const std::string& path) {
  auto tree = try_load_hst(path);
  if (!tree.ok()) throw MpteError("load_hst: " + tree.status().to_string());
  return std::move(*tree);
}

Result<Hst> try_load_hst(const std::string& path) {
  auto file_bytes = read_file_bytes(path);
  if (!file_bytes.ok()) return file_bytes.status();
  // Pre-envelope files carried the raw payload; still accepted.
  auto payload = unwrap_checksummed(std::move(*file_bytes),
                                    /*allow_legacy=*/true, path);
  if (!payload.ok()) return payload.status();
  try {
    return hst_from_bytes(*payload);
  } catch (const MpteError& error) {
    return Status(StatusCode::kInvalidArgument,
                  path + ": " + error.what());
  }
}

}  // namespace mpte
