// Builds the HST from a hierarchical partitioning (the tree-construction
// half of Algorithms 1 and 2).
//
// Both the sequential and the MPC paths first produce the *full* cluster
// tree — one node per (level, cluster id), chains continuing below
// singleton clusters — and then run the same pruning pass: each point's
// leaf attaches at its topmost singleton ancestor and the chain below is
// dropped (Algorithm 1's "stop once |C(v)| <= 1"). Sharing the assembly
// guarantees the two paths produce identical trees for the same seed,
// which the integration tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/hybrid_partition.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// The unpruned cluster tree, in topological (level-major) node order.
struct RawTree {
  struct RawNode {
    /// Cluster id (diagnostic; carried into HstNode::cluster_id).
    std::uint64_t key = 0;
    /// Parent index, -1 for the root.
    std::int32_t parent = -1;
    std::uint32_t level = 0;
  };
  std::vector<RawNode> nodes;
  /// Per point: index of its deepest-level cluster node.
  std::vector<std::uint32_t> bottom_of_point;
  /// Weight of an edge entering a node on each level (index 0 unused).
  std::vector<double> edge_weight;
};

/// Prunes singleton chains and produces the final HST: every point's leaf
/// hangs (weight 0) under its topmost ancestor containing only that point;
/// nodes below are dropped.
Hst assemble_pruned(const RawTree& raw);

/// Constructs the HST for a Hierarchy (sequential path).
Hst build_hst(const Hierarchy& hierarchy);

/// Summary shape statistics for reporting.
struct HstShape {
  std::size_t nodes = 0;
  std::size_t internal_nodes = 0;
  std::size_t leaves = 0;
  std::size_t depth = 0;
  std::size_t max_branching = 0;
};

HstShape hst_shape(const Hst& tree);

}  // namespace mpte
