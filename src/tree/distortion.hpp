// Distortion measurement — the quantity Theorems 1 and 2 bound.
//
// For a single tree T, the per-pair ratio dist_T(p,q)/||p-q||_2 must be
// >= 1 (domination, Lemma 2) and its maximum is the realized distortion of
// T. The theorems bound the *expected* distortion: max over pairs of
// E_T[dist_T(p,q)]/||p-q||_2 with the expectation over the random tree, so
// the expected-distortion helper averages tree distances over an ensemble
// of independently built trees before taking the per-pair ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point_set.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Pair sample shared by the measurement helpers: all pairs if
/// n(n-1)/2 <= max_pairs, otherwise max_pairs distinct random pairs.
std::vector<std::pair<std::uint32_t, std::uint32_t>> sample_pairs(
    std::size_t n, std::size_t max_pairs, std::uint64_t seed);

/// Per-tree distortion statistics over a pair sample.
struct DistortionStats {
  /// min over pairs of dist_T/dist_2 — domination holds iff >= 1.
  double min_ratio = 0.0;
  double mean_ratio = 0.0;
  /// max over pairs of dist_T/dist_2 — the realized distortion.
  double max_ratio = 0.0;
  std::size_t pairs = 0;
};

/// Measures one tree against the points it embeds (same coordinate space
/// the tree was built on). Pairs at Euclidean distance 0 are skipped.
DistortionStats measure_distortion(const Hst& tree, const PointSet& points,
                                   std::size_t max_pairs,
                                   std::uint64_t seed);

/// Ensemble (expected-distortion) statistics.
struct ExpectedDistortionStats {
  /// max over pairs of avg_T dist_T/dist_2 — the empirical Theorem-2 bound.
  double max_expected_ratio = 0.0;
  /// mean over pairs of the same quantity.
  double mean_expected_ratio = 0.0;
  /// min single-tree ratio observed anywhere (domination check).
  double min_single_ratio = 0.0;
  std::size_t pairs = 0;
  std::size_t trees = 0;
};

/// Measures an ensemble of trees (independent seeds, same points).
ExpectedDistortionStats measure_expected_distortion(
    std::span<const Hst> trees, const PointSet& points,
    std::size_t max_pairs, std::uint64_t seed);

}  // namespace mpte
