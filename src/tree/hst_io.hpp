// HST (de)serialization.
//
// One of the motivations the paper gives for tree embeddings is that the
// O(n)-size tree is a *compact, storable* sketch of the metric: embed
// once, persist, answer distance/cluster queries later without the
// original O(nd) data. These helpers give the byte format (versioned,
// length-prefixed, using the common Serializer wire encoding) and
// file-level convenience wrappers.
// On disk the payload travels inside the checksummed file envelope
// (common/checksum.hpp), so truncated or corrupted files are rejected
// with a clear error instead of deserializing into garbage; files written
// before the envelope existed (raw payload) still load. The in-memory
// byte format (hst_to_bytes) is unchanged.
//
// Two payload versions exist. Version 1 (the id-less writers below) is
// nodes + leaves, and its bytes are frozen: the cross-backend golden
// fingerprints hash hst_to_bytes(tree). Version 2 (the `ids` overloads)
// appends a stable point-id vector after the leaves, so a dynamic tree
// (dyn/dynamic_embedder.hpp) survives a save/load round trip with its
// external ids intact. Readers accept both; loading a version-1 file
// synthesizes the dense identity ids 0..n-1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Serializes the full tree (nodes + leaf index) into `out`. Version-1
/// payload; byte-stable across releases (golden fingerprints hash it).
void serialize_hst(const Hst& tree, Serializer& out);

/// Serializes the tree plus the stable external id of each point (dense
/// index -> id) as a version-2 payload. An empty `ids` span writes the
/// dense identity 0..n-1; a non-empty span must have exactly
/// tree.num_points() entries (throws MpteError otherwise).
void serialize_hst(const Hst& tree, std::span<const std::uint64_t> ids,
                   Serializer& out);

/// Convenience: serialized bytes of the tree (version-1 payload).
std::vector<std::uint8_t> hst_to_bytes(const Hst& tree);

/// Reconstructs a tree; throws MpteError on malformed or
/// version-incompatible input. Accepts version-1 and version-2 payloads.
/// When `ids` is non-null it receives the stable point ids — the stored
/// vector for version 2, the dense identity 0..n-1 for version 1.
Hst deserialize_hst(Deserializer& in,
                    std::vector<std::uint64_t>* ids = nullptr);

/// Convenience over a byte buffer.
Hst hst_from_bytes(const std::vector<std::uint8_t>& bytes,
                   std::vector<std::uint64_t>* ids = nullptr);

/// Writes the tree to a file (version-1 payload); throws MpteError on
/// I/O failure.
void save_hst(const Hst& tree, const std::string& path);

/// Writes the tree and its stable point ids to a file (version-2
/// payload); throws MpteError on I/O failure or an ids/points size
/// mismatch.
void save_hst(const Hst& tree, std::span<const std::uint64_t> ids,
              const std::string& path);

/// Reads a tree written by save_hst.
Hst load_hst(const std::string& path);

/// Like load_hst but reports failure as a Status instead of throwing:
/// kUnavailable when the file cannot be opened, kInvalidArgument when it
/// is truncated, fails its checksum, or decodes to an invalid tree.
Result<Hst> try_load_hst(const std::string& path);

}  // namespace mpte
