// HST (de)serialization.
//
// One of the motivations the paper gives for tree embeddings is that the
// O(n)-size tree is a *compact, storable* sketch of the metric: embed
// once, persist, answer distance/cluster queries later without the
// original O(nd) data. These helpers give the byte format (versioned,
// length-prefixed, using the common Serializer wire encoding) and
// file-level convenience wrappers.
// On disk the payload travels inside the checksummed file envelope
// (common/checksum.hpp), so truncated or corrupted files are rejected
// with a clear error instead of deserializing into garbage; files written
// before the envelope existed (raw payload) still load. The in-memory
// byte format (hst_to_bytes) is unchanged.
#pragma once

#include <string>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "tree/hst.hpp"

namespace mpte {

/// Serializes the full tree (nodes + leaf index) into `out`.
void serialize_hst(const Hst& tree, Serializer& out);

/// Convenience: serialized bytes of the tree.
std::vector<std::uint8_t> hst_to_bytes(const Hst& tree);

/// Reconstructs a tree; throws MpteError on malformed or
/// version-incompatible input.
Hst deserialize_hst(Deserializer& in);

/// Convenience over a byte buffer.
Hst hst_from_bytes(const std::vector<std::uint8_t>& bytes);

/// Writes the tree to a file; throws MpteError on I/O failure.
void save_hst(const Hst& tree, const std::string& path);

/// Reads a tree written by save_hst.
Hst load_hst(const std::string& path);

/// Like load_hst but reports failure as a Status instead of throwing:
/// kUnavailable when the file cannot be opened, kInvalidArgument when it
/// is truncated, fails its checksum, or decodes to an invalid tree.
Result<Hst> try_load_hst(const std::string& path);

}  // namespace mpte
