#include "tree/hst.hpp"

#include <algorithm>

namespace mpte {

Hst::Hst(std::vector<HstNode> nodes, std::vector<std::uint32_t> leaf_of_point)
    : nodes_(std::move(nodes)), leaf_of_point_(std::move(leaf_of_point)) {
  if (nodes_.empty()) throw MpteError("Hst: no nodes");
  children_.resize(nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const std::int32_t parent = nodes_[i].parent;
    if (parent < 0 || static_cast<std::size_t>(parent) >= i) {
      throw MpteError("Hst: nodes must be in topological order");
    }
    children_[parent].push_back(static_cast<std::uint32_t>(i));
  }
}

double Hst::distance(std::size_t p, std::size_t q) const {
  std::size_t a = leaf(p);
  std::size_t b = leaf(q);
  double total = 0.0;
  // Climb the deeper side (larger index is never an ancestor of a smaller
  // one in topological order, so walking the larger index up is safe).
  while (a != b) {
    if (a > b) {
      total += nodes_[a].edge_weight;
      a = static_cast<std::size_t>(nodes_[a].parent);
    } else {
      total += nodes_[b].edge_weight;
      b = static_cast<std::size_t>(nodes_[b].parent);
    }
  }
  return total;
}

std::size_t Hst::lca(std::size_t p, std::size_t q) const {
  std::size_t a = leaf(p);
  std::size_t b = leaf(q);
  while (a != b) {
    if (a > b) {
      a = static_cast<std::size_t>(nodes_[a].parent);
    } else {
      b = static_cast<std::size_t>(nodes_[b].parent);
    }
  }
  return a;
}

double Hst::depth_weight(std::size_t i) const {
  double total = 0.0;
  while (nodes_[i].parent >= 0) {
    total += nodes_[i].edge_weight;
    i = static_cast<std::size_t>(nodes_[i].parent);
  }
  return total;
}

std::size_t Hst::depth() const {
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t deepest = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    depth[i] = depth[static_cast<std::size_t>(nodes_[i].parent)] + 1;
    deepest = std::max(deepest, depth[i]);
  }
  return deepest;
}

Status Hst::validate() const {
  if (nodes_[0].parent != -1) {
    return Status(StatusCode::kInternal, "root must have parent -1");
  }
  std::vector<std::uint32_t> computed_size(nodes_.size(), 0);
  std::vector<std::size_t> leaves_seen(num_points(), 0);
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const HstNode& node = nodes_[i];
    if (node.point >= 0) {
      if (static_cast<std::size_t>(node.point) >= num_points()) {
        return Status(StatusCode::kInternal, "leaf point index out of range");
      }
      if (leaf_of_point_[node.point] != i) {
        return Status(StatusCode::kInternal,
                      "leaf_of_point does not match leaf node");
      }
      ++leaves_seen[node.point];
      computed_size[i] += 1;
      if (!children_[i].empty()) {
        return Status(StatusCode::kInternal, "leaf node has children");
      }
    }
    if (node.subtree_size != computed_size[i]) {
      return Status(StatusCode::kInternal, "subtree_size inconsistent");
    }
    if (i > 0) {
      const auto parent = static_cast<std::size_t>(node.parent);
      if (nodes_[parent].level >= node.level) {
        return Status(StatusCode::kInternal,
                      "levels must strictly increase along edges");
      }
      if (node.edge_weight < 0.0) {
        return Status(StatusCode::kInternal, "negative edge weight");
      }
      computed_size[parent] += computed_size[i];
    }
  }
  for (std::size_t p = 0; p < num_points(); ++p) {
    if (leaves_seen[p] != 1) {
      return Status(StatusCode::kInternal,
                    "point " + std::to_string(p) + " has " +
                        std::to_string(leaves_seen[p]) + " leaves");
    }
  }
  return Status::Ok();
}

}  // namespace mpte
