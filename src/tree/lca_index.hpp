// Precomputed LCA / distance index over an HST.
//
// Hst::distance walks parent pointers — O(depth) per query, fine for
// one-shot use. Applications issuing many queries (nearest-neighbor
// batches, distance matrices, clustering loops) want the classic binary-
// lifting index: O(nodes·log depth) preprocessing, then O(log depth) LCA
// and O(1)-after-LCA distances via prefix weight-depths.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/hst.hpp"

namespace mpte {

/// Binary-lifting ancestor table + weight depths for one (immutable) HST.
/// The index borrows the tree: it must outlive the index.
class LcaIndex {
 public:
  explicit LcaIndex(const Hst& tree);

  /// Deepest common ancestor node of two leaves' points. O(log depth).
  std::size_t lca(std::size_t p, std::size_t q) const;

  /// Tree-metric distance between two points. O(log depth).
  double distance(std::size_t p, std::size_t q) const;

  /// Sum of edge weights from the root down to node i (cached).
  double weight_depth(std::size_t node) const {
    return weight_depth_[node];
  }

  /// Edge-count depth of node i.
  std::uint32_t depth(std::size_t node) const { return depth_[node]; }

 private:
  /// 2^k-th ancestor of node i, or root for overshoots.
  std::size_t ancestor(std::size_t node, std::size_t k) const {
    return up_[k][node];
  }

  const Hst& tree_;
  std::size_t levels_;  // ceil(log2(max depth + 1)), >= 1
  std::vector<std::vector<std::uint32_t>> up_;
  std::vector<std::uint32_t> depth_;
  std::vector<double> weight_depth_;
};

}  // namespace mpte
