#include "tree/lca_index.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace mpte {

LcaIndex::LcaIndex(const Hst& tree) : tree_(tree) {
  const std::size_t n = tree.num_nodes();
  depth_.assign(n, 0);
  weight_depth_.assign(n, 0.0);
  std::uint32_t max_depth = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<std::size_t>(tree.node(i).parent);
    depth_[i] = depth_[parent] + 1;
    weight_depth_[i] = weight_depth_[parent] + tree.node(i).edge_weight;
    max_depth = std::max(max_depth, depth_[i]);
  }
  levels_ = std::max<std::size_t>(1, ceil_log2(max_depth + 1) + 1);

  up_.assign(levels_, std::vector<std::uint32_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    up_[0][i] = tree.node(i).parent >= 0
                    ? static_cast<std::uint32_t>(tree.node(i).parent)
                    : 0;
  }
  for (std::size_t k = 1; k < levels_; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      up_[k][i] = up_[k - 1][up_[k - 1][i]];
    }
  }
}

std::size_t LcaIndex::lca(std::size_t p, std::size_t q) const {
  std::size_t a = tree_.leaf(p);
  std::size_t b = tree_.leaf(q);
  if (depth_[a] < depth_[b]) std::swap(a, b);
  // Lift a to b's depth.
  std::uint32_t delta = depth_[a] - depth_[b];
  for (std::size_t k = 0; delta != 0; ++k, delta >>= 1) {
    if (delta & 1) a = up_[k][a];
  }
  if (a == b) return a;
  for (std::size_t k = levels_; k-- > 0;) {
    if (up_[k][a] != up_[k][b]) {
      a = up_[k][a];
      b = up_[k][b];
    }
  }
  return up_[0][a];
}

double LcaIndex::distance(std::size_t p, std::size_t q) const {
  const std::size_t ancestor = lca(p, q);
  return weight_depth_[tree_.leaf(p)] + weight_depth_[tree_.leaf(q)] -
         2.0 * weight_depth_[ancestor];
}

}  // namespace mpte
