#include "tree/distortion.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace mpte {

std::vector<std::pair<std::uint32_t, std::uint32_t>> sample_pairs(
    std::size_t n, std::size_t max_pairs, std::uint64_t seed) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (n < 2) return pairs;
  const std::size_t all = n * (n - 1) / 2;
  if (all <= max_pairs) {
    pairs.reserve(all);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
    return pairs;
  }
  Rng rng(seed);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  while (seen.size() < max_pairs) {
    auto i = static_cast<std::uint32_t>(rng.uniform_u64(n));
    auto j = static_cast<std::uint32_t>(rng.uniform_u64(n));
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    seen.emplace(i, j);
  }
  pairs.assign(seen.begin(), seen.end());
  return pairs;
}

namespace {

/// Per-chunk accumulator for the pair loops. Chunks evaluate disjoint pair
/// ranges; partials are merged in chunk order, so results are
/// deterministic for a fixed chunk count (and the single-chunk path is the
/// exact serial accumulation).
struct PairPartial {
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
};

std::size_t pair_chunks(std::size_t pairs) {
  return std::max<std::size_t>(1,
                               std::min(par::resolve_threads(0), pairs));
}

}  // namespace

DistortionStats measure_distortion(const Hst& tree, const PointSet& points,
                                   std::size_t max_pairs,
                                   std::uint64_t seed) {
  if (tree.num_points() != points.size()) {
    throw MpteError("measure_distortion: tree/point count mismatch");
  }
  const auto pairs = sample_pairs(points.size(), max_pairs, seed);
  const std::size_t chunks = pair_chunks(pairs.size());
  std::vector<PairPartial> partials(chunks);
  par::parallel_for_chunked(
      0, pairs.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        PairPartial& part = partials[chunk];
        for (std::size_t p = begin; p < end; ++p) {
          const auto& [i, j] = pairs[p];
          const double true_dist = l2_distance(points[i], points[j]);
          if (true_dist == 0.0) continue;
          const double ratio = tree.distance(i, j) / true_dist;
          part.min = std::min(part.min, ratio);
          part.max = std::max(part.max, ratio);
          part.sum += ratio;
          ++part.pairs;
        }
      });
  DistortionStats stats;
  stats.min_ratio = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const PairPartial& part : partials) {
    stats.min_ratio = std::min(stats.min_ratio, part.min);
    stats.max_ratio = std::max(stats.max_ratio, part.max);
    sum += part.sum;
    stats.pairs += part.pairs;
  }
  if (stats.pairs == 0) {
    stats.min_ratio = 0.0;
  } else {
    stats.mean_ratio = sum / static_cast<double>(stats.pairs);
  }
  return stats;
}

ExpectedDistortionStats measure_expected_distortion(
    std::span<const Hst> trees, const PointSet& points,
    std::size_t max_pairs, std::uint64_t seed) {
  if (trees.empty()) {
    throw MpteError("measure_expected_distortion: no trees");
  }
  const auto pairs = sample_pairs(points.size(), max_pairs, seed);
  // Pair evaluation (the O(pairs × trees) hot loop) is parallel over the
  // pair sample; per-chunk partials merge in chunk order.
  const std::size_t chunks = pair_chunks(pairs.size());
  std::vector<PairPartial> partials(chunks);
  par::parallel_for_chunked(
      0, pairs.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        PairPartial& part = partials[chunk];
        for (std::size_t p = begin; p < end; ++p) {
          const auto& [i, j] = pairs[p];
          const double true_dist = l2_distance(points[i], points[j]);
          if (true_dist == 0.0) continue;
          double sum_tree = 0.0;
          for (const Hst& tree : trees) {
            const double ratio = tree.distance(i, j) / true_dist;
            part.min = std::min(part.min, ratio);
            sum_tree += ratio;
          }
          const double expected =
              sum_tree / static_cast<double>(trees.size());
          part.max = std::max(part.max, expected);
          part.sum += expected;
          ++part.pairs;
        }
      });
  ExpectedDistortionStats stats;
  stats.trees = trees.size();
  stats.min_single_ratio = std::numeric_limits<double>::infinity();
  double sum_expected = 0.0;
  for (const PairPartial& part : partials) {
    stats.min_single_ratio = std::min(stats.min_single_ratio, part.min);
    stats.max_expected_ratio = std::max(stats.max_expected_ratio, part.max);
    sum_expected += part.sum;
    stats.pairs += part.pairs;
  }
  if (stats.pairs == 0) {
    stats.min_single_ratio = 0.0;
  } else {
    stats.mean_expected_ratio =
        sum_expected / static_cast<double>(stats.pairs);
  }
  return stats;
}

}  // namespace mpte
