#include "tree/embedding_builder.hpp"

#include <algorithm>
#include <unordered_map>

namespace mpte {

Hst assemble_pruned(const RawTree& raw) {
  const std::size_t raw_count = raw.nodes.size();
  const std::size_t n = raw.bottom_of_point.size();
  if (raw_count == 0 || n == 0) {
    throw MpteError("assemble_pruned: empty raw tree");
  }

  // Point counts per raw node, bottom-up (children have larger indices).
  std::vector<std::uint32_t> count(raw_count, 0);
  for (const std::uint32_t bottom : raw.bottom_of_point) ++count[bottom];
  for (std::size_t i = raw_count; i-- > 1;) {
    count[static_cast<std::size_t>(raw.nodes[i].parent)] += count[i];
  }

  // Freeze node per point: topmost ancestor that contains only this point
  // (or the bottom node itself when duplicates never separate).
  std::vector<std::uint32_t> freeze(n);
  for (std::size_t p = 0; p < n; ++p) {
    std::size_t cur = raw.bottom_of_point[p];
    while (raw.nodes[cur].parent >= 0 &&
           count[static_cast<std::size_t>(raw.nodes[cur].parent)] == 1) {
      cur = static_cast<std::size_t>(raw.nodes[cur].parent);
    }
    freeze[p] = static_cast<std::uint32_t>(cur);
  }

  // Keep freeze nodes and all their ancestors.
  std::vector<bool> keep(raw_count, false);
  for (std::size_t p = 0; p < n; ++p) {
    std::size_t cur = freeze[p];
    while (!keep[cur]) {
      keep[cur] = true;
      if (raw.nodes[cur].parent < 0) break;
      cur = static_cast<std::size_t>(raw.nodes[cur].parent);
    }
  }

  // Reindex kept nodes (original order is already topological).
  std::vector<std::uint32_t> new_index(raw_count, 0);
  std::vector<HstNode> nodes;
  for (std::size_t i = 0; i < raw_count; ++i) {
    if (!keep[i]) continue;
    HstNode node;
    node.cluster_id = raw.nodes[i].key;
    node.level = raw.nodes[i].level;
    if (raw.nodes[i].parent >= 0) {
      node.parent = static_cast<std::int32_t>(
          new_index[static_cast<std::size_t>(raw.nodes[i].parent)]);
      node.edge_weight = raw.edge_weight[node.level];
    }
    new_index[i] = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(node);
  }

  // Leaves, one per point, weight 0, under the pruned freeze node.
  std::vector<std::uint32_t> leaf_of_point(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t parent = new_index[freeze[p]];
    HstNode leaf;
    leaf.cluster_id = nodes[parent].cluster_id;
    leaf.parent = static_cast<std::int32_t>(parent);
    leaf.level = nodes[parent].level + 1;
    leaf.edge_weight = 0.0;
    leaf.point = static_cast<std::int64_t>(p);
    leaf_of_point[p] = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(leaf);
  }

  // Subtree sizes bottom-up.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].point >= 0) nodes[i].subtree_size += 1;
    if (nodes[i].parent >= 0) {
      nodes[static_cast<std::size_t>(nodes[i].parent)].subtree_size +=
          nodes[i].subtree_size;
    }
  }

  return Hst(std::move(nodes), std::move(leaf_of_point));
}

Hst build_hst(const Hierarchy& hierarchy) {
  if (hierarchy.cluster_of_point.empty() || hierarchy.num_points() == 0) {
    throw MpteError("build_hst: empty hierarchy");
  }
  const std::size_t n = hierarchy.num_points();
  const std::size_t levels = hierarchy.levels();

  RawTree raw;
  raw.edge_weight = hierarchy.edge_weight;
  std::unordered_map<std::uint64_t, std::uint32_t> node_of_cluster;

  raw.nodes.push_back(
      RawTree::RawNode{hierarchy.cluster_of_point[0][0], -1, 0});
  node_of_cluster.emplace(hierarchy.cluster_of_point[0][0], 0);

  for (std::size_t level = 1; level < levels; ++level) {
    const auto& prev = hierarchy.cluster_of_point[level - 1];
    const auto& curr = hierarchy.cluster_of_point[level];
    for (std::size_t i = 0; i < n; ++i) {
      if (node_of_cluster.contains(curr[i])) continue;
      const auto index = static_cast<std::uint32_t>(raw.nodes.size());
      raw.nodes.push_back(RawTree::RawNode{
          curr[i], static_cast<std::int32_t>(node_of_cluster.at(prev[i])),
          static_cast<std::uint32_t>(level)});
      node_of_cluster.emplace(curr[i], index);
    }
  }

  raw.bottom_of_point.resize(n);
  const auto& final_ids = hierarchy.cluster_of_point[levels - 1];
  for (std::size_t i = 0; i < n; ++i) {
    raw.bottom_of_point[i] = node_of_cluster.at(final_ids[i]);
  }

  return assemble_pruned(raw);
}

HstShape hst_shape(const Hst& tree) {
  HstShape shape;
  shape.nodes = tree.num_nodes();
  shape.depth = tree.depth();
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    if (tree.node(i).point >= 0) {
      ++shape.leaves;
    } else {
      ++shape.internal_nodes;
    }
    shape.max_branching =
        std::max(shape.max_branching, tree.children(i).size());
  }
  return shape;
}

}  // namespace mpte
