// The hierarchically well-separated tree (HST) produced by an embedding.
//
// Nodes correspond to clusters of the hierarchical partitioning; each edge
// into a level-i node carries the weight fixed by the partitioning method
// (2*sqrt(r)*w_i hybrid, sqrt(d)*w_i grid). Every input point owns one leaf
// (attached with weight 0 under the cluster where its chain froze), and
// dist_T(p, q) is the weight of the unique leaf-to-leaf path — the tree
// metric of Theorems 1–2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace mpte {

/// One HST node. Parents always precede children in the node array
/// (topological order), with the root at index 0.
struct HstNode {
  /// Cluster hash id from the partitioning (diagnostics only).
  std::uint64_t cluster_id = 0;
  /// Parent node index, or -1 for the root.
  std::int32_t parent = -1;
  /// Hierarchy level (root 0; leaves sit one past their cluster's level).
  std::uint32_t level = 0;
  /// Weight of the edge to the parent (0 for the root and for leaf hooks).
  double edge_weight = 0.0;
  /// Point index if this is a leaf, else -1.
  std::int64_t point = -1;
  /// Number of points in this node's subtree.
  std::uint32_t subtree_size = 0;
};

/// Immutable HST over n points. Built by tree/embedding_builder.
class Hst {
 public:
  Hst(std::vector<HstNode> nodes, std::vector<std::uint32_t> leaf_of_point);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_points() const { return leaf_of_point_.size(); }

  const HstNode& node(std::size_t i) const { return nodes_[i]; }
  std::size_t root() const { return 0; }

  /// Node index of point p's leaf.
  std::size_t leaf(std::size_t point) const { return leaf_of_point_[point]; }

  /// Children of node i, in construction order.
  const std::vector<std::uint32_t>& children(std::size_t i) const {
    return children_[i];
  }

  /// Tree-metric distance dist_T(p, q) between two points: the weight of
  /// the leaf-to-leaf path. O(depth).
  double distance(std::size_t p, std::size_t q) const;

  /// Deepest common ancestor of two points' leaves. O(depth).
  std::size_t lca(std::size_t p, std::size_t q) const;

  /// Sum of edge weights from node i up to (excluding) the root.
  double depth_weight(std::size_t i) const;

  /// Maximum node depth in edges.
  std::size_t depth() const;

  /// Structural invariants: topological parent order, root at 0, levels
  /// strictly increase along edges, non-root weights >= 0, exactly one
  /// leaf per point, subtree sizes consistent.
  Status validate() const;

 private:
  std::vector<HstNode> nodes_;
  std::vector<std::uint32_t> leaf_of_point_;
  std::vector<std::vector<std::uint32_t>> children_;
};

}  // namespace mpte
