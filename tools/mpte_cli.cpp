// mpte_cli — command-line front end to the library.
//
//   mpte_cli generate <n> <dim> <kind> <out.csv> [seed]
//       kind: uniform | clusters | blobs | subspace
//   mpte_cli embed <in.csv> <out.tree> [method] [seed]
//       method: hybrid (default) | grid | ball | mpc
//       Writes the tree plus its input-unit scale; prints pipeline stats.
//       `mpc` runs the distributed pipeline on a simulated cluster and
//       also prints the per-channel communication breakdown (top 5).
//   mpte_cli stats <tree>
//   mpte_cli query <tree> <i> <j>
//   mpte_cli distortion <tree> <in.csv>
//   mpte_cli serve <tree...> --port <p> [--batch N] [--wait-us N]
//       [--queue N] [--cache-bytes N] [--threads N]
//       Long-lived query service over the newline protocol
//       (docs/serving.md); multiple tree files form an ensemble. Runs
//       until a client sends `shutdown`, then prints final stats.
//   mpte_cli bench-client --port <p> [--host H] [--clients C]
//       [--queries Q] [--pipeline K] [--kind dist|knn|range|mix]
//       [--shutdown]
//       Load generator: C connections issue Q total queries, pipelined
//       K per write; reports achieved qps and the server's stats line.
//       --shutdown stops the server afterwards.
//
// Exit codes: 0 success, 1 usage (incl. unknown subcommands), 2 runtime
// failure (including the Theorem-1 coverage-failure report and
// bench-client runs that saw any error response).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/embedder.hpp"
#include "core/embedding_io.hpp"
#include "core/ensemble.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/csv_io.hpp"
#include "geometry/generators.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"
#include "tree/hst_io.hpp"

namespace {

using namespace mpte;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mpte_cli generate <n> <dim> "
               "<uniform|clusters|blobs|subspace> <out.csv> [seed]\n"
               "  mpte_cli embed <in.csv> <out.tree> [hybrid|grid|ball|mpc] "
               "[seed]\n"
               "  mpte_cli stats <tree>\n"
               "  mpte_cli query <tree> <i> <j>\n"
               "  mpte_cli distortion <tree> <in.csv>\n"
               "  mpte_cli serve <tree...> --port <p> [--batch N] "
               "[--wait-us N] [--queue N]\n"
               "            [--cache-bytes N] [--threads N]\n"
               "  mpte_cli bench-client --port <p> [--host H] "
               "[--clients C] [--queries Q]\n"
               "            [--pipeline K] [--kind dist|knn|range|mix] "
               "[--shutdown]\n");
  return 1;
}

/// Parses "--flag value" pairs after `from`; returns false (usage error)
/// on an unknown flag or missing value. Positional arguments (no leading
/// --) are collected into `positional`.
bool parse_flags(int argc, char** argv, int from,
                 std::vector<std::string>* positional,
                 std::vector<std::pair<std::string, std::string>>* flags) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(arg);
      continue;
    }
    if (arg == "--shutdown") {  // the only value-less flag
      flags->emplace_back(arg, "1");
      continue;
    }
    if (i + 1 >= argc) return false;
    flags->emplace_back(arg, argv[++i]);
  }
  return true;
}

std::string flag_value(
    const std::vector<std::pair<std::string, std::string>>& flags,
    const std::string& name, const std::string& fallback) {
  for (const auto& [flag, value] : flags) {
    if (flag == name) return value;
  }
  return fallback;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto n = static_cast<std::size_t>(std::atoll(argv[2]));
  const auto dim = static_cast<std::size_t>(std::atoll(argv[3]));
  const std::string kind = argv[4];
  const std::string path = argv[5];
  const std::uint64_t seed =
      argc > 6 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : 1;

  PointSet points;
  if (kind == "uniform") {
    points = generate_uniform_cube(n, dim, 100.0, seed);
  } else if (kind == "clusters") {
    points = generate_gaussian_clusters(n, dim, 8, 100.0, 1.0, seed);
  } else if (kind == "blobs") {
    points = generate_two_blobs(n, dim, 100.0, 1.0, seed);
  } else if (kind == "subspace") {
    points = generate_subspace(n, dim, std::max<std::size_t>(2, dim / 8),
                               100.0, 0.1, seed);
  } else {
    return usage();
  }
  write_csv_points_file(points, path);
  std::printf("wrote %zu x %zu points to %s\n", points.size(), points.dim(),
              path.c_str());
  return 0;
}

/// `embed ... mpc`: the distributed pipeline on a simulated cluster.
/// Machine memory is sized so the run fits the model comfortably (this is
/// a demo of the pipeline, not a scalability experiment — bench_mpc_*
/// cover that); afterwards the per-channel byte breakdown shows where the
/// communication went.
int cmd_embed_mpc(const PointSet& points, const char* out_path,
                  std::uint64_t seed) {
  const std::size_t input_bytes =
      points.size() * std::max<std::size_t>(points.dim(), 1) * sizeof(double);
  mpc::ClusterConfig config;
  config.num_machines = 8;
  config.local_memory_bytes = std::max<std::size_t>(1 << 22, 4 * input_bytes);
  mpc::Cluster cluster(config);

  MpcEmbedOptions options;
  options.seed = seed;
  const auto result = mpc_embed(cluster, points, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mpc embed failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }

  const Embedding embedding{result->tree,        result->embedded_points,
                            result->scale_to_input, result->delta_used,
                            result->buckets_used,   result->grids_used,
                            result->dim_used,       result->fjlt_applied,
                            result->retries_used};
  save_embedding(embedding, out_path, /*include_points=*/false);

  const HstShape shape = hst_shape(result->tree);
  std::printf("embedded %zu points (R^%zu -> dim %zu, fjlt=%s, delta=%llu, "
              "r=%u, U=%zu)\n",
              points.size(), points.dim(), result->dim_used,
              result->fjlt_applied ? "yes" : "no",
              static_cast<unsigned long long>(result->delta_used),
              result->buckets_used, result->grids_used);
  std::printf("tree: %zu nodes, depth %zu -> %s\n", shape.nodes, shape.depth,
              out_path);
  std::printf("cluster: %zu machines, %zu B local memory, %zu rounds\n",
              config.num_machines, config.local_memory_bytes,
              result->rounds_used);

  const auto totals = cluster.stats().channel_totals();
  std::size_t all_bytes = 0;
  for (const auto& [channel, bytes] : totals) all_bytes += bytes;
  std::printf("communication: %zu B over %zu channels; top %zu:\n", all_bytes,
              totals.size(), std::min<std::size_t>(5, totals.size()));
  for (std::size_t i = 0; i < totals.size() && i < 5; ++i) {
    std::printf("  %-24s %12zu B\n", totals[i].first.c_str(),
                totals[i].second);
  }
  return 0;
}

int cmd_embed(int argc, char** argv) {
  if (argc < 4) return usage();
  const PointSet points = read_csv_points_file(argv[2]);
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;
  EmbedOptions options;
  if (argc > 4) {
    const std::string method = argv[4];
    if (method == "mpc") {
      return cmd_embed_mpc(points, argv[3], seed);
    } else if (method == "grid") {
      options.method = PartitionMethod::kGrid;
    } else if (method == "ball") {
      options.method = PartitionMethod::kBall;
    } else if (method == "hybrid") {
      options.method = PartitionMethod::kHybrid;
    } else {
      return usage();
    }
  }
  options.seed = seed;

  const auto result = embed(points, options);
  if (!result.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  save_embedding(*result, argv[3], /*include_points=*/false);
  const HstShape shape = hst_shape(result->tree);
  std::printf("embedded %zu points (R^%zu -> dim %zu, fjlt=%s, delta=%llu, "
              "r=%u, U=%zu)\n",
              points.size(), points.dim(), result->dim_used,
              result->fjlt_applied ? "yes" : "no",
              static_cast<unsigned long long>(result->delta_used),
              result->buckets_used, result->grids_used);
  std::printf("tree: %zu nodes, depth %zu -> %s\n", shape.nodes, shape.depth,
              argv[3]);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const HstShape shape = hst_shape(tree);
  std::printf("points:        %zu\n", tree.num_points());
  std::printf("nodes:         %zu (%zu internal, %zu leaves)\n", shape.nodes,
              shape.internal_nodes, shape.leaves);
  std::printf("depth:         %zu\n", shape.depth);
  std::printf("max branching: %zu\n", shape.max_branching);
  std::printf("unit scale:    %.17g\n", scale);
  const Status valid = tree.validate();
  std::printf("validate:      %s\n", valid.ok() ? "ok" : valid.to_string().c_str());
  return valid.ok() ? 0 : 2;
}

int cmd_query(int argc, char** argv) {
  if (argc < 5) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const auto i = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto j = static_cast<std::size_t>(std::atoll(argv[4]));
  if (i >= tree.num_points() || j >= tree.num_points()) {
    std::fprintf(stderr, "point index out of range (n=%zu)\n",
                 tree.num_points());
    return 2;
  }
  std::printf("dist_T(%zu, %zu) = %.17g\n", i, j,
              tree.distance(i, j) * scale);
  return 0;
}

int cmd_distortion(int argc, char** argv) {
  if (argc < 4) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const PointSet points = read_csv_points_file(argv[3]);
  if (points.size() != tree.num_points()) {
    std::fprintf(stderr, "csv has %zu points but tree embeds %zu\n",
                 points.size(), tree.num_points());
    return 2;
  }
  // Ratios against the original input distances, in input units.
  const auto pairs = sample_pairs(points.size(), 20000, 1);
  double min_ratio = 1e300, max_ratio = 0.0, sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [i, j] : pairs) {
    const double true_dist = l2_distance(points[i], points[j]);
    if (true_dist == 0.0) continue;
    const double ratio = tree.distance(i, j) * scale / true_dist;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    sum += ratio;
    ++counted;
  }
  std::printf("pairs: %zu\nmin ratio:  %.4f\nmean ratio: %.4f\n"
              "max ratio:  %.4f\n",
              counted, min_ratio, sum / static_cast<double>(counted),
              max_ratio);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  std::vector<std::string> trees;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &trees, &flags)) return usage();
  if (trees.empty() || flag_value(flags, "--port", "").empty()) {
    return usage();
  }

  std::vector<Embedding> members;
  members.reserve(trees.size());
  for (const std::string& path : trees) {
    members.push_back(load_embedding(path));
  }
  auto ensemble = EmbeddingEnsemble::from_members(std::move(members));
  if (!ensemble.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 ensemble.status().to_string().c_str());
    return 2;
  }

  serve::ServiceOptions options;
  options.max_batch = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--batch", "64").c_str()));
  options.max_wait = std::chrono::microseconds(
      std::atoll(flag_value(flags, "--wait-us", "200").c_str()));
  options.max_queue = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--queue", "4096").c_str()));
  options.cache_bytes = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--cache-bytes", "1048576").c_str()));
  options.eval_threads = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--threads", "0").c_str()));
  serve::EmbeddingService service(std::move(ensemble).value(), options);

  serve::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(
      std::atoi(flag_value(flags, "--port", "0").c_str()));
  serve::SocketServer server(service, server_options);
  const auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "serve: %s\n", port.status().to_string().c_str());
    return 2;
  }
  std::printf("serving %zu points, %zu tree(s) on 127.0.0.1:%u "
              "(batch=%zu wait=%lldus queue=%zu cache=%zuB)\n",
              service.num_points(), service.ensemble().size(),
              static_cast<unsigned>(*port), options.max_batch,
              static_cast<long long>(options.max_wait.count()),
              options.max_queue, options.cache_bytes);
  std::fflush(stdout);
  server.wait();
  server.stop();
  const serve::ServiceStats stats = service.stats();
  std::printf("shutdown: completed=%llu rejected=%llu qps=%.1f "
              "hit_rate=%.3f p50_ms=%.3f p99_ms=%.3f\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected_queue_full +
                                              stats.rejected_deadline),
              stats.qps, stats.cache_hit_rate, stats.p50_ms, stats.p99_ms);
  return 0;
}

int cmd_bench_client(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &positional, &flags)) return usage();
  const std::string port_text = flag_value(flags, "--port", "");
  if (!positional.empty() || port_text.empty()) return usage();

  const auto port = static_cast<std::uint16_t>(std::atoi(port_text.c_str()));
  const std::string host = flag_value(flags, "--host", "127.0.0.1");
  const auto clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atoll(flag_value(flags, "--clients", "4").c_str())));
  const auto total_queries = std::max<std::size_t>(
      clients, static_cast<std::size_t>(
                   std::atoll(flag_value(flags, "--queries", "1000").c_str())));
  const auto pipeline = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atoll(flag_value(flags, "--pipeline", "32").c_str())));
  const std::string kind = flag_value(flags, "--kind", "dist");
  const bool shutdown = flag_value(flags, "--shutdown", "") == "1";

  // One probe connection discovers the point count.
  std::size_t points = 0;
  {
    serve::LineClient probe;
    const Status connected = probe.connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "bench-client: %s\n",
                   connected.to_string().c_str());
      return 2;
    }
    const auto info = probe.roundtrip("info");
    if (!info.ok() || std::sscanf(info->c_str(), "ok info points=%zu",
                                  &points) != 1 ||
        points < 2) {
      std::fprintf(stderr, "bench-client: bad info reply\n");
      return 2;
    }
  }

  // Deterministic per-client query streams: query i of client c is a pure
  // function of (c, i), mixing "dist" with knn/range when --kind=mix.
  const auto query_line = [&](std::size_t client, std::size_t i) {
    const std::uint64_t h = mix64(hash_combine(client + 1, i));
    const std::size_t p = h % points;
    const std::size_t q = (p + 1 + (h >> 32) % (points - 1)) % points;
    std::string which = kind;
    if (kind == "mix") {
      which = (h % 8 < 6) ? "dist" : (h % 8 == 6 ? "knn" : "range");
    }
    if (which == "knn") return "knn " + std::to_string(p) + " 4";
    if (which == "range") return "range " + std::to_string(p) + " 100.0";
    return "dist " + std::to_string(p) + " " + std::to_string(q);
  };

  std::vector<std::uint64_t> ok_counts(clients, 0);
  std::vector<std::uint64_t> err_counts(clients, 0);
  const std::size_t per_client = total_queries / clients;
  Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::LineClient client;
      if (!client.connect(host, port).ok()) {
        err_counts[c] = per_client;
        return;
      }
      std::size_t done = 0;
      while (done < per_client) {
        const std::size_t window = std::min(pipeline, per_client - done);
        std::string lines;
        for (std::size_t i = 0; i < window; ++i) {
          lines += query_line(c, done + i) + "\n";
        }
        // One write, `window` reads: the server batches the whole window.
        if (!client.send_line(lines.substr(0, lines.size() - 1)).ok()) {
          err_counts[c] += window;
          done += window;
          continue;
        }
        for (std::size_t i = 0; i < window; ++i) {
          const auto reply = client.read_line();
          if (reply.ok() && serve::is_ok_line(*reply)) {
            ++ok_counts[c];
          } else {
            ++err_counts[c];
          }
        }
        done += window;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = timer.seconds();

  std::uint64_t ok_total = 0, err_total = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    ok_total += ok_counts[c];
    err_total += err_counts[c];
  }
  const double qps = elapsed > 0.0
                         ? static_cast<double>(ok_total) / elapsed
                         : 0.0;
  std::printf("clients:  %zu\n", clients);
  std::printf("queries:  %llu ok, %llu err\n",
              static_cast<unsigned long long>(ok_total),
              static_cast<unsigned long long>(err_total));
  std::printf("elapsed:  %.3f s\n", elapsed);
  std::printf("qps:      %.1f\n", qps);

  serve::LineClient control;
  if (control.connect(host, port).ok()) {
    const auto stats = control.roundtrip("stats");
    if (stats.ok()) std::printf("server:   %s\n", stats->c_str());
    if (shutdown) {
      const auto reply = control.roundtrip("shutdown");
      std::printf("shutdown: %s\n",
                  reply.ok() ? reply->c_str() : "(no reply)");
    }
  }
  return err_total == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "embed") return cmd_embed(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "distortion") return cmd_distortion(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "bench-client") return cmd_bench_client(argc, argv);
    // Unknown subcommands are a usage error (exit 1), never a crash.
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
