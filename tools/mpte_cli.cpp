// mpte_cli — command-line front end to the library.
//
//   mpte_cli generate <n> <dim> <kind> <out.csv> [seed]
//       kind: uniform | clusters | blobs | subspace
//   mpte_cli embed <in.csv> <out.tree> [method] [seed]
//       method: hybrid (default) | grid | ball
//       Writes the tree plus its input-unit scale; prints pipeline stats.
//   mpte_cli stats <tree>
//   mpte_cli query <tree> <i> <j>
//   mpte_cli distortion <tree> <in.csv>
//
// Exit codes: 0 success, 1 usage, 2 runtime failure (including the
// Theorem-1 coverage-failure report).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/embedder.hpp"
#include "core/embedding_io.hpp"
#include "geometry/csv_io.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"
#include "tree/hst_io.hpp"

namespace {

using namespace mpte;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mpte_cli generate <n> <dim> "
               "<uniform|clusters|blobs|subspace> <out.csv> [seed]\n"
               "  mpte_cli embed <in.csv> <out.tree> [hybrid|grid|ball] "
               "[seed]\n"
               "  mpte_cli stats <tree>\n"
               "  mpte_cli query <tree> <i> <j>\n"
               "  mpte_cli distortion <tree> <in.csv>\n");
  return 1;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto n = static_cast<std::size_t>(std::atoll(argv[2]));
  const auto dim = static_cast<std::size_t>(std::atoll(argv[3]));
  const std::string kind = argv[4];
  const std::string path = argv[5];
  const std::uint64_t seed =
      argc > 6 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : 1;

  PointSet points;
  if (kind == "uniform") {
    points = generate_uniform_cube(n, dim, 100.0, seed);
  } else if (kind == "clusters") {
    points = generate_gaussian_clusters(n, dim, 8, 100.0, 1.0, seed);
  } else if (kind == "blobs") {
    points = generate_two_blobs(n, dim, 100.0, 1.0, seed);
  } else if (kind == "subspace") {
    points = generate_subspace(n, dim, std::max<std::size_t>(2, dim / 8),
                               100.0, 0.1, seed);
  } else {
    return usage();
  }
  write_csv_points_file(points, path);
  std::printf("wrote %zu x %zu points to %s\n", points.size(), points.dim(),
              path.c_str());
  return 0;
}

int cmd_embed(int argc, char** argv) {
  if (argc < 4) return usage();
  const PointSet points = read_csv_points_file(argv[2]);
  EmbedOptions options;
  if (argc > 4) {
    const std::string method = argv[4];
    if (method == "grid") {
      options.method = PartitionMethod::kGrid;
    } else if (method == "ball") {
      options.method = PartitionMethod::kBall;
    } else if (method == "hybrid") {
      options.method = PartitionMethod::kHybrid;
    } else {
      return usage();
    }
  }
  if (argc > 5) options.seed = static_cast<std::uint64_t>(std::atoll(argv[5]));

  const auto result = embed(points, options);
  if (!result.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  save_embedding(*result, argv[3], /*include_points=*/false);
  const HstShape shape = hst_shape(result->tree);
  std::printf("embedded %zu points (R^%zu -> dim %zu, fjlt=%s, delta=%llu, "
              "r=%u, U=%zu)\n",
              points.size(), points.dim(), result->dim_used,
              result->fjlt_applied ? "yes" : "no",
              static_cast<unsigned long long>(result->delta_used),
              result->buckets_used, result->grids_used);
  std::printf("tree: %zu nodes, depth %zu -> %s\n", shape.nodes, shape.depth,
              argv[3]);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const HstShape shape = hst_shape(tree);
  std::printf("points:        %zu\n", tree.num_points());
  std::printf("nodes:         %zu (%zu internal, %zu leaves)\n", shape.nodes,
              shape.internal_nodes, shape.leaves);
  std::printf("depth:         %zu\n", shape.depth);
  std::printf("max branching: %zu\n", shape.max_branching);
  std::printf("unit scale:    %.17g\n", scale);
  const Status valid = tree.validate();
  std::printf("validate:      %s\n", valid.ok() ? "ok" : valid.to_string().c_str());
  return valid.ok() ? 0 : 2;
}

int cmd_query(int argc, char** argv) {
  if (argc < 5) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const auto i = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto j = static_cast<std::size_t>(std::atoll(argv[4]));
  if (i >= tree.num_points() || j >= tree.num_points()) {
    std::fprintf(stderr, "point index out of range (n=%zu)\n",
                 tree.num_points());
    return 2;
  }
  std::printf("dist_T(%zu, %zu) = %.17g\n", i, j,
              tree.distance(i, j) * scale);
  return 0;
}

int cmd_distortion(int argc, char** argv) {
  if (argc < 4) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const PointSet points = read_csv_points_file(argv[3]);
  if (points.size() != tree.num_points()) {
    std::fprintf(stderr, "csv has %zu points but tree embeds %zu\n",
                 points.size(), tree.num_points());
    return 2;
  }
  // Ratios against the original input distances, in input units.
  const auto pairs = sample_pairs(points.size(), 20000, 1);
  double min_ratio = 1e300, max_ratio = 0.0, sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [i, j] : pairs) {
    const double true_dist = l2_distance(points[i], points[j]);
    if (true_dist == 0.0) continue;
    const double ratio = tree.distance(i, j) * scale / true_dist;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    sum += ratio;
    ++counted;
  }
  std::printf("pairs: %zu\nmin ratio:  %.4f\nmean ratio: %.4f\n"
              "max ratio:  %.4f\n",
              counted, min_ratio, sum / static_cast<double>(counted),
              max_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "embed") return cmd_embed(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "distortion") return cmd_distortion(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
