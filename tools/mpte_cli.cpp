// mpte_cli — command-line front end to the library.
//
//   mpte_cli generate <n> <dim> <kind> <out.csv> [seed]
//       kind: uniform | clusters | blobs | subspace
//   mpte_cli embed <in.csv> <out.tree> [method] [seed]
//       [--checkpoint-dir D] [--every K] [--crash-at R]
//       [--trace-out FILE] [--metrics-out FILE]
//       method: hybrid (default) | grid | ball | mpc
//       Writes the tree plus its input-unit scale; prints pipeline stats.
//       `mpc` runs the distributed pipeline on a simulated cluster and
//       also prints the per-channel communication breakdown (top 5).
//       --checkpoint-dir (mpc only) snapshots the cluster every K rounds
//       (default 1) into D, plus a manifest describing the run; --crash-at
//       injects a deterministic rank crash at round R and exits 3, leaving
//       D resumable. --trace-out records a span trace of the run as
//       Chrome-trace JSON (open in Perfetto); --metrics-out writes the
//       run's metrics registry as Prometheus text (docs/observability.md).
//       Neither flag changes the embedding — output is byte-identical
//       with or without them.
//   mpte_cli resume <checkpoint-dir> [--trace-out FILE] [--metrics-out FILE]
//       Restores the newest snapshot written by `embed ... mpc
//       --checkpoint-dir` and finishes the run it describes: the output
//       tree is byte-identical to the uninterrupted run's.
//   mpte_cli stats <tree>
//   mpte_cli query <tree> <i> <j>
//   mpte_cli distortion <tree> <in.csv>
//   mpte_cli serve <tree...> --port <p> [--batch N] [--wait-us N]
//       [--queue N] [--cache-bytes N] [--threads N]
//       [--trace-out FILE] [--metrics-out FILE]
//       Long-lived query service over the newline protocol
//       (docs/serving.md); multiple tree files form an ensemble. Runs
//       until a client sends `shutdown`, then prints final stats.
//   mpte_cli serve --dynamic <in.csv> --port <p> [--trees T] [--seed S]
//       [--method hybrid|grid|ball] [--updates FILE] [...serve flags]
//       Dynamic mode: builds a DynamicEnsemble over the CSV points and
//       serves it with live upsert/remove support (each drained batch of
//       updates publishes one new ensemble epoch). --updates replays a
//       file of wire-format upsert/remove lines through the service
//       before accepting connections.
//   mpte_cli dyncheck <in.csv> [--updates FILE] [--trees T] [--seed S]
//       [--method hybrid|grid|ball]
//       Correctness check for the dynamic layer: applies the updates to a
//       DynamicEnsemble, publishes, rebuilds a static ensemble over the
//       same final point set, and compares per-member tree fingerprints.
//       Exit 0 on MATCH, 2 on MISMATCH.
//   mpte_cli bench-client --port <p> [--host H] [--clients C]
//       [--queries Q] [--pipeline K] [--kind dist|knn|range|mix]
//       [--updates K] [--shutdown]
//       Load generator: C connections issue Q total queries, pipelined
//       K per write; reports achieved qps and the server's stats line.
//       --updates K runs a concurrent upsert+remove burst (dynamic
//       servers only) while the queries flow, verifying that published
//       epochs advance monotonically. --shutdown stops the server
//       afterwards.
//
// Exit codes: 0 success, 1 usage (incl. unknown subcommands), 2 runtime
// failure (including the Theorem-1 coverage-failure report and
// bench-client runs that saw any error response), 3 injected crash
// (`embed ... --crash-at`), leaving a resumable checkpoint directory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/manager.hpp"
#include "ckpt/recovery.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/embedder.hpp"
#include "core/embedding_io.hpp"
#include "core/ensemble.hpp"
#include "core/mpc_embedder.hpp"
#include "dyn/dynamic_ensemble.hpp"
#include "geometry/csv_io.hpp"
#include "geometry/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"
#include "tree/hst_io.hpp"

namespace {

using namespace mpte;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mpte_cli generate <n> <dim> "
               "<uniform|clusters|blobs|subspace> <out.csv> [seed]\n"
               "  mpte_cli embed <in.csv> <out.tree> [hybrid|grid|ball|mpc] "
               "[seed]\n"
               "            [--checkpoint-dir D] [--every K] [--crash-at R] "
               "(mpc only)\n"
               "            [--backend inproc|proc] [--ranks M] "
               "[--workers persistent|fork]\n"
               "            [--transport shm|socketpair] (mpc only)\n"
               "            [--trace-out FILE] [--metrics-out FILE]\n"
               "  mpte_cli resume <checkpoint-dir> [--trace-out FILE] "
               "[--metrics-out FILE]\n"
               "  mpte_cli stats <tree>\n"
               "  mpte_cli query <tree> <i> <j>\n"
               "  mpte_cli distortion <tree> <in.csv>\n"
               "  mpte_cli serve <tree...> --port <p> [--batch N] "
               "[--wait-us N] [--queue N]\n"
               "            [--cache-bytes N] [--threads N] "
               "[--trace-out FILE] [--metrics-out FILE]\n"
               "  mpte_cli serve --dynamic <in.csv> --port <p> [--trees T] "
               "[--seed S]\n"
               "            [--method hybrid|grid|ball] [--updates FILE] "
               "[...serve flags]\n"
               "  mpte_cli dyncheck <in.csv> [--updates FILE] [--trees T] "
               "[--seed S]\n"
               "            [--method hybrid|grid|ball]\n"
               "  mpte_cli bench-client --port <p> [--host H] "
               "[--clients C] [--queries Q]\n"
               "            [--pipeline K] [--kind dist|knn|range|mix] "
               "[--updates K] [--shutdown]\n");
  return 1;
}

/// Parses "--flag value" and "--flag=value" forms after `from`; returns
/// false (usage error) on an unknown flag or missing value. Positional
/// arguments (no leading --) are collected into `positional`.
bool parse_flags(int argc, char** argv, int from,
                 std::vector<std::string>* positional,
                 std::vector<std::pair<std::string, std::string>>* flags) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(arg);
      continue;
    }
    if (const std::size_t eq = arg.find('=');
        eq != std::string::npos && eq > 2) {
      flags->emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    if (arg == "--shutdown") {  // the only value-less flag
      flags->emplace_back(arg, "1");
      continue;
    }
    if (i + 1 >= argc) return false;
    flags->emplace_back(arg, argv[++i]);
  }
  return true;
}

std::string flag_value(
    const std::vector<std::pair<std::string, std::string>>& flags,
    const std::string& name, const std::string& fallback) {
  for (const auto& [flag, value] : flags) {
    if (flag == name) return value;
  }
  return fallback;
}

/// --trace-out / --metrics-out destinations shared by embed/serve/resume.
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;
};

ObsOutputs obs_outputs(
    const std::vector<std::pair<std::string, std::string>>& flags) {
  return {flag_value(flags, "--trace-out", ""),
          flag_value(flags, "--metrics-out", "")};
}

/// Starts span recording if a trace artifact was requested. Tracing is
/// observation only: the traced run's output is byte-identical to an
/// untraced one (the tracer never perturbs algorithm state).
void arm_tracer(const ObsOutputs& outputs) {
  if (!outputs.trace_path.empty()) obs::Tracer::global().enable();
}

Status write_text_file(const std::string& path, const std::string& text) {
  return write_file_atomic(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
}

/// Writes the requested trace/metrics artifacts; `fill` populates the
/// metrics registry (RoundStats::export_metrics for cluster runs,
/// EmbeddingService::export_metrics for serve, ...). Returns 0 or 2.
template <typename Fill>
int write_obs_artifacts(const ObsOutputs& outputs, Fill&& fill) {
  if (!outputs.trace_path.empty()) {
    auto& tracer = obs::Tracer::global();
    const Status wrote =
        write_text_file(outputs.trace_path, tracer.chrome_trace_json());
    if (!wrote.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", wrote.to_string().c_str());
      return 2;
    }
    std::printf("trace: %zu spans -> %s\n", tracer.size(),
                outputs.trace_path.c_str());
  }
  if (!outputs.metrics_path.empty()) {
    obs::Registry registry;
    fill(&registry);
    const Status wrote =
        write_text_file(outputs.metrics_path, registry.prometheus_text());
    if (!wrote.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n", wrote.to_string().c_str());
      return 2;
    }
    std::printf("metrics: -> %s\n", outputs.metrics_path.c_str());
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto n = static_cast<std::size_t>(std::atoll(argv[2]));
  const auto dim = static_cast<std::size_t>(std::atoll(argv[3]));
  const std::string kind = argv[4];
  const std::string path = argv[5];
  const std::uint64_t seed =
      argc > 6 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : 1;

  PointSet points;
  if (kind == "uniform") {
    points = generate_uniform_cube(n, dim, 100.0, seed);
  } else if (kind == "clusters") {
    points = generate_gaussian_clusters(n, dim, 8, 100.0, 1.0, seed);
  } else if (kind == "blobs") {
    points = generate_two_blobs(n, dim, 100.0, 1.0, seed);
  } else if (kind == "subspace") {
    points = generate_subspace(n, dim, std::max<std::size_t>(2, dim / 8),
                               100.0, 0.1, seed);
  } else {
    return usage();
  }
  write_csv_points_file(points, path);
  std::printf("wrote %zu x %zu points to %s\n", points.size(), points.dim(),
              path.c_str());
  return 0;
}

/// The cluster geometry used by `embed ... mpc` and reproduced by
/// `resume`: machine memory is sized so the run fits the model comfortably
/// (this is a demo of the pipeline, not a scalability experiment —
/// bench_mpc_* cover that).
mpc::ClusterConfig mpc_cli_config(std::size_t input_bytes,
                                  mpc::Backend backend, std::size_t ranks) {
  mpc::ClusterConfig config;
  config.num_machines = std::max<std::size_t>(1, ranks);
  config.local_memory_bytes = std::max<std::size_t>(1 << 22, 4 * input_bytes);
  config.backend = backend;
  return config;
}

const char* backend_name(mpc::Backend backend) {
  return backend == mpc::Backend::kMultiProcess ? "proc" : "inproc";
}

/// Parses --backend; empty Result on an unknown name (usage error).
Result<mpc::Backend> parse_backend(const std::string& name) {
  if (name == "inproc") return mpc::Backend::kInProcess;
  if (name == "proc") return mpc::Backend::kMultiProcess;
  return Status(StatusCode::kInvalidArgument,
                "unknown --backend '" + name + "' (want inproc|proc)");
}

const char* workers_name(mpc::IpcOptions::WorkerMode workers) {
  return workers == mpc::IpcOptions::WorkerMode::kForkPerRound ? "fork"
                                                               : "persistent";
}

/// Parses --workers; only meaningful with --backend proc but always
/// accepted (ignored under inproc, like the rest of IpcOptions).
Result<mpc::IpcOptions::WorkerMode> parse_workers(const std::string& name) {
  if (name == "persistent") return mpc::IpcOptions::WorkerMode::kPersistent;
  if (name == "fork") return mpc::IpcOptions::WorkerMode::kForkPerRound;
  return Status(StatusCode::kInvalidArgument,
                "unknown --workers '" + name + "' (want persistent|fork)");
}

const char* transport_name(mpc::IpcOptions::Transport transport) {
  return transport == mpc::IpcOptions::Transport::kSocketpair ? "socketpair"
                                                              : "shm";
}

/// Parses --transport; only meaningful with --backend proc but always
/// accepted (ignored under inproc, like the rest of IpcOptions).
Result<mpc::IpcOptions::Transport> parse_transport(const std::string& name) {
  if (name == "shm") return mpc::IpcOptions::Transport::kShmRing;
  if (name == "socketpair") return mpc::IpcOptions::Transport::kSocketpair;
  return Status(StatusCode::kInvalidArgument,
                "unknown --transport '" + name + "' (want shm|socketpair)");
}

/// Stable fingerprint of the tree file's payload, printed by both the
/// embed and resume paths so runs are easy to compare.
std::uint64_t embedding_fingerprint(const Embedding& embedding) {
  return fnv1a64(embedding_to_bytes(embedding, /*include_points=*/false));
}

/// The run description `resume` needs: one key=value line each.
struct CkptManifest {
  std::string input;
  std::string output;
  std::uint64_t seed = 1;
  std::size_t every = 1;
  /// Cluster geometry + substrate, recorded so resume rebuilds the same
  /// cluster (the fingerprint depends on the rank count).
  mpc::Backend backend = mpc::Backend::kInProcess;
  std::size_t ranks = 8;
  mpc::IpcOptions::WorkerMode workers =
      mpc::IpcOptions::WorkerMode::kPersistent;
  mpc::IpcOptions::Transport transport = mpc::IpcOptions::Transport::kShmRing;
  /// Comma-joined round labels committed before a crash. Written when an
  /// embed run dies so resume can check that the re-driven pipeline
  /// replays the same program; empty until then.
  std::string program;
};

Status write_manifest(const std::string& dir, const CkptManifest& manifest) {
  std::ostringstream out;
  out << "input=" << manifest.input << "\n"
      << "output=" << manifest.output << "\n"
      << "seed=" << manifest.seed << "\n"
      << "every=" << manifest.every << "\n"
      << "backend=" << backend_name(manifest.backend) << "\n"
      << "ranks=" << manifest.ranks << "\n"
      << "workers=" << workers_name(manifest.workers) << "\n"
      << "transport=" << transport_name(manifest.transport) << "\n";
  if (!manifest.program.empty()) {
    out << "program=" << manifest.program << "\n";
  }
  const std::string text = out.str();
  return write_file_atomic(
      dir + "/manifest.txt",
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Result<CkptManifest> read_manifest(const std::string& dir) {
  std::ifstream in(dir + "/manifest.txt");
  if (!in) {
    return Status(StatusCode::kUnavailable,
                  "resume: cannot open " + dir + "/manifest.txt");
  }
  CkptManifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "input") manifest.input = value;
    if (key == "output") manifest.output = value;
    if (key == "seed") {
      manifest.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    }
    if (key == "every") {
      manifest.every = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(value.c_str())));
    }
    if (key == "backend") {
      const auto backend = parse_backend(value);
      if (backend.ok()) manifest.backend = *backend;
    }
    if (key == "ranks") {
      manifest.ranks = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(value.c_str())));
    }
    if (key == "workers") {
      const auto workers = parse_workers(value);
      if (workers.ok()) manifest.workers = *workers;
    }
    if (key == "transport") {
      const auto transport = parse_transport(value);
      if (transport.ok()) manifest.transport = *transport;
    }
    if (key == "program") manifest.program = value;
  }
  if (manifest.input.empty() || manifest.output.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "resume: manifest missing input/output paths");
  }
  return manifest;
}

/// Shared tail of embed-mpc and resume: persist and describe the result.
int report_mpc_embedding(const mpc::Cluster& cluster,
                         const mpc::ClusterConfig& config,
                         const PointSet& points,
                         const MpcEmbedding& result,
                         const std::string& out_path) {
  const Embedding embedding{result.tree,           result.embedded_points,
                            result.scale_to_input, result.delta_used,
                            result.buckets_used,   result.grids_used,
                            result.dim_used,       result.fjlt_applied,
                            result.retries_used,   /*point_ids=*/{}};
  save_embedding(embedding, out_path, /*include_points=*/false);

  const HstShape shape = hst_shape(result.tree);
  std::printf("embedded %zu points (R^%zu -> dim %zu, fjlt=%s, delta=%llu, "
              "r=%u, U=%zu)\n",
              points.size(), points.dim(), result.dim_used,
              result.fjlt_applied ? "yes" : "no",
              static_cast<unsigned long long>(result.delta_used),
              result.buckets_used, result.grids_used);
  std::printf("tree: %zu nodes, depth %zu -> %s\n", shape.nodes, shape.depth,
              out_path.c_str());
  std::printf("cluster: %zu machines, %zu B local memory, %zu rounds, "
              "%s backend\n",
              config.num_machines, config.local_memory_bytes,
              result.rounds_used, backend_name(config.backend));
  std::printf("fingerprint: %llu\n",
              static_cast<unsigned long long>(
                  embedding_fingerprint(embedding)));

  const auto totals = cluster.stats().channel_totals();
  std::size_t all_bytes = 0;
  for (const auto& [channel, bytes] : totals) all_bytes += bytes;
  std::printf("communication: %zu B over %zu channels; top %zu:\n", all_bytes,
              totals.size(), std::min<std::size_t>(5, totals.size()));
  for (std::size_t i = 0; i < totals.size() && i < 5; ++i) {
    std::printf("  %-24s %12zu B\n", totals[i].first.c_str(),
                totals[i].second);
  }
  const auto& resilience = cluster.stats().resilience();
  if (resilience.any()) {
    std::printf("resilience: checkpoints=%zu (%zu B) recoveries=%zu "
                "replayed=%zu\n",
                resilience.checkpoints_written, resilience.checkpoint_bytes,
                resilience.recoveries, resilience.rounds_replayed);
  }
  return 0;
}

/// `embed ... mpc`: the distributed pipeline on a simulated cluster,
/// optionally checkpointed (and deterministically crashed) via mpte::ckpt.
int cmd_embed_mpc(const PointSet& points, const std::string& in_path,
                  const std::string& out_path, std::uint64_t seed,
                  const std::string& checkpoint_dir, std::size_t every,
                  long long crash_at, mpc::Backend backend,
                  std::size_t ranks, mpc::IpcOptions::WorkerMode workers,
                  mpc::IpcOptions::Transport transport,
                  const ObsOutputs& outputs) {
  arm_tracer(outputs);
  const std::size_t input_bytes =
      points.size() * std::max<std::size_t>(points.dim(), 1) * sizeof(double);
  mpc::ClusterConfig config = mpc_cli_config(input_bytes, backend, ranks);
  config.ipc.workers = workers;
  config.ipc.transport = transport;
  if (!checkpoint_dir.empty()) {
    config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
    config.checkpoint.directory = checkpoint_dir;
    config.checkpoint.every_k = every;
  }
  mpc::Cluster cluster(config);

  ckpt::FaultPlan plan;
  if (crash_at >= 0) {
    plan.add_crash(static_cast<std::size_t>(crash_at), /*rank=*/1);
  }
  ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster,
                                                                 plan);
  if (!checkpoint_dir.empty() || crash_at >= 0) {
    cluster.set_hooks(&coordinator);
  }
  if (!checkpoint_dir.empty()) {
    // Written before the run so a killed process leaves a resumable dir.
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    CkptManifest manifest{in_path,   out_path, seed,
                          every,     backend,  ranks,
                          workers,   transport, /*program=*/""};
    const Status wrote = write_manifest(checkpoint_dir, manifest);
    if (!wrote.ok()) {
      std::fprintf(stderr, "mpc embed: %s\n", wrote.to_string().c_str());
      return 2;
    }
  }

  MpcEmbedOptions options;
  options.seed = seed;
  try {
    const auto result = mpc_embed(cluster, points, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mpc embed failed: %s\n",
                   result.status().to_string().c_str());
      return 2;
    }
    const int rc =
        report_mpc_embedding(cluster, config, points, *result, out_path);
    if (rc != 0) return rc;
    return write_obs_artifacts(outputs, [&](obs::Registry* registry) {
      cluster.stats().export_metrics(registry);
      // Transport counters exist only after a multi-process round ran.
      if (const auto* executor = cluster.round_executor()) {
        executor->export_metrics(*registry);
      }
    });
  } catch (const mpc::RankCrashed& crash) {
    if (!checkpoint_dir.empty()) {
      // Record the program (the committed round-label sequence) so resume
      // can validate that the restored snapshot replays the same steps.
      std::string program;
      for (const auto& record : cluster.stats().records()) {
        if (!program.empty()) program += ',';
        program += record.label;
      }
      CkptManifest manifest{in_path, out_path, seed,      every,
                            backend, ranks,    workers,   transport,
                            program};
      const Status wrote = write_manifest(checkpoint_dir, manifest);
      if (!wrote.ok()) {
        std::fprintf(stderr, "mpc embed: %s\n", wrote.to_string().c_str());
      }
    }
    std::fprintf(stderr,
                 "mpc embed: %s; checkpoints in %s (finish with: mpte_cli "
                 "resume %s)\n",
                 crash.what(),
                 checkpoint_dir.empty() ? "(none)" : checkpoint_dir.c_str(),
                 checkpoint_dir.c_str());
    return 3;
  }
}

/// `resume <dir>`: restore the newest snapshot and finish the manifest's
/// run. The re-driven pipeline fast-forwards the committed rounds, so the
/// output tree is byte-identical to an uninterrupted run's.
int cmd_resume(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &positional, &flags)) return usage();
  if (positional.empty()) return usage();
  const ObsOutputs outputs = obs_outputs(flags);
  arm_tracer(outputs);
  const std::string dir = positional[0];
  const auto manifest = read_manifest(dir);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s\n", manifest.status().to_string().c_str());
    return 2;
  }
  const PointSet points = read_csv_points_file(manifest->input);
  const std::size_t input_bytes =
      points.size() * std::max<std::size_t>(points.dim(), 1) * sizeof(double);
  mpc::ClusterConfig config =
      mpc_cli_config(input_bytes, manifest->backend, manifest->ranks);
  config.ipc.workers = manifest->workers;
  config.ipc.transport = manifest->transport;
  config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir;
  config.checkpoint.every_k = manifest->every;
  mpc::Cluster cluster(config);

  ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
  cluster.set_hooks(&coordinator);
  coordinator.restore_latest(cluster);
  std::printf("restored %zu committed rounds from %s\n",
              cluster.stats().rounds(), dir.c_str());

  // If the crashed run recorded its program, check the restored snapshot
  // replays a prefix of it: a label mismatch means the checkpoint came
  // from a different pipeline (or build) and the resumed tree would
  // silently diverge from the original run's.
  if (!manifest->program.empty()) {
    std::vector<std::string> program;
    std::size_t start = 0;
    while (start <= manifest->program.size()) {
      const std::size_t comma = manifest->program.find(',', start);
      program.push_back(manifest->program.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    const auto& records = cluster.stats().records();
    if (records.size() > program.size()) {
      std::fprintf(stderr,
                   "resume: snapshot has %zu rounds but manifest program "
                   "lists %zu\n",
                   records.size(), program.size());
      return 2;
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].label != program[i]) {
        std::fprintf(stderr,
                     "resume: round %zu label '%s' != manifest program "
                     "step '%s'\n",
                     i, records[i].label.c_str(), program[i].c_str());
        return 2;
      }
    }
  }

  MpcEmbedOptions options;
  options.seed = manifest->seed;
  const auto result = ckpt::run_with_recovery(
      cluster, coordinator,
      [&] { return mpc_embed(cluster, points, options); });
  if (!result.ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  const int rc = report_mpc_embedding(cluster, config, points, *result,
                                      manifest->output);
  if (rc != 0) return rc;
  return write_obs_artifacts(outputs, [&](obs::Registry* registry) {
    cluster.stats().export_metrics(registry);
    if (const auto* executor = cluster.round_executor()) {
      executor->export_metrics(*registry);
    }
  });
}

int cmd_embed(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &positional, &flags)) return usage();
  if (positional.size() < 2) return usage();
  const PointSet points = read_csv_points_file(positional[0]);
  const std::uint64_t seed =
      positional.size() > 3
          ? static_cast<std::uint64_t>(std::atoll(positional[3].c_str()))
          : 1;
  const std::string checkpoint_dir =
      flag_value(flags, "--checkpoint-dir", "");
  const ObsOutputs outputs = obs_outputs(flags);
  EmbedOptions options;
  if (positional.size() > 2) {
    const std::string method = positional[2];
    if (method == "mpc") {
      const auto every = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::atoll(flag_value(flags, "--every", "1").c_str())));
      const long long crash_at =
          std::atoll(flag_value(flags, "--crash-at", "-1").c_str());
      const auto backend =
          parse_backend(flag_value(flags, "--backend", "inproc"));
      if (!backend.ok()) {
        std::fprintf(stderr, "%s\n", backend.status().to_string().c_str());
        return usage();
      }
      const auto ranks = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::atoll(flag_value(flags, "--ranks", "8").c_str())));
      const auto workers =
          parse_workers(flag_value(flags, "--workers", "persistent"));
      if (!workers.ok()) {
        std::fprintf(stderr, "%s\n", workers.status().to_string().c_str());
        return usage();
      }
      const auto transport =
          parse_transport(flag_value(flags, "--transport", "shm"));
      if (!transport.ok()) {
        std::fprintf(stderr, "%s\n",
                     transport.status().to_string().c_str());
        return usage();
      }
      return cmd_embed_mpc(points, positional[0], positional[1], seed,
                           checkpoint_dir, every, crash_at, *backend, ranks,
                           *workers, *transport, outputs);
    } else if (method == "grid") {
      options.method = PartitionMethod::kGrid;
    } else if (method == "ball") {
      options.method = PartitionMethod::kBall;
    } else if (method == "hybrid") {
      options.method = PartitionMethod::kHybrid;
    } else {
      return usage();
    }
  }
  // The checkpoint flags only mean something for the mpc pipeline.
  if (!checkpoint_dir.empty()) return usage();
  options.seed = seed;

  arm_tracer(outputs);
  const auto result = embed(points, options);
  if (!result.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  save_embedding(*result, positional[1], /*include_points=*/false);
  const HstShape shape = hst_shape(result->tree);
  std::printf("embedded %zu points (R^%zu -> dim %zu, fjlt=%s, delta=%llu, "
              "r=%u, U=%zu)\n",
              points.size(), points.dim(), result->dim_used,
              result->fjlt_applied ? "yes" : "no",
              static_cast<unsigned long long>(result->delta_used),
              result->buckets_used, result->grids_used);
  std::printf("tree: %zu nodes, depth %zu -> %s\n", shape.nodes, shape.depth,
              positional[1].c_str());
  return write_obs_artifacts(outputs, [&](obs::Registry* registry) {
    registry->gauge("mpte_embed_points", "Points embedded.")
        .set(static_cast<double>(points.size()));
    registry->gauge("mpte_embed_tree_nodes", "Nodes in the output HST.")
        .set(static_cast<double>(shape.nodes));
    registry->gauge("mpte_embed_tree_depth", "Depth of the output HST.")
        .set(static_cast<double>(shape.depth));
  });
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const HstShape shape = hst_shape(tree);
  std::printf("points:        %zu\n", tree.num_points());
  std::printf("nodes:         %zu (%zu internal, %zu leaves)\n", shape.nodes,
              shape.internal_nodes, shape.leaves);
  std::printf("depth:         %zu\n", shape.depth);
  std::printf("max branching: %zu\n", shape.max_branching);
  std::printf("unit scale:    %.17g\n", scale);
  const Status valid = tree.validate();
  std::printf("validate:      %s\n", valid.ok() ? "ok" : valid.to_string().c_str());
  return valid.ok() ? 0 : 2;
}

int cmd_query(int argc, char** argv) {
  if (argc < 5) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const auto i = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto j = static_cast<std::size_t>(std::atoll(argv[4]));
  if (i >= tree.num_points() || j >= tree.num_points()) {
    std::fprintf(stderr, "point index out of range (n=%zu)\n",
                 tree.num_points());
    return 2;
  }
  std::printf("dist_T(%zu, %zu) = %.17g\n", i, j,
              tree.distance(i, j) * scale);
  return 0;
}

int cmd_distortion(int argc, char** argv) {
  if (argc < 4) return usage();
  const Embedding embedding = load_embedding(argv[2]);
  const Hst& tree = embedding.tree;
  const double scale = embedding.scale_to_input;
  const PointSet points = read_csv_points_file(argv[3]);
  if (points.size() != tree.num_points()) {
    std::fprintf(stderr, "csv has %zu points but tree embeds %zu\n",
                 points.size(), tree.num_points());
    return 2;
  }
  // Ratios against the original input distances, in input units.
  const auto pairs = sample_pairs(points.size(), 20000, 1);
  double min_ratio = 1e300, max_ratio = 0.0, sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [i, j] : pairs) {
    const double true_dist = l2_distance(points[i], points[j]);
    if (true_dist == 0.0) continue;
    const double ratio = tree.distance(i, j) * scale / true_dist;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    sum += ratio;
    ++counted;
  }
  std::printf("pairs: %zu\nmin ratio:  %.4f\nmean ratio: %.4f\n"
              "max ratio:  %.4f\n",
              counted, min_ratio, sum / static_cast<double>(counted),
              max_ratio);
  return 0;
}

/// Shared by `serve --dynamic` and `dyncheck`: builds a DynamicEnsemble
/// over a CSV point set from the --trees/--seed/--method flags.
Result<std::unique_ptr<dyn::DynamicEnsemble>> build_dynamic_ensemble(
    const std::string& csv_path,
    const std::vector<std::pair<std::string, std::string>>& flags) {
  dyn::DynamicEnsemble::Options options;
  options.trees = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atoll(flag_value(flags, "--trees", "4").c_str())));
  options.member.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(flags, "--seed", "1").c_str()));
  const std::string method = flag_value(flags, "--method", "hybrid");
  if (method == "grid") {
    options.member.method = PartitionMethod::kGrid;
  } else if (method == "ball") {
    options.member.method = PartitionMethod::kBall;
  } else if (method == "hybrid") {
    options.member.method = PartitionMethod::kHybrid;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "unknown --method '" + method + "' (want hybrid|grid|ball)");
  }
  const PointSet points = read_csv_points_file(csv_path);
  return dyn::DynamicEnsemble::create(points, options);
}

/// Parses an updates file (one wire-format `upsert ...` / `remove <id>`
/// line per line; blank lines and '#' comments skipped) into requests.
Result<std::vector<serve::Request>> read_updates_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kUnavailable,
                  "cannot open updates file '" + path + "'");
  }
  std::vector<serve::Request> updates;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto parsed = serve::parse_request(line);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    path + ":" + std::to_string(line_no) + ": " +
                        parsed.status().message());
    }
    if (!serve::is_update(parsed->kind)) {
      return Status(StatusCode::kInvalidArgument,
                    path + ":" + std::to_string(line_no) +
                        ": only upsert/remove lines are allowed");
    }
    updates.push_back(std::move(*parsed));
  }
  return updates;
}

int cmd_serve(int argc, char** argv) {
  std::vector<std::string> trees;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &trees, &flags)) return usage();
  const std::string dynamic_csv = flag_value(flags, "--dynamic", "");
  if (flag_value(flags, "--port", "").empty()) return usage();
  // Exactly one of: positional tree files (static) or --dynamic (live).
  if (trees.empty() == dynamic_csv.empty()) return usage();
  const std::string updates_path = flag_value(flags, "--updates", "");
  if (!updates_path.empty() && dynamic_csv.empty()) {
    std::fprintf(stderr, "serve: --updates requires --dynamic\n");
    return usage();
  }

  const ObsOutputs outputs = obs_outputs(flags);
  arm_tracer(outputs);

  serve::ServiceOptions options;
  options.max_batch = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--batch", "64").c_str()));
  options.max_wait = std::chrono::microseconds(
      std::atoll(flag_value(flags, "--wait-us", "200").c_str()));
  options.max_queue = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--queue", "4096").c_str()));
  options.cache_bytes = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--cache-bytes", "1048576").c_str()));
  options.eval_threads = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--threads", "0").c_str()));

  // EmbeddingService is neither copyable nor movable (it owns the batcher
  // thread), so construct in place once the mode is known.
  std::optional<serve::EmbeddingService> service;
  if (dynamic_csv.empty()) {
    std::vector<Embedding> members;
    members.reserve(trees.size());
    for (const std::string& path : trees) {
      members.push_back(load_embedding(path));
    }
    auto ensemble = EmbeddingEnsemble::from_members(std::move(members));
    if (!ensemble.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   ensemble.status().to_string().c_str());
      return 2;
    }
    service.emplace(std::move(ensemble).value(), options);
  } else {
    auto dynamic = build_dynamic_ensemble(dynamic_csv, flags);
    if (!dynamic.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   dynamic.status().to_string().c_str());
      return 2;
    }
    service.emplace(std::move(*dynamic), options);
  }

  if (!updates_path.empty()) {
    auto updates = read_updates_file(updates_path);
    if (!updates.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   updates.status().to_string().c_str());
      return 2;
    }
    // Chunked so a large replay file cannot trip admission control.
    std::size_t replay_ok = 0, replay_err = 0;
    for (std::size_t at = 0; at < updates->size(); at += 512) {
      const std::size_t end = std::min(updates->size(), at + 512);
      std::vector<serve::Request> chunk(updates->begin() + at,
                                        updates->begin() + end);
      auto futures = service->submit_batch(chunk);
      for (auto& future : futures) {
        if (future.get().ok()) {
          ++replay_ok;
        } else {
          ++replay_err;
        }
      }
    }
    std::printf("replayed %zu update(s) from %s (%zu ok, %zu err) -> "
                "epoch %llu\n",
                updates->size(), updates_path.c_str(), replay_ok, replay_err,
                static_cast<unsigned long long>(service->epoch()));
    if (replay_err != 0) return 2;
  }

  serve::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(
      std::atoi(flag_value(flags, "--port", "0").c_str()));
  serve::SocketServer server(*service, server_options);
  const auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "serve: %s\n", port.status().to_string().c_str());
    return 2;
  }
  std::printf("serving %zu points, %zu tree(s) on 127.0.0.1:%u "
              "(%s epoch=%llu batch=%zu wait=%lldus queue=%zu cache=%zuB)\n",
              service->num_points(), service->ensemble().size(),
              static_cast<unsigned>(*port),
              service->is_dynamic() ? "dynamic" : "static",
              static_cast<unsigned long long>(service->epoch()),
              options.max_batch,
              static_cast<long long>(options.max_wait.count()),
              options.max_queue, options.cache_bytes);
  std::fflush(stdout);
  server.wait();
  server.stop();
  const serve::ServiceStats stats = service->stats();
  std::printf("shutdown: completed=%llu rejected=%llu qps=%.1f "
              "hit_rate=%.3f p50_ms=%.3f p99_ms=%.3f epoch=%llu\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected_queue_full +
                                              stats.rejected_deadline),
              stats.qps, stats.cache_hit_rate, stats.p50_ms, stats.p99_ms,
              static_cast<unsigned long long>(service->epoch()));
  return write_obs_artifacts(outputs, [&](obs::Registry* registry) {
    service->export_metrics(registry);
  });
}

/// `dyncheck` — the dynamic layer's end-to-end oracle, runnable from the
/// shell (CI's live-update smoke drives it): apply updates dynamically,
/// then prove the result byte-identical to a from-scratch static build
/// over the same final set by comparing per-member tree fingerprints.
int cmd_dyncheck(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &positional, &flags)) return usage();
  if (positional.size() != 1) return usage();

  const PointSet initial = read_csv_points_file(positional[0]);
  auto dynamic = build_dynamic_ensemble(positional[0], flags);
  if (!dynamic.ok()) {
    std::fprintf(stderr, "dyncheck: %s\n",
                 dynamic.status().to_string().c_str());
    return 2;
  }
  dyn::DynamicEnsemble& ensemble = **dynamic;

  // Mirror of the live set in input units: the static rebuild needs the
  // final points, and DynamicEmbedder records only snapped coordinates.
  std::map<std::uint64_t, std::vector<double>> inputs;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const auto point = initial[i];
    inputs.emplace(static_cast<std::uint64_t>(i),
                   std::vector<double>(point.begin(), point.end()));
  }

  std::size_t applied = 0;
  const std::string updates_path = flag_value(flags, "--updates", "");
  if (!updates_path.empty()) {
    auto updates = read_updates_file(updates_path);
    if (!updates.ok()) {
      std::fprintf(stderr, "dyncheck: %s\n",
                   updates.status().to_string().c_str());
      return 2;
    }
    for (const serve::Request& update : *updates) {
      if (update.kind == serve::RequestKind::kUpsert) {
        const auto id = ensemble.insert(update.coords);
        if (!id.ok()) {
          std::fprintf(stderr, "dyncheck: upsert: %s\n",
                       id.status().to_string().c_str());
          return 2;
        }
        inputs[*id] = update.coords;
      } else {
        const Status erased = ensemble.erase(update.id);
        if (!erased.ok()) {
          std::fprintf(stderr, "dyncheck: remove %llu: %s\n",
                       static_cast<unsigned long long>(update.id),
                       erased.to_string().c_str());
          return 2;
        }
        inputs.erase(update.id);
      }
      ++applied;
    }
  }

  const auto published = ensemble.publish();
  if (!published.ok()) {
    std::fprintf(stderr, "dyncheck: publish: %s\n",
                 published.status().to_string().c_str());
    return 2;
  }
  const dyn::EnsembleEpoch& epoch = **published;

  // The static oracle: rebuild from scratch over the final set (ascending
  // stable-id order == the dense order materialize() uses) with the same
  // root seed; EmbeddingEnsemble::build re-derives the member seeds.
  PointSet final_points;
  for (const std::uint64_t id : epoch.point_ids) {
    final_points.push_back(inputs.at(id));
  }
  EmbedOptions static_options =
      ensemble.member(0).static_equivalent_options();
  static_options.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(flags, "--seed", "1").c_str()));
  auto rebuilt = EmbeddingEnsemble::build(final_points, static_options,
                                          ensemble.num_members());
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "dyncheck: static rebuild: %s\n",
                 rebuilt.status().to_string().c_str());
    return 2;
  }

  std::printf("points: %zu -> %zu (%zu update(s) applied, epoch %llu)\n",
              initial.size(), epoch.num_points(), applied,
              static_cast<unsigned long long>(epoch.version));
  std::size_t matched = 0;
  for (std::size_t t = 0; t < ensemble.num_members(); ++t) {
    const std::uint64_t dynamic_fp =
        fnv1a64(hst_to_bytes(epoch.ensemble->member(t).tree));
    const std::uint64_t static_fp =
        fnv1a64(hst_to_bytes(rebuilt->member(t).tree));
    const bool match = dynamic_fp == static_fp;
    matched += match ? 1 : 0;
    std::printf("member %zu: dynamic=%016llx static=%016llx %s\n", t,
                static_cast<unsigned long long>(dynamic_fp),
                static_cast<unsigned long long>(static_fp),
                match ? "MATCH" : "MISMATCH");
  }
  const bool all = matched == ensemble.num_members();
  std::printf("dyncheck: %s (%zu/%zu members byte-identical)\n",
              all ? "MATCH" : "MISMATCH", matched, ensemble.num_members());
  return all ? 0 : 2;
}

int cmd_bench_client(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  if (!parse_flags(argc, argv, 2, &positional, &flags)) return usage();
  const std::string port_text = flag_value(flags, "--port", "");
  if (!positional.empty() || port_text.empty()) return usage();

  const auto port = static_cast<std::uint16_t>(std::atoi(port_text.c_str()));
  const std::string host = flag_value(flags, "--host", "127.0.0.1");
  const auto clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atoll(flag_value(flags, "--clients", "4").c_str())));
  const auto total_queries = std::max<std::size_t>(
      clients, static_cast<std::size_t>(
                   std::atoll(flag_value(flags, "--queries", "1000").c_str())));
  const auto pipeline = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::atoll(flag_value(flags, "--pipeline", "32").c_str())));
  const std::string kind = flag_value(flags, "--kind", "dist");
  const auto updates = static_cast<std::size_t>(
      std::atoll(flag_value(flags, "--updates", "0").c_str()));
  const bool shutdown = flag_value(flags, "--shutdown", "") == "1";

  // Transient connect failures (server still binding, accept backlog
  // full under C concurrent dials) surface as kUnavailable; retry with
  // capped exponential backoff. Anything else — and exhaustion — is
  // terminal: kAborted, no retry.
  const auto connect_with_backoff = [&](serve::LineClient& client) {
    auto delay = std::chrono::milliseconds(10);
    constexpr auto kMaxDelay = std::chrono::milliseconds(500);
    constexpr int kAttempts = 8;
    Status last = Status::Ok();
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      last = client.connect(host, port);
      if (last.ok() || last.code() != StatusCode::kUnavailable) return last;
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
    }
    return Status(StatusCode::kAborted,
                  "connect retries exhausted: " + last.to_string());
  };

  // One probe connection discovers the served shape. The epoch and dim
  // fields only matter for --updates (upserts need one coordinate per
  // dim; epochs must advance across published update batches).
  std::size_t points = 0, trees_served = 0, dim = 0;
  unsigned long long epoch_start = 0;
  {
    serve::LineClient probe;
    const Status connected = connect_with_backoff(probe);
    if (!connected.ok()) {
      std::fprintf(stderr, "bench-client: %s\n",
                   connected.to_string().c_str());
      return 2;
    }
    const auto info = probe.roundtrip("info");
    if (!info.ok() ||
        std::sscanf(info->c_str(),
                    "ok info points=%zu trees=%zu epoch=%llu dim=%zu",
                    &points, &trees_served, &epoch_start, &dim) != 4 ||
        points < 2) {
      std::fprintf(stderr, "bench-client: bad info reply\n");
      return 2;
    }
  }

  // Deterministic per-client query streams: query i of client c is a pure
  // function of (c, i), mixing "dist" with knn/range when --kind=mix.
  const auto query_line = [&](std::size_t client, std::size_t i) {
    const std::uint64_t h = mix64(hash_combine(client + 1, i));
    const std::size_t p = h % points;
    const std::size_t q = (p + 1 + (h >> 32) % (points - 1)) % points;
    std::string which = kind;
    if (kind == "mix") {
      which = (h % 8 < 6) ? "dist" : (h % 8 == 6 ? "knn" : "range");
    }
    if (which == "knn") return "knn " + std::to_string(p) + " 4";
    if (which == "range") return "range " + std::to_string(p) + " 100.0";
    return "dist " + std::to_string(p) + " " + std::to_string(q);
  };

  // The update burst runs on its own connection *concurrently* with the
  // query workers — the point is that queries keep getting answered while
  // epochs roll over. Each round trips one upsert then removes the id it
  // was assigned, so the served point count is unchanged afterwards;
  // every reply's epoch must be >= the last one seen (batches publish
  // monotonically increasing versions).
  std::uint64_t update_ok = 0, update_err = 0;
  unsigned long long epoch_last = epoch_start;
  const auto run_updates = [&] {
    serve::LineClient client;
    if (!connect_with_backoff(client).ok()) {
      update_err = 2 * updates;
      return;
    }
    for (std::size_t k = 0; k < updates; ++k) {
      std::string line = "upsert";
      for (std::size_t j = 0; j < dim; ++j) {
        const std::uint64_t h = mix64(hash_combine(k + 1, j));
        line += " " + std::to_string(static_cast<double>(h % 1000) / 10.0);
      }
      unsigned long long id = 0, epoch = 0;
      const auto upserted = client.roundtrip(line);
      if (!upserted.ok() ||
          std::sscanf(upserted->c_str(), "ok upsert id=%llu epoch=%llu",
                      &id, &epoch) != 2 ||
          epoch < epoch_last) {
        update_err += 2;
        continue;
      }
      epoch_last = epoch;
      ++update_ok;
      const auto removed =
          client.roundtrip("remove " + std::to_string(id));
      unsigned long long removed_id = 0;
      if (!removed.ok() ||
          std::sscanf(removed->c_str(), "ok remove id=%llu epoch=%llu",
                      &removed_id, &epoch) != 2 ||
          removed_id != id || epoch < epoch_last) {
        ++update_err;
        continue;
      }
      epoch_last = epoch;
      ++update_ok;
    }
  };

  std::vector<std::uint64_t> ok_counts(clients, 0);
  std::vector<std::uint64_t> err_counts(clients, 0);
  const std::size_t per_client = total_queries / clients;
  Timer timer;
  std::thread updater;
  if (updates > 0) updater = std::thread(run_updates);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::LineClient client;
      if (!connect_with_backoff(client).ok()) {
        err_counts[c] = per_client;
        return;
      }
      std::size_t done = 0;
      while (done < per_client) {
        const std::size_t window = std::min(pipeline, per_client - done);
        std::string lines;
        for (std::size_t i = 0; i < window; ++i) {
          lines += query_line(c, done + i) + "\n";
        }
        // One write, `window` reads: the server batches the whole window.
        if (!client.send_line(lines.substr(0, lines.size() - 1)).ok()) {
          err_counts[c] += window;
          done += window;
          continue;
        }
        for (std::size_t i = 0; i < window; ++i) {
          const auto reply = client.read_line();
          if (reply.ok() && serve::is_ok_line(*reply)) {
            ++ok_counts[c];
          } else {
            ++err_counts[c];
          }
        }
        done += window;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (updater.joinable()) updater.join();
  const double elapsed = timer.seconds();

  std::uint64_t ok_total = 0, err_total = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    ok_total += ok_counts[c];
    err_total += err_counts[c];
  }
  const double qps = elapsed > 0.0
                         ? static_cast<double>(ok_total) / elapsed
                         : 0.0;
  std::printf("clients:  %zu\n", clients);
  std::printf("queries:  %llu ok, %llu err\n",
              static_cast<unsigned long long>(ok_total),
              static_cast<unsigned long long>(err_total));
  err_total += update_err;  // update failures also fail the run (exit 2)
  if (updates > 0) {
    std::printf("updates:  %llu ok, %llu err, epoch %llu -> %llu\n",
                static_cast<unsigned long long>(update_ok),
                static_cast<unsigned long long>(update_err), epoch_start,
                epoch_last);
  }
  std::printf("elapsed:  %.3f s\n", elapsed);
  std::printf("qps:      %.1f\n", qps);

  serve::LineClient control;
  if (control.connect(host, port).ok()) {
    const auto stats = control.roundtrip("stats");
    if (stats.ok()) std::printf("server:   %s\n", stats->c_str());
    if (shutdown) {
      const auto reply = control.roundtrip("shutdown");
      std::printf("shutdown: %s\n",
                  reply.ok() ? reply->c_str() : "(no reply)");
    }
  }
  return err_total == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "embed") return cmd_embed(argc, argv);
    if (command == "resume") return cmd_resume(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "distortion") return cmd_distortion(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "dyncheck") return cmd_dyncheck(argc, argv);
    if (command == "bench-client") return cmd_bench_client(argc, argv);
    // Unknown subcommands are a usage error (exit 1), never a crash.
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
