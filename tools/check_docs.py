#!/usr/bin/env python3
"""Documentation lint for the mpte repo (CI `docs` job).

Three checks, all fail-closed:

1. Intra-repo markdown links. Every relative `[text](target)` in a
   tracked .md file must point at a file or directory that exists.
   External schemes (http/https/mailto) and pure fragments (#...) are
   skipped; a `path#fragment` link is checked for `path` only.

2. CLI usage drift. Every `--flag` mentioned in tools/mpte_cli.cpp
   comments or usage() text, or in a markdown line that shows an
   `mpte_cli` invocation, must actually be parsed by the CLI (appear in
   a flag_value()/`arg == "--x"` site). Documenting a flag the binary
   rejects is the docs bug this guards against.

3. Metric name drift. Every `mpte_*` metric named in the docs must
   exist somewhere in the source tree (src/tests/bench/tools), either
   as a verbatim string or as the prefix of a runtime-concatenated name
   (`"mpte_mpc_profile_" + phase`). `{a,b}` alternations in docs expand
   to each candidate; `{label="..."}` selectors and `<placeholder>`
   names are ignored. Documenting a metric nothing exports is the
   observability-docs bug this guards against.

Usage: python3 tools/check_docs.py [repo-root]   (default: script's parent)
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".github"}
# Generic placeholders in prose ("--flag value" pairs), not real flags.
PLACEHOLDER_FLAGS = {"--flag"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")
IMPLEMENTED_RE = re.compile(
    r'flag_value\(\s*flags\s*,\s*"(--[a-z0-9-]+)"|arg\s*==\s*"(--[a-z0-9-]+)"'
)


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_links(root):
    errors = []
    for path in markdown_files(root):
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        in_code_block = False
        for lineno, line in enumerate(lines, 1):
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
                continue
            if in_code_block:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path),
                                 target.split("#", 1)[0])
                )
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    errors.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"(resolved to {os.path.relpath(resolved, root)})"
                    )
    return errors


def implemented_flags(cli_source):
    flags = set()
    for match in IMPLEMENTED_RE.finditer(cli_source):
        flags.add(match.group(1) or match.group(2))
    return flags


def documented_flags(root, cli_source):
    """(flag, where) pairs from CLI comments/usage text and from markdown
    lines that show an mpte_cli invocation."""
    mentions = []
    for lineno, line in enumerate(cli_source.splitlines(), 1):
        stripped = line.strip()
        # Comments document the interface; string literals are usage()
        # text. Either way a mentioned flag must exist.
        if stripped.startswith("//") or '"' in stripped:
            code = stripped
            if not stripped.startswith("//"):
                # Only look inside string literals on code lines, else the
                # parser sites themselves would count as documentation.
                code = " ".join(re.findall(r'"([^"]*)"', stripped))
            for flag in FLAG_RE.findall(code):
                mentions.append((flag, f"tools/mpte_cli.cpp:{lineno}"))
    for path in markdown_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                if "mpte_cli" not in line:
                    continue
                for flag in FLAG_RE.findall(line):
                    mentions.append((flag, f"{rel}:{lineno}"))
    return mentions


def check_flags(root):
    cli_path = os.path.join(root, "tools", "mpte_cli.cpp")
    with open(cli_path, encoding="utf-8") as handle:
        cli_source = handle.read()
    implemented = implemented_flags(cli_source)
    if not implemented:
        return [f"{cli_path}: found no implemented flags — parser changed?"]
    errors = []
    for flag, where in documented_flags(root, cli_source):
        if flag not in implemented and flag not in PLACEHOLDER_FLAGS:
            errors.append(
                f"{where}: documents '{flag}' but mpte_cli does not parse it"
            )
    return errors


METRIC_TOKEN_RE = re.compile(r"mpte_[a-zA-Z0-9_{},]*")
CODE_DIRS = ("src", "tests", "bench", "tools")
CODE_SUFFIXES = (".cpp", ".hpp", ".h", ".py", ".cmake", "CMakeLists.txt")
# Artifact outputs (BENCH_*.metrics.prom etc.) are generated *from* code
# names; they must not satisfy the check by themselves.
METRIC_PLACEHOLDER_CHARS = ("<", "*", "...")


def normalize_metric_token(token):
    """Strips a `{label="..."}` selector, leaving the bare metric name.
    Returns None for tokens that are placeholders rather than names."""
    if any(ch in token for ch in METRIC_PLACEHOLDER_CHARS):
        return None
    # A `{` starting an unbalanced brace group is a Prometheus label
    # selector (`mpte_x_total{step="sort"}`): the name ends there. A
    # balanced group is a documented alternation (`mpte_ipc_{a,b}_total`)
    # and is kept for expansion.
    if token.count("{") != token.count("}"):
        token = token.split("{", 1)[0]
    return token.rstrip("_,")


def expand_alternations(name):
    """mpte_a_{x,y}_total -> [mpte_a_x_total, mpte_a_y_total]."""
    names = [name]
    while any("{" in n for n in names):
        expanded = []
        for n in names:
            if "{" not in n:
                expanded.append(n)
                continue
            head, rest = n.split("{", 1)
            group, tail = rest.split("}", 1)
            for alt in group.split(","):
                expanded.append(head + alt + tail)
        names = expanded
    return names


def documented_metrics(root):
    """(metric-name, where) pairs for every mpte_* token in the docs."""
    mentions = []
    for path in markdown_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                for token in METRIC_TOKEN_RE.findall(line):
                    name = normalize_metric_token(token)
                    if name is None or "{" in name and "}" not in name:
                        continue
                    for expanded in expand_alternations(name):
                        # Bare "mpte_cli"-style words are tool names, not
                        # metrics; metrics have at least two more path
                        # segments (subsystem + meaning).
                        if expanded.count("_") >= 2:
                            mentions.append((expanded, f"{rel}:{lineno}"))
    return mentions


def code_corpus(root):
    chunks = []
    for base in CODE_DIRS:
        top = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(CODE_SUFFIXES):
                    path = os.path.join(dirpath, name)
                    with open(path, encoding="utf-8",
                              errors="replace") as handle:
                        chunks.append(handle.read())
    return "\n".join(chunks)


def metric_exists(name, corpus):
    """True when the source tree can produce a metric called `name`:
    either the full name appears verbatim, or some proper prefix ends a
    string literal (runtime concatenation like
    `std::string("mpte_mpc_profile_") + phase`)."""
    if name in corpus:
        return True
    for cut in range(len(name) - 1, 5, -1):
        if name[cut] != "_":
            continue
        if (name[: cut + 1] + '"') in corpus:
            return True
    return False


def check_metrics(root):
    corpus = code_corpus(root)
    if "mpte_" not in corpus:
        return ["source tree exports no mpte_* names — corpus scan broken?"]
    errors = []
    seen = set()
    for name, where in documented_metrics(root):
        if (name, where) in seen:
            continue
        seen.add((name, where))
        if not metric_exists(name, corpus):
            errors.append(
                f"{where}: documents metric '{name}' but nothing in "
                f"src/tests/bench/tools exports it"
            )
    return errors


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    errors = check_links(root) + check_flags(root) + check_metrics(root)
    for error in errors:
        print(f"check_docs: {error}")
    if errors:
        print(f"check_docs: {len(errors)} error(s)")
        return 1
    print("check_docs: all markdown links resolve, all documented CLI "
          "flags are implemented, and all documented metrics exist")
    return 0


if __name__ == "__main__":
    sys.exit(main())
