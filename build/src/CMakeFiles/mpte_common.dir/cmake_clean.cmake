file(REMOVE_RECURSE
  "CMakeFiles/mpte_common.dir/common/math_util.cpp.o"
  "CMakeFiles/mpte_common.dir/common/math_util.cpp.o.d"
  "CMakeFiles/mpte_common.dir/common/rng.cpp.o"
  "CMakeFiles/mpte_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/mpte_common.dir/common/serialize.cpp.o"
  "CMakeFiles/mpte_common.dir/common/serialize.cpp.o.d"
  "CMakeFiles/mpte_common.dir/common/status.cpp.o"
  "CMakeFiles/mpte_common.dir/common/status.cpp.o.d"
  "CMakeFiles/mpte_common.dir/common/timer.cpp.o"
  "CMakeFiles/mpte_common.dir/common/timer.cpp.o.d"
  "libmpte_common.a"
  "libmpte_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
