file(REMOVE_RECURSE
  "libmpte_common.a"
)
