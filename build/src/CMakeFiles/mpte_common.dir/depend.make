# Empty dependencies file for mpte_common.
# This may be replaced when dependencies are built.
