
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/densest_ball.cpp" "src/CMakeFiles/mpte_apps.dir/apps/densest_ball.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/densest_ball.cpp.o.d"
  "/root/repo/src/apps/emd.cpp" "src/CMakeFiles/mpte_apps.dir/apps/emd.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/emd.cpp.o.d"
  "/root/repo/src/apps/kcenter.cpp" "src/CMakeFiles/mpte_apps.dir/apps/kcenter.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/kcenter.cpp.o.d"
  "/root/repo/src/apps/kmedian.cpp" "src/CMakeFiles/mpte_apps.dir/apps/kmedian.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/kmedian.cpp.o.d"
  "/root/repo/src/apps/min_cost_flow.cpp" "src/CMakeFiles/mpte_apps.dir/apps/min_cost_flow.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/min_cost_flow.cpp.o.d"
  "/root/repo/src/apps/mpc_apps.cpp" "src/CMakeFiles/mpte_apps.dir/apps/mpc_apps.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/mpc_apps.cpp.o.d"
  "/root/repo/src/apps/mst.cpp" "src/CMakeFiles/mpte_apps.dir/apps/mst.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/mst.cpp.o.d"
  "/root/repo/src/apps/nearest_neighbor.cpp" "src/CMakeFiles/mpte_apps.dir/apps/nearest_neighbor.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/nearest_neighbor.cpp.o.d"
  "/root/repo/src/apps/union_find.cpp" "src/CMakeFiles/mpte_apps.dir/apps/union_find.cpp.o" "gcc" "src/CMakeFiles/mpte_apps.dir/apps/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
