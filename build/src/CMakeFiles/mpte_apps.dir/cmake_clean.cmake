file(REMOVE_RECURSE
  "CMakeFiles/mpte_apps.dir/apps/densest_ball.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/densest_ball.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/emd.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/emd.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/kcenter.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/kcenter.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/kmedian.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/kmedian.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/min_cost_flow.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/min_cost_flow.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/mpc_apps.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/mpc_apps.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/mst.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/mst.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/nearest_neighbor.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/nearest_neighbor.cpp.o.d"
  "CMakeFiles/mpte_apps.dir/apps/union_find.cpp.o"
  "CMakeFiles/mpte_apps.dir/apps/union_find.cpp.o.d"
  "libmpte_apps.a"
  "libmpte_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
