# Empty dependencies file for mpte_apps.
# This may be replaced when dependencies are built.
