file(REMOVE_RECURSE
  "libmpte_apps.a"
)
