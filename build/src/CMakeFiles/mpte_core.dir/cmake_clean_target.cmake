file(REMOVE_RECURSE
  "libmpte_core.a"
)
