# Empty compiler generated dependencies file for mpte_core.
# This may be replaced when dependencies are built.
