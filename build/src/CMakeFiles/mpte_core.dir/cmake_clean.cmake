file(REMOVE_RECURSE
  "CMakeFiles/mpte_core.dir/core/embedder.cpp.o"
  "CMakeFiles/mpte_core.dir/core/embedder.cpp.o.d"
  "CMakeFiles/mpte_core.dir/core/embedding_io.cpp.o"
  "CMakeFiles/mpte_core.dir/core/embedding_io.cpp.o.d"
  "CMakeFiles/mpte_core.dir/core/ensemble.cpp.o"
  "CMakeFiles/mpte_core.dir/core/ensemble.cpp.o.d"
  "CMakeFiles/mpte_core.dir/core/mpc_embedder.cpp.o"
  "CMakeFiles/mpte_core.dir/core/mpc_embedder.cpp.o.d"
  "CMakeFiles/mpte_core.dir/core/mpc_stages.cpp.o"
  "CMakeFiles/mpte_core.dir/core/mpc_stages.cpp.o.d"
  "libmpte_core.a"
  "libmpte_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
