
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedder.cpp" "src/CMakeFiles/mpte_core.dir/core/embedder.cpp.o" "gcc" "src/CMakeFiles/mpte_core.dir/core/embedder.cpp.o.d"
  "/root/repo/src/core/embedding_io.cpp" "src/CMakeFiles/mpte_core.dir/core/embedding_io.cpp.o" "gcc" "src/CMakeFiles/mpte_core.dir/core/embedding_io.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/CMakeFiles/mpte_core.dir/core/ensemble.cpp.o" "gcc" "src/CMakeFiles/mpte_core.dir/core/ensemble.cpp.o.d"
  "/root/repo/src/core/mpc_embedder.cpp" "src/CMakeFiles/mpte_core.dir/core/mpc_embedder.cpp.o" "gcc" "src/CMakeFiles/mpte_core.dir/core/mpc_embedder.cpp.o.d"
  "/root/repo/src/core/mpc_stages.cpp" "src/CMakeFiles/mpte_core.dir/core/mpc_stages.cpp.o" "gcc" "src/CMakeFiles/mpte_core.dir/core/mpc_stages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
