
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/cluster.cpp" "src/CMakeFiles/mpte_mpc.dir/mpc/cluster.cpp.o" "gcc" "src/CMakeFiles/mpte_mpc.dir/mpc/cluster.cpp.o.d"
  "/root/repo/src/mpc/machine.cpp" "src/CMakeFiles/mpte_mpc.dir/mpc/machine.cpp.o" "gcc" "src/CMakeFiles/mpte_mpc.dir/mpc/machine.cpp.o.d"
  "/root/repo/src/mpc/primitives.cpp" "src/CMakeFiles/mpte_mpc.dir/mpc/primitives.cpp.o" "gcc" "src/CMakeFiles/mpte_mpc.dir/mpc/primitives.cpp.o.d"
  "/root/repo/src/mpc/round_stats.cpp" "src/CMakeFiles/mpte_mpc.dir/mpc/round_stats.cpp.o" "gcc" "src/CMakeFiles/mpte_mpc.dir/mpc/round_stats.cpp.o.d"
  "/root/repo/src/mpc/sort.cpp" "src/CMakeFiles/mpte_mpc.dir/mpc/sort.cpp.o" "gcc" "src/CMakeFiles/mpte_mpc.dir/mpc/sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
