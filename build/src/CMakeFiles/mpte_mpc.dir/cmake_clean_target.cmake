file(REMOVE_RECURSE
  "libmpte_mpc.a"
)
