file(REMOVE_RECURSE
  "CMakeFiles/mpte_mpc.dir/mpc/cluster.cpp.o"
  "CMakeFiles/mpte_mpc.dir/mpc/cluster.cpp.o.d"
  "CMakeFiles/mpte_mpc.dir/mpc/machine.cpp.o"
  "CMakeFiles/mpte_mpc.dir/mpc/machine.cpp.o.d"
  "CMakeFiles/mpte_mpc.dir/mpc/primitives.cpp.o"
  "CMakeFiles/mpte_mpc.dir/mpc/primitives.cpp.o.d"
  "CMakeFiles/mpte_mpc.dir/mpc/round_stats.cpp.o"
  "CMakeFiles/mpte_mpc.dir/mpc/round_stats.cpp.o.d"
  "CMakeFiles/mpte_mpc.dir/mpc/sort.cpp.o"
  "CMakeFiles/mpte_mpc.dir/mpc/sort.cpp.o.d"
  "libmpte_mpc.a"
  "libmpte_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
