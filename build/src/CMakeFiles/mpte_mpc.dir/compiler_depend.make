# Empty compiler generated dependencies file for mpte_mpc.
# This may be replaced when dependencies are built.
