# Empty dependencies file for mpte_geometry.
# This may be replaced when dependencies are built.
