file(REMOVE_RECURSE
  "CMakeFiles/mpte_geometry.dir/geometry/bounding_box.cpp.o"
  "CMakeFiles/mpte_geometry.dir/geometry/bounding_box.cpp.o.d"
  "CMakeFiles/mpte_geometry.dir/geometry/csv_io.cpp.o"
  "CMakeFiles/mpte_geometry.dir/geometry/csv_io.cpp.o.d"
  "CMakeFiles/mpte_geometry.dir/geometry/generators.cpp.o"
  "CMakeFiles/mpte_geometry.dir/geometry/generators.cpp.o.d"
  "CMakeFiles/mpte_geometry.dir/geometry/point_set.cpp.o"
  "CMakeFiles/mpte_geometry.dir/geometry/point_set.cpp.o.d"
  "CMakeFiles/mpte_geometry.dir/geometry/quantize.cpp.o"
  "CMakeFiles/mpte_geometry.dir/geometry/quantize.cpp.o.d"
  "libmpte_geometry.a"
  "libmpte_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
