file(REMOVE_RECURSE
  "libmpte_geometry.a"
)
