
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/bounding_box.cpp" "src/CMakeFiles/mpte_geometry.dir/geometry/bounding_box.cpp.o" "gcc" "src/CMakeFiles/mpte_geometry.dir/geometry/bounding_box.cpp.o.d"
  "/root/repo/src/geometry/csv_io.cpp" "src/CMakeFiles/mpte_geometry.dir/geometry/csv_io.cpp.o" "gcc" "src/CMakeFiles/mpte_geometry.dir/geometry/csv_io.cpp.o.d"
  "/root/repo/src/geometry/generators.cpp" "src/CMakeFiles/mpte_geometry.dir/geometry/generators.cpp.o" "gcc" "src/CMakeFiles/mpte_geometry.dir/geometry/generators.cpp.o.d"
  "/root/repo/src/geometry/point_set.cpp" "src/CMakeFiles/mpte_geometry.dir/geometry/point_set.cpp.o" "gcc" "src/CMakeFiles/mpte_geometry.dir/geometry/point_set.cpp.o.d"
  "/root/repo/src/geometry/quantize.cpp" "src/CMakeFiles/mpte_geometry.dir/geometry/quantize.cpp.o" "gcc" "src/CMakeFiles/mpte_geometry.dir/geometry/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
