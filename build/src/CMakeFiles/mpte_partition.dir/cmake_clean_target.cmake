file(REMOVE_RECURSE
  "libmpte_partition.a"
)
