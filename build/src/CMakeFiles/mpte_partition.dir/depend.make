# Empty dependencies file for mpte_partition.
# This may be replaced when dependencies are built.
