
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/analysis.cpp" "src/CMakeFiles/mpte_partition.dir/partition/analysis.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/analysis.cpp.o.d"
  "/root/repo/src/partition/ball_partition.cpp" "src/CMakeFiles/mpte_partition.dir/partition/ball_partition.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/ball_partition.cpp.o.d"
  "/root/repo/src/partition/coverage.cpp" "src/CMakeFiles/mpte_partition.dir/partition/coverage.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/coverage.cpp.o.d"
  "/root/repo/src/partition/grid_partition.cpp" "src/CMakeFiles/mpte_partition.dir/partition/grid_partition.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/grid_partition.cpp.o.d"
  "/root/repo/src/partition/hybrid_partition.cpp" "src/CMakeFiles/mpte_partition.dir/partition/hybrid_partition.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/hybrid_partition.cpp.o.d"
  "/root/repo/src/partition/sphere_caps.cpp" "src/CMakeFiles/mpte_partition.dir/partition/sphere_caps.cpp.o" "gcc" "src/CMakeFiles/mpte_partition.dir/partition/sphere_caps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
