file(REMOVE_RECURSE
  "CMakeFiles/mpte_partition.dir/partition/analysis.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/analysis.cpp.o.d"
  "CMakeFiles/mpte_partition.dir/partition/ball_partition.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/ball_partition.cpp.o.d"
  "CMakeFiles/mpte_partition.dir/partition/coverage.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/coverage.cpp.o.d"
  "CMakeFiles/mpte_partition.dir/partition/grid_partition.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/grid_partition.cpp.o.d"
  "CMakeFiles/mpte_partition.dir/partition/hybrid_partition.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/hybrid_partition.cpp.o.d"
  "CMakeFiles/mpte_partition.dir/partition/sphere_caps.cpp.o"
  "CMakeFiles/mpte_partition.dir/partition/sphere_caps.cpp.o.d"
  "libmpte_partition.a"
  "libmpte_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
