file(REMOVE_RECURSE
  "libmpte_transform.a"
)
