file(REMOVE_RECURSE
  "CMakeFiles/mpte_transform.dir/transform/dense_jl.cpp.o"
  "CMakeFiles/mpte_transform.dir/transform/dense_jl.cpp.o.d"
  "CMakeFiles/mpte_transform.dir/transform/fjlt.cpp.o"
  "CMakeFiles/mpte_transform.dir/transform/fjlt.cpp.o.d"
  "CMakeFiles/mpte_transform.dir/transform/mpc_fjlt.cpp.o"
  "CMakeFiles/mpte_transform.dir/transform/mpc_fjlt.cpp.o.d"
  "CMakeFiles/mpte_transform.dir/transform/sparse_jl.cpp.o"
  "CMakeFiles/mpte_transform.dir/transform/sparse_jl.cpp.o.d"
  "CMakeFiles/mpte_transform.dir/transform/walsh_hadamard.cpp.o"
  "CMakeFiles/mpte_transform.dir/transform/walsh_hadamard.cpp.o.d"
  "libmpte_transform.a"
  "libmpte_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
