
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/dense_jl.cpp" "src/CMakeFiles/mpte_transform.dir/transform/dense_jl.cpp.o" "gcc" "src/CMakeFiles/mpte_transform.dir/transform/dense_jl.cpp.o.d"
  "/root/repo/src/transform/fjlt.cpp" "src/CMakeFiles/mpte_transform.dir/transform/fjlt.cpp.o" "gcc" "src/CMakeFiles/mpte_transform.dir/transform/fjlt.cpp.o.d"
  "/root/repo/src/transform/mpc_fjlt.cpp" "src/CMakeFiles/mpte_transform.dir/transform/mpc_fjlt.cpp.o" "gcc" "src/CMakeFiles/mpte_transform.dir/transform/mpc_fjlt.cpp.o.d"
  "/root/repo/src/transform/sparse_jl.cpp" "src/CMakeFiles/mpte_transform.dir/transform/sparse_jl.cpp.o" "gcc" "src/CMakeFiles/mpte_transform.dir/transform/sparse_jl.cpp.o.d"
  "/root/repo/src/transform/walsh_hadamard.cpp" "src/CMakeFiles/mpte_transform.dir/transform/walsh_hadamard.cpp.o" "gcc" "src/CMakeFiles/mpte_transform.dir/transform/walsh_hadamard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
