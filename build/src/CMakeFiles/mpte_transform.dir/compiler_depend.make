# Empty compiler generated dependencies file for mpte_transform.
# This may be replaced when dependencies are built.
