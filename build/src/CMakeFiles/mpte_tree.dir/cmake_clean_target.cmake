file(REMOVE_RECURSE
  "libmpte_tree.a"
)
