
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/distortion.cpp" "src/CMakeFiles/mpte_tree.dir/tree/distortion.cpp.o" "gcc" "src/CMakeFiles/mpte_tree.dir/tree/distortion.cpp.o.d"
  "/root/repo/src/tree/embedding_builder.cpp" "src/CMakeFiles/mpte_tree.dir/tree/embedding_builder.cpp.o" "gcc" "src/CMakeFiles/mpte_tree.dir/tree/embedding_builder.cpp.o.d"
  "/root/repo/src/tree/hst.cpp" "src/CMakeFiles/mpte_tree.dir/tree/hst.cpp.o" "gcc" "src/CMakeFiles/mpte_tree.dir/tree/hst.cpp.o.d"
  "/root/repo/src/tree/hst_io.cpp" "src/CMakeFiles/mpte_tree.dir/tree/hst_io.cpp.o" "gcc" "src/CMakeFiles/mpte_tree.dir/tree/hst_io.cpp.o.d"
  "/root/repo/src/tree/lca_index.cpp" "src/CMakeFiles/mpte_tree.dir/tree/lca_index.cpp.o" "gcc" "src/CMakeFiles/mpte_tree.dir/tree/lca_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mpte_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mpte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
