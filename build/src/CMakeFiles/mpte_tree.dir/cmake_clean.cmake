file(REMOVE_RECURSE
  "CMakeFiles/mpte_tree.dir/tree/distortion.cpp.o"
  "CMakeFiles/mpte_tree.dir/tree/distortion.cpp.o.d"
  "CMakeFiles/mpte_tree.dir/tree/embedding_builder.cpp.o"
  "CMakeFiles/mpte_tree.dir/tree/embedding_builder.cpp.o.d"
  "CMakeFiles/mpte_tree.dir/tree/hst.cpp.o"
  "CMakeFiles/mpte_tree.dir/tree/hst.cpp.o.d"
  "CMakeFiles/mpte_tree.dir/tree/hst_io.cpp.o"
  "CMakeFiles/mpte_tree.dir/tree/hst_io.cpp.o.d"
  "CMakeFiles/mpte_tree.dir/tree/lca_index.cpp.o"
  "CMakeFiles/mpte_tree.dir/tree/lca_index.cpp.o.d"
  "libmpte_tree.a"
  "libmpte_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
