# Empty compiler generated dependencies file for mpte_tree.
# This may be replaced when dependencies are built.
