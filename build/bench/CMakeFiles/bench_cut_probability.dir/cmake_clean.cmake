file(REMOVE_RECURSE
  "CMakeFiles/bench_cut_probability.dir/bench_cut_probability.cpp.o"
  "CMakeFiles/bench_cut_probability.dir/bench_cut_probability.cpp.o.d"
  "bench_cut_probability"
  "bench_cut_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cut_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
