# Empty dependencies file for bench_cut_probability.
# This may be replaced when dependencies are built.
