# Empty dependencies file for bench_distortion_vs_r.
# This may be replaced when dependencies are built.
