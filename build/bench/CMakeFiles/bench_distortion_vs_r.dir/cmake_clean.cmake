file(REMOVE_RECURSE
  "CMakeFiles/bench_distortion_vs_r.dir/bench_distortion_vs_r.cpp.o"
  "CMakeFiles/bench_distortion_vs_r.dir/bench_distortion_vs_r.cpp.o.d"
  "bench_distortion_vs_r"
  "bench_distortion_vs_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distortion_vs_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
