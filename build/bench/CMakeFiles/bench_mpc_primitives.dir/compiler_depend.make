# Empty compiler generated dependencies file for bench_mpc_primitives.
# This may be replaced when dependencies are built.
