file(REMOVE_RECURSE
  "CMakeFiles/bench_mpc_primitives.dir/bench_mpc_primitives.cpp.o"
  "CMakeFiles/bench_mpc_primitives.dir/bench_mpc_primitives.cpp.o.d"
  "bench_mpc_primitives"
  "bench_mpc_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpc_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
