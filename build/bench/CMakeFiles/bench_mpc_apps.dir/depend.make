# Empty dependencies file for bench_mpc_apps.
# This may be replaced when dependencies are built.
