file(REMOVE_RECURSE
  "CMakeFiles/bench_mpc_apps.dir/bench_mpc_apps.cpp.o"
  "CMakeFiles/bench_mpc_apps.dir/bench_mpc_apps.cpp.o.d"
  "bench_mpc_apps"
  "bench_mpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
