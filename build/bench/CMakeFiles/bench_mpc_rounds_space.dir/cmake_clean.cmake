file(REMOVE_RECURSE
  "CMakeFiles/bench_mpc_rounds_space.dir/bench_mpc_rounds_space.cpp.o"
  "CMakeFiles/bench_mpc_rounds_space.dir/bench_mpc_rounds_space.cpp.o.d"
  "bench_mpc_rounds_space"
  "bench_mpc_rounds_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpc_rounds_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
