# Empty compiler generated dependencies file for bench_mpc_rounds_space.
# This may be replaced when dependencies are built.
