file(REMOVE_RECURSE
  "CMakeFiles/bench_embed_throughput.dir/bench_embed_throughput.cpp.o"
  "CMakeFiles/bench_embed_throughput.dir/bench_embed_throughput.cpp.o.d"
  "bench_embed_throughput"
  "bench_embed_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embed_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
