# Empty dependencies file for bench_distortion_vs_n.
# This may be replaced when dependencies are built.
