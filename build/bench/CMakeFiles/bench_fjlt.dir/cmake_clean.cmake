file(REMOVE_RECURSE
  "CMakeFiles/bench_fjlt.dir/bench_fjlt.cpp.o"
  "CMakeFiles/bench_fjlt.dir/bench_fjlt.cpp.o.d"
  "bench_fjlt"
  "bench_fjlt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fjlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
