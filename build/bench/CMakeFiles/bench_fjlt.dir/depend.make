# Empty dependencies file for bench_fjlt.
# This may be replaced when dependencies are built.
