file(REMOVE_RECURSE
  "CMakeFiles/bench_fwht.dir/bench_fwht.cpp.o"
  "CMakeFiles/bench_fwht.dir/bench_fwht.cpp.o.d"
  "bench_fwht"
  "bench_fwht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fwht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
