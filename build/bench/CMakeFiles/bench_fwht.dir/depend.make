# Empty dependencies file for bench_fwht.
# This may be replaced when dependencies are built.
