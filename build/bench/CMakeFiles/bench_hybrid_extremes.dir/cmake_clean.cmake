file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_extremes.dir/bench_hybrid_extremes.cpp.o"
  "CMakeFiles/bench_hybrid_extremes.dir/bench_hybrid_extremes.cpp.o.d"
  "bench_hybrid_extremes"
  "bench_hybrid_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
