# Empty dependencies file for bench_hybrid_extremes.
# This may be replaced when dependencies are built.
