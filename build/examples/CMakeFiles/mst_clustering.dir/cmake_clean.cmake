file(REMOVE_RECURSE
  "CMakeFiles/mst_clustering.dir/mst_clustering.cpp.o"
  "CMakeFiles/mst_clustering.dir/mst_clustering.cpp.o.d"
  "mst_clustering"
  "mst_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
