# Empty compiler generated dependencies file for mst_clustering.
# This may be replaced when dependencies are built.
