# Empty dependencies file for mpc_pipeline_demo.
# This may be replaced when dependencies are built.
