file(REMOVE_RECURSE
  "CMakeFiles/mpc_pipeline_demo.dir/mpc_pipeline_demo.cpp.o"
  "CMakeFiles/mpc_pipeline_demo.dir/mpc_pipeline_demo.cpp.o.d"
  "mpc_pipeline_demo"
  "mpc_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
