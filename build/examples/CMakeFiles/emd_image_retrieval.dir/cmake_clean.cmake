file(REMOVE_RECURSE
  "CMakeFiles/emd_image_retrieval.dir/emd_image_retrieval.cpp.o"
  "CMakeFiles/emd_image_retrieval.dir/emd_image_retrieval.cpp.o.d"
  "emd_image_retrieval"
  "emd_image_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emd_image_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
