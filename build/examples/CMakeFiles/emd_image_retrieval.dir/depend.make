# Empty dependencies file for emd_image_retrieval.
# This may be replaced when dependencies are built.
