file(REMOVE_RECURSE
  "CMakeFiles/densest_ball_anomaly.dir/densest_ball_anomaly.cpp.o"
  "CMakeFiles/densest_ball_anomaly.dir/densest_ball_anomaly.cpp.o.d"
  "densest_ball_anomaly"
  "densest_ball_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densest_ball_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
