# Empty dependencies file for densest_ball_anomaly.
# This may be replaced when dependencies are built.
