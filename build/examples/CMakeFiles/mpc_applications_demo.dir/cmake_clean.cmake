file(REMOVE_RECURSE
  "CMakeFiles/mpc_applications_demo.dir/mpc_applications_demo.cpp.o"
  "CMakeFiles/mpc_applications_demo.dir/mpc_applications_demo.cpp.o.d"
  "mpc_applications_demo"
  "mpc_applications_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_applications_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
