# Empty dependencies file for mpc_applications_demo.
# This may be replaced when dependencies are built.
