file(REMOVE_RECURSE
  "CMakeFiles/mpte_cli.dir/mpte_cli.cpp.o"
  "CMakeFiles/mpte_cli.dir/mpte_cli.cpp.o.d"
  "mpte_cli"
  "mpte_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpte_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
