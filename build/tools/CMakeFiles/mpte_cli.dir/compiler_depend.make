# Empty compiler generated dependencies file for mpte_cli.
# This may be replaced when dependencies are built.
