file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_violations.dir/test_mpc_violations.cpp.o"
  "CMakeFiles/test_mpc_violations.dir/test_mpc_violations.cpp.o.d"
  "test_mpc_violations"
  "test_mpc_violations.pdb"
  "test_mpc_violations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
