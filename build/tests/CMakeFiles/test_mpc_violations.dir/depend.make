# Empty dependencies file for test_mpc_violations.
# This may be replaced when dependencies are built.
