file(REMOVE_RECURSE
  "CMakeFiles/test_hst.dir/test_hst.cpp.o"
  "CMakeFiles/test_hst.dir/test_hst.cpp.o.d"
  "test_hst"
  "test_hst.pdb"
  "test_hst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
