# Empty dependencies file for test_hst.
# This may be replaced when dependencies are built.
