file(REMOVE_RECURSE
  "CMakeFiles/test_emd.dir/test_emd.cpp.o"
  "CMakeFiles/test_emd.dir/test_emd.cpp.o.d"
  "test_emd"
  "test_emd.pdb"
  "test_emd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
