# Empty compiler generated dependencies file for test_emd.
# This may be replaced when dependencies are built.
