# Empty compiler generated dependencies file for test_mpc_primitives.
# This may be replaced when dependencies are built.
