file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_primitives.dir/test_mpc_primitives.cpp.o"
  "CMakeFiles/test_mpc_primitives.dir/test_mpc_primitives.cpp.o.d"
  "test_mpc_primitives"
  "test_mpc_primitives.pdb"
  "test_mpc_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
