# Empty dependencies file for test_mpc_fjlt.
# This may be replaced when dependencies are built.
