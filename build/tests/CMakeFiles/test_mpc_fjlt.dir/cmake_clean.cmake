file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_fjlt.dir/test_mpc_fjlt.cpp.o"
  "CMakeFiles/test_mpc_fjlt.dir/test_mpc_fjlt.cpp.o.d"
  "test_mpc_fjlt"
  "test_mpc_fjlt.pdb"
  "test_mpc_fjlt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_fjlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
