# Empty compiler generated dependencies file for test_nearest_neighbor.
# This may be replaced when dependencies are built.
