file(REMOVE_RECURSE
  "CMakeFiles/test_nearest_neighbor.dir/test_nearest_neighbor.cpp.o"
  "CMakeFiles/test_nearest_neighbor.dir/test_nearest_neighbor.cpp.o.d"
  "test_nearest_neighbor"
  "test_nearest_neighbor.pdb"
  "test_nearest_neighbor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nearest_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
