# Empty compiler generated dependencies file for test_system_end_to_end.
# This may be replaced when dependencies are built.
