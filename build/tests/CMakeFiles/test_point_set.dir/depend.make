# Empty dependencies file for test_point_set.
# This may be replaced when dependencies are built.
