file(REMOVE_RECURSE
  "CMakeFiles/test_point_set.dir/test_point_set.cpp.o"
  "CMakeFiles/test_point_set.dir/test_point_set.cpp.o.d"
  "test_point_set"
  "test_point_set.pdb"
  "test_point_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_point_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
