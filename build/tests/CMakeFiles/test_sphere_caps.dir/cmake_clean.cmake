file(REMOVE_RECURSE
  "CMakeFiles/test_sphere_caps.dir/test_sphere_caps.cpp.o"
  "CMakeFiles/test_sphere_caps.dir/test_sphere_caps.cpp.o.d"
  "test_sphere_caps"
  "test_sphere_caps.pdb"
  "test_sphere_caps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sphere_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
