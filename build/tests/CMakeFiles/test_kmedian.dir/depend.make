# Empty dependencies file for test_kmedian.
# This may be replaced when dependencies are built.
