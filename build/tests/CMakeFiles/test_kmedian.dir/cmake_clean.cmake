file(REMOVE_RECURSE
  "CMakeFiles/test_kmedian.dir/test_kmedian.cpp.o"
  "CMakeFiles/test_kmedian.dir/test_kmedian.cpp.o.d"
  "test_kmedian"
  "test_kmedian.pdb"
  "test_kmedian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmedian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
