file(REMOVE_RECURSE
  "CMakeFiles/test_hst_io.dir/test_hst_io.cpp.o"
  "CMakeFiles/test_hst_io.dir/test_hst_io.cpp.o.d"
  "test_hst_io"
  "test_hst_io.pdb"
  "test_hst_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hst_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
