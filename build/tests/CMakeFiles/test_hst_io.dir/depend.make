# Empty dependencies file for test_hst_io.
# This may be replaced when dependencies are built.
