# Empty dependencies file for test_kcenter.
# This may be replaced when dependencies are built.
