file(REMOVE_RECURSE
  "CMakeFiles/test_kcenter.dir/test_kcenter.cpp.o"
  "CMakeFiles/test_kcenter.dir/test_kcenter.cpp.o.d"
  "test_kcenter"
  "test_kcenter.pdb"
  "test_kcenter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
