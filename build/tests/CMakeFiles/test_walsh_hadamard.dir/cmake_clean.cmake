file(REMOVE_RECURSE
  "CMakeFiles/test_walsh_hadamard.dir/test_walsh_hadamard.cpp.o"
  "CMakeFiles/test_walsh_hadamard.dir/test_walsh_hadamard.cpp.o.d"
  "test_walsh_hadamard"
  "test_walsh_hadamard.pdb"
  "test_walsh_hadamard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walsh_hadamard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
