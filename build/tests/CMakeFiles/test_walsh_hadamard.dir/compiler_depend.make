# Empty compiler generated dependencies file for test_walsh_hadamard.
# This may be replaced when dependencies are built.
