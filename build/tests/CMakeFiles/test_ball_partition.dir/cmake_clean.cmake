file(REMOVE_RECURSE
  "CMakeFiles/test_ball_partition.dir/test_ball_partition.cpp.o"
  "CMakeFiles/test_ball_partition.dir/test_ball_partition.cpp.o.d"
  "test_ball_partition"
  "test_ball_partition.pdb"
  "test_ball_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ball_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
