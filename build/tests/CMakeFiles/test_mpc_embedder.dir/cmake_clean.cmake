file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_embedder.dir/test_mpc_embedder.cpp.o"
  "CMakeFiles/test_mpc_embedder.dir/test_mpc_embedder.cpp.o.d"
  "test_mpc_embedder"
  "test_mpc_embedder.pdb"
  "test_mpc_embedder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_embedder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
