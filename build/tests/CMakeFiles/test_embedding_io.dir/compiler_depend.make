# Empty compiler generated dependencies file for test_embedding_io.
# This may be replaced when dependencies are built.
