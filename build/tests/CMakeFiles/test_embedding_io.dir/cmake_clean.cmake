file(REMOVE_RECURSE
  "CMakeFiles/test_embedding_io.dir/test_embedding_io.cpp.o"
  "CMakeFiles/test_embedding_io.dir/test_embedding_io.cpp.o.d"
  "test_embedding_io"
  "test_embedding_io.pdb"
  "test_embedding_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedding_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
