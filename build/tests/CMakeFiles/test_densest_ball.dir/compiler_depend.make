# Empty compiler generated dependencies file for test_densest_ball.
# This may be replaced when dependencies are built.
