file(REMOVE_RECURSE
  "CMakeFiles/test_densest_ball.dir/test_densest_ball.cpp.o"
  "CMakeFiles/test_densest_ball.dir/test_densest_ball.cpp.o.d"
  "test_densest_ball"
  "test_densest_ball.pdb"
  "test_densest_ball[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_densest_ball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
