file(REMOVE_RECURSE
  "CMakeFiles/test_csv_io.dir/test_csv_io.cpp.o"
  "CMakeFiles/test_csv_io.dir/test_csv_io.cpp.o.d"
  "test_csv_io"
  "test_csv_io.pdb"
  "test_csv_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
