# Empty dependencies file for test_mpc_apps.
# This may be replaced when dependencies are built.
