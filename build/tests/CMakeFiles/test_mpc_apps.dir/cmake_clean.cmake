file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_apps.dir/test_mpc_apps.cpp.o"
  "CMakeFiles/test_mpc_apps.dir/test_mpc_apps.cpp.o.d"
  "test_mpc_apps"
  "test_mpc_apps.pdb"
  "test_mpc_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
