file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_cluster.dir/test_mpc_cluster.cpp.o"
  "CMakeFiles/test_mpc_cluster.dir/test_mpc_cluster.cpp.o.d"
  "test_mpc_cluster"
  "test_mpc_cluster.pdb"
  "test_mpc_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
