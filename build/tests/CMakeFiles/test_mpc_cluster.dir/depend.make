# Empty dependencies file for test_mpc_cluster.
# This may be replaced when dependencies are built.
