file(REMOVE_RECURSE
  "CMakeFiles/test_distortion.dir/test_distortion.cpp.o"
  "CMakeFiles/test_distortion.dir/test_distortion.cpp.o.d"
  "test_distortion"
  "test_distortion.pdb"
  "test_distortion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
