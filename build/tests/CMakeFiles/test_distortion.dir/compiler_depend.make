# Empty compiler generated dependencies file for test_distortion.
# This may be replaced when dependencies are built.
