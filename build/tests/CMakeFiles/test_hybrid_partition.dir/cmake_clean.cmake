file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_partition.dir/test_hybrid_partition.cpp.o"
  "CMakeFiles/test_hybrid_partition.dir/test_hybrid_partition.cpp.o.d"
  "test_hybrid_partition"
  "test_hybrid_partition.pdb"
  "test_hybrid_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
