# Empty compiler generated dependencies file for test_hybrid_partition.
# This may be replaced when dependencies are built.
