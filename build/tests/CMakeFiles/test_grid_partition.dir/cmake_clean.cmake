file(REMOVE_RECURSE
  "CMakeFiles/test_grid_partition.dir/test_grid_partition.cpp.o"
  "CMakeFiles/test_grid_partition.dir/test_grid_partition.cpp.o.d"
  "test_grid_partition"
  "test_grid_partition.pdb"
  "test_grid_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
