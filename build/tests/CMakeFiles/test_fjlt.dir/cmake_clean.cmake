file(REMOVE_RECURSE
  "CMakeFiles/test_fjlt.dir/test_fjlt.cpp.o"
  "CMakeFiles/test_fjlt.dir/test_fjlt.cpp.o.d"
  "test_fjlt"
  "test_fjlt.pdb"
  "test_fjlt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fjlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
