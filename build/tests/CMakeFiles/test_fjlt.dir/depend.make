# Empty dependencies file for test_fjlt.
# This may be replaced when dependencies are built.
