file(REMOVE_RECURSE
  "CMakeFiles/test_embedding_builder.dir/test_embedding_builder.cpp.o"
  "CMakeFiles/test_embedding_builder.dir/test_embedding_builder.cpp.o.d"
  "test_embedding_builder"
  "test_embedding_builder.pdb"
  "test_embedding_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedding_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
