# Empty compiler generated dependencies file for test_embedding_builder.
# This may be replaced when dependencies are built.
