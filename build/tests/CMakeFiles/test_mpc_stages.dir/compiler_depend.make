# Empty compiler generated dependencies file for test_mpc_stages.
# This may be replaced when dependencies are built.
