file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_stages.dir/test_mpc_stages.cpp.o"
  "CMakeFiles/test_mpc_stages.dir/test_mpc_stages.cpp.o.d"
  "test_mpc_stages"
  "test_mpc_stages.pdb"
  "test_mpc_stages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
