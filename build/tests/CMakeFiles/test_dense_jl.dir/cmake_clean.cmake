file(REMOVE_RECURSE
  "CMakeFiles/test_dense_jl.dir/test_dense_jl.cpp.o"
  "CMakeFiles/test_dense_jl.dir/test_dense_jl.cpp.o.d"
  "test_dense_jl"
  "test_dense_jl.pdb"
  "test_dense_jl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_jl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
