# Empty dependencies file for test_dense_jl.
# This may be replaced when dependencies are built.
