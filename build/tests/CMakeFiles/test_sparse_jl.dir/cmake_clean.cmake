file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_jl.dir/test_sparse_jl.cpp.o"
  "CMakeFiles/test_sparse_jl.dir/test_sparse_jl.cpp.o.d"
  "test_sparse_jl"
  "test_sparse_jl.pdb"
  "test_sparse_jl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_jl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
