# Empty dependencies file for test_sparse_jl.
# This may be replaced when dependencies are built.
