# Empty compiler generated dependencies file for test_min_cost_flow.
# This may be replaced when dependencies are built.
