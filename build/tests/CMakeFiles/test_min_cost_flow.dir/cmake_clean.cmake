file(REMOVE_RECURSE
  "CMakeFiles/test_min_cost_flow.dir/test_min_cost_flow.cpp.o"
  "CMakeFiles/test_min_cost_flow.dir/test_min_cost_flow.cpp.o.d"
  "test_min_cost_flow"
  "test_min_cost_flow.pdb"
  "test_min_cost_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_cost_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
