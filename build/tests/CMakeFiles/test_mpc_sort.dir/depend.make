# Empty dependencies file for test_mpc_sort.
# This may be replaced when dependencies are built.
