file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_sort.dir/test_mpc_sort.cpp.o"
  "CMakeFiles/test_mpc_sort.dir/test_mpc_sort.cpp.o.d"
  "test_mpc_sort"
  "test_mpc_sort.pdb"
  "test_mpc_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
