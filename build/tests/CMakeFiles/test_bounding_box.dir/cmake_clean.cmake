file(REMOVE_RECURSE
  "CMakeFiles/test_bounding_box.dir/test_bounding_box.cpp.o"
  "CMakeFiles/test_bounding_box.dir/test_bounding_box.cpp.o.d"
  "test_bounding_box"
  "test_bounding_box.pdb"
  "test_bounding_box[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounding_box.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
