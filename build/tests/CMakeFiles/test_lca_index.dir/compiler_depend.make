# Empty compiler generated dependencies file for test_lca_index.
# This may be replaced when dependencies are built.
