file(REMOVE_RECURSE
  "CMakeFiles/test_lca_index.dir/test_lca_index.cpp.o"
  "CMakeFiles/test_lca_index.dir/test_lca_index.cpp.o.d"
  "test_lca_index"
  "test_lca_index.pdb"
  "test_lca_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lca_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
