#include "apps/densest_ball.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(DensestBallExact, FindsDenseCluster) {
  // 40 points in a tight blob at origin, 10 scattered far away.
  PointSet points = generate_gaussian_clusters(40, 3, 1, 0.0, 0.5, 1);
  const PointSet noise = generate_uniform_cube(10, 3, 500.0, 2);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    auto p = noise[i];
    std::vector<double> shifted(p.begin(), p.end());
    for (double& c : shifted) c += 100.0;  // keep clear of the blob
    points.push_back(shifted);
  }
  const auto result = densest_ball_exact(points, 5.0);
  EXPECT_GE(result.count, 40u);
  EXPECT_LT(result.center, 40u);  // a blob point
}

TEST(DensestBallExact, RadiusZeroCountsDuplicates) {
  PointSet points(4, 2, {1, 1, 1, 1, 5, 5, 9, 9});
  const auto result = densest_ball_exact(points, 0.0);
  EXPECT_EQ(result.count, 2u);  // the duplicate pair
}

TEST(DensestBallExact, WholeSetWhenRadiusHuge) {
  const PointSet points = generate_uniform_cube(30, 2, 10.0, 3);
  const auto result = densest_ball_exact(points, 1e6);
  EXPECT_EQ(result.count, 30u);
}

TEST(DensestBallTree, ValidatesDiameter) {
  const PointSet points = generate_uniform_cube(20, 3, 10.0, 5);
  EmbedOptions options;
  options.use_fjlt = false;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  EXPECT_THROW((void)densest_ball_tree(embedding->tree, -1.0), MpteError);
}

TEST(DensestBallTree, DiameterBoundIsHonest) {
  // Every point pair inside the chosen cluster is within the reported
  // diameter in Euclidean distance (domination makes the tree bound real).
  const PointSet points = generate_gaussian_clusters(100, 3, 5, 100.0, 1.0, 7);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 9;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  const double target = 20.0 / embedding->scale_to_input;  // quantized units
  const auto result = densest_ball_tree(embedding->tree, target);
  ASSERT_GT(result.count, 0u);
  EXPECT_LE(result.diameter, target);

  // Collect the leaves below the chosen node.
  std::vector<std::size_t> members;
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::size_t cur = embedding->tree.leaf(p);
    bool below = false;
    while (true) {
      if (cur == result.center) {
        below = true;
        break;
      }
      const auto parent = embedding->tree.node(cur).parent;
      if (parent < 0) break;
      cur = static_cast<std::size_t>(parent);
    }
    if (below) members.push_back(p);
  }
  EXPECT_EQ(members.size(), result.count);
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      EXPECT_LE(l2_distance(embedding->embedded_points[members[a]],
                            embedding->embedded_points[members[b]]),
                result.diameter + 1e-9);
    }
  }
}

TEST(DensestBallTree, BicriteriaQualityOnBlobs) {
  // Two dense blobs of 50; with target diameter a few blob widths the tree
  // answer must capture a large fraction of a blob (Corollary 1.1's
  // (1 - o(1), O(log^1.5 n)) regime, measured loosely).
  const PointSet points = generate_two_blobs(100, 3, 500.0, 1.0, 11);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 13;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());

  const auto exact = densest_ball_exact(points, 5.0);  // radius 5
  // Allow the tree the distortion-expanded diameter.
  const double expanded = 10.0 * 16.0 / embedding->scale_to_input;
  const auto tree = densest_ball_tree(embedding->tree, expanded);
  EXPECT_GE(tree.count + 10, exact.count / 2);
}

TEST(DensestBallTree, SingletonWhenDiameterTiny) {
  const PointSet points = generate_uniform_cube(30, 3, 10.0, 15);
  EmbedOptions options;
  options.use_fjlt = false;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  const auto result = densest_ball_tree(embedding->tree, 0.0);
  EXPECT_EQ(result.count, 1u);  // leaves have zero diameter
  EXPECT_EQ(result.diameter, 0.0);
}

}  // namespace
}  // namespace mpte
