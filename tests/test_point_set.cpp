#include "geometry/point_set.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"

namespace mpte {
namespace {

PointSet make_triangle() {
  // (0,0), (3,0), (0,4): distances 3, 4, 5.
  return PointSet(3, 2, {0, 0, 3, 0, 0, 4});
}

TEST(PointSet, ConstructionAndAccess) {
  PointSet points(2, 3);
  EXPECT_EQ(points.size(), 2u);
  EXPECT_EQ(points.dim(), 3u);
  points.coord(1, 2) = 7.5;
  EXPECT_EQ(points[1][2], 7.5);
  EXPECT_EQ(points.coord(0, 0), 0.0);
}

TEST(PointSet, AdoptBufferValidatesSize) {
  EXPECT_THROW(PointSet(2, 3, {1.0, 2.0}), MpteError);
}

TEST(PointSet, PushBackGrowsAndChecksDim) {
  PointSet points;
  const double a[] = {1.0, 2.0};
  points.push_back(a);
  EXPECT_EQ(points.size(), 1u);
  EXPECT_EQ(points.dim(), 2u);
  const double bad[] = {1.0, 2.0, 3.0};
  EXPECT_THROW(points.push_back(bad), MpteError);
}

TEST(PointSet, SelectPreservesOrder) {
  const PointSet points = make_triangle();
  const std::size_t idx[] = {2, 0};
  const PointSet sub = points.select(idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0][1], 4.0);
  EXPECT_EQ(sub[1][0], 0.0);
}

TEST(PointSet, ProjectSlicesCoordinates) {
  PointSet points(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  const PointSet mid = points.project(1, 3);
  ASSERT_EQ(mid.dim(), 2u);
  EXPECT_EQ(mid[0][0], 2.0);
  EXPECT_EQ(mid[0][1], 3.0);
  EXPECT_EQ(mid[1][0], 6.0);
}

TEST(PointSet, ProjectEmptyRange) {
  PointSet points(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  const PointSet none = points.project(2, 2);
  EXPECT_EQ(none.dim(), 0u);
  EXPECT_EQ(none.size(), 2u);
}

TEST(PointSet, PadDimsAppendsZeros) {
  const PointSet points = make_triangle();
  const PointSet padded = points.pad_dims(5);
  ASSERT_EQ(padded.dim(), 5u);
  EXPECT_EQ(padded[1][0], 3.0);
  EXPECT_EQ(padded[1][2], 0.0);
  EXPECT_EQ(padded[1][4], 0.0);
  // Distances unchanged by zero padding.
  EXPECT_NEAR(l2_distance(padded[0], padded[1]),
              l2_distance(points[0], points[1]), 1e-12);
}

TEST(Distance, KnownValues) {
  const PointSet t = make_triangle();
  EXPECT_NEAR(l2_distance(t[0], t[1]), 3.0, 1e-12);
  EXPECT_NEAR(l2_distance(t[0], t[2]), 4.0, 1e-12);
  EXPECT_NEAR(l2_distance(t[1], t[2]), 5.0, 1e-12);
  EXPECT_NEAR(l2_distance_squared(t[1], t[2]), 25.0, 1e-12);
}

TEST(Distance, NormAndSymmetry) {
  const PointSet t = make_triangle();
  EXPECT_NEAR(l2_norm(t[2]), 4.0, 1e-12);
  EXPECT_EQ(l2_distance(t[0], t[1]), l2_distance(t[1], t[0]));
  EXPECT_EQ(l2_distance(t[1], t[1]), 0.0);
}

TEST(Extremes, TriangleMinMax) {
  const auto ext = pairwise_distance_extremes(make_triangle());
  EXPECT_NEAR(ext.min, 3.0, 1e-12);
  EXPECT_NEAR(ext.max, 5.0, 1e-12);
}

TEST(Extremes, DegenerateCases) {
  PointSet one(1, 2, {0, 0});
  const auto ext = pairwise_distance_extremes(one);
  EXPECT_EQ(ext.min, 0.0);
  EXPECT_EQ(ext.max, 0.0);
}

TEST(AspectRatio, TriangleIsFiveThirds) {
  EXPECT_NEAR(aspect_ratio(make_triangle()), 5.0 / 3.0, 1e-12);
}

TEST(AspectRatio, DuplicatePointsThrow) {
  PointSet points(2, 1, {1.0, 1.0});
  // All-equal points: max distance 0 => ratio defined as 1.
  EXPECT_EQ(aspect_ratio(points), 1.0);
  PointSet mixed(3, 1, {1.0, 1.0, 2.0});
  EXPECT_THROW(aspect_ratio(mixed), MpteError);
}

}  // namespace
}  // namespace mpte
