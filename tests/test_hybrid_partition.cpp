#include "partition/hybrid_partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"

namespace mpte {
namespace {

PointSet quantized_cube(std::size_t n, std::size_t dim, std::uint64_t delta,
                        std::uint64_t seed) {
  const PointSet raw = generate_uniform_cube(n, dim, 100.0, seed);
  return quantize_to_grid(raw, delta).points;
}

TEST(ScaleLadder, HalvesAndTerminates) {
  const ScaleLadder ladder = hybrid_scale_ladder(8, 4, 256);
  EXPECT_NEAR(ladder.w_max, 256.0 * std::sqrt(8.0), 1e-9);
  ASSERT_EQ(ladder.scales.size(), ladder.levels + 1);
  ASSERT_EQ(ladder.edge_weight.size(), ladder.levels + 1);
  for (std::size_t i = 1; i <= ladder.levels; ++i) {
    EXPECT_NEAR(ladder.scales[i], ladder.scales[i - 1] / 2.0, 1e-9);
    EXPECT_NEAR(ladder.edge_weight[i], 2.0 * std::sqrt(4.0) * ladder.scales[i],
                1e-9);
  }
  // Terminal diameter bound below the minimum integer distance.
  EXPECT_LT(2.0 * std::sqrt(4.0) * ladder.scales[ladder.levels], 1.0);
  // And one level less would not have been enough.
  EXPECT_GE(2.0 * std::sqrt(4.0) * ladder.scales[ladder.levels - 1], 1.0);
}

TEST(ScaleLadder, LevelCountLogarithmicInDelta) {
  const std::size_t l1 = hybrid_scale_ladder(8, 2, 1 << 8).levels;
  const std::size_t l2 = hybrid_scale_ladder(8, 2, 1 << 16).levels;
  EXPECT_EQ(l2 - l1, 8u);
}

TEST(HybridHierarchy, ValidatesArguments) {
  const PointSet points = quantized_cube(10, 4, 64, 1);
  HybridOptions options;
  options.delta = 0;
  options.num_buckets = 1;
  EXPECT_FALSE(build_hybrid_hierarchy(points, options).ok());
  options.delta = 64;
  options.num_buckets = 5;  // > dim
  EXPECT_FALSE(build_hybrid_hierarchy(points, options).ok());
  options.num_buckets = 1;
  EXPECT_FALSE(build_hybrid_hierarchy(PointSet{}, options).ok());
}

TEST(HybridHierarchy, StructureInvariants) {
  const PointSet points = quantized_cube(60, 4, 128, 2);
  HybridOptions options;
  options.delta = 128;
  options.num_buckets = 2;
  options.seed = 3;
  const auto h = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_points(), 60u);
  EXPECT_EQ(h->num_buckets, 2u);
  EXPECT_GT(h->num_grids, 0u);
  ASSERT_EQ(h->cluster_of_point.size(), h->scales.size());
  ASSERT_EQ(h->edge_weight.size(), h->scales.size());

  // Level 0: everyone in the root cluster.
  const auto root = h->cluster_of_point[0][0];
  for (const auto id : h->cluster_of_point[0]) EXPECT_EQ(id, root);

  // Laminarity: same cluster at level i implies same at level i-1.
  for (std::size_t level = 1; level < h->levels(); ++level) {
    std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
    for (std::size_t i = 0; i < 60; ++i) {
      const auto child = h->cluster_of_point[level][i];
      const auto parent = h->cluster_of_point[level - 1][i];
      const auto [it, inserted] = parent_of.emplace(child, parent);
      EXPECT_EQ(it->second, parent) << "level " << level;
      (void)inserted;
    }
  }
}

TEST(HybridHierarchy, DiameterBoundHolds) {
  // Lemma 1 second half: same partition at scale w => distance <= 2 sqrt(r) w.
  const PointSet points = quantized_cube(80, 4, 128, 5);
  for (const std::uint32_t r : {1u, 2u, 4u}) {
    HybridOptions options;
    options.delta = 128;
    options.num_buckets = r;
    options.seed = 7 + r;
    const auto h = build_hybrid_hierarchy(points, options);
    ASSERT_TRUE(h.ok()) << "r=" << r;
    const double bound_factor = 2.0 * std::sqrt(static_cast<double>(r));
    for (std::size_t level = 1; level < h->levels(); ++level) {
      const double bound = bound_factor * h->scales[level] + 1e-9;
      for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
          if (h->cluster_of_point[level][i] ==
              h->cluster_of_point[level][j]) {
            EXPECT_LE(l2_distance(points[i], points[j]), bound)
                << "r=" << r << " level=" << level;
          }
        }
      }
    }
  }
}

TEST(HybridHierarchy, EndsInSingletonsForDistinctPoints) {
  const PointSet points = quantized_cube(50, 3, 64, 11);
  HybridOptions options;
  options.delta = 64;
  options.num_buckets = 3;
  options.seed = 13;
  const auto h = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(h.ok());
  // Points with distinct coordinates end in distinct clusters at the last
  // level (diameter bound < 1 <= min distance).
  const auto& last = h->cluster_of_point.back();
  std::unordered_map<std::uint64_t, std::size_t> count;
  for (const auto id : last) ++count[id];
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (l2_distance(points[i], points[j]) > 0.0) {
        EXPECT_NE(last[i], last[j]);
      } else {
        EXPECT_EQ(last[i], last[j]);
      }
    }
  }
}

TEST(HybridHierarchy, CoverageFailureReported) {
  const PointSet points = quantized_cube(200, 4, 128, 17);
  HybridOptions options;
  options.delta = 128;
  options.num_buckets = 1;  // 4-dim buckets, tiny cover probability
  options.num_grids = 1;    // force failure
  options.uncovered = UncoveredPolicy::kFail;
  const auto h = build_hybrid_hierarchy(points, options);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kCoverageFailure);
}

TEST(HybridHierarchy, SingletonPolicyKeepsGoing) {
  const PointSet points = quantized_cube(100, 4, 128, 19);
  HybridOptions options;
  options.delta = 128;
  options.num_buckets = 1;
  options.num_grids = 2;  // will miss many points
  options.uncovered = UncoveredPolicy::kSingleton;
  const auto h = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(h->uncovered_events, 0u);
}

TEST(HybridHierarchy, DeterministicBySeed) {
  const PointSet points = quantized_cube(40, 4, 64, 23);
  HybridOptions options;
  options.delta = 64;
  options.num_buckets = 2;
  options.seed = 99;
  const auto a = build_hybrid_hierarchy(points, options);
  const auto b = build_hybrid_hierarchy(points, options);
  options.seed = 100;
  const auto c = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->cluster_of_point, b->cluster_of_point);
  EXPECT_NE(a->cluster_of_point, c->cluster_of_point);
}

TEST(HybridHierarchy, PadsNonDivisibleDimensions) {
  // dim 5 with r = 2: bucket_dim 3, padded to 6; must still work.
  const PointSet points = quantized_cube(30, 5, 64, 29);
  HybridOptions options;
  options.delta = 64;
  options.num_buckets = 2;
  const auto h = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_points(), 30u);
}

TEST(GridHierarchy, StructureAndSingletons) {
  const PointSet points = quantized_cube(60, 3, 128, 31);
  const auto h = build_grid_hierarchy(points, 128, 37);
  ASSERT_TRUE(h.ok());
  // Laminar and ends in singletons.
  const auto& last = h->cluster_of_point.back();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (l2_distance(points[i], points[j]) > 0.0) {
        EXPECT_NE(last[i], last[j]);
      }
    }
  }
  // Cell diameter bound per level.
  const double sqrt_d = std::sqrt(3.0);
  for (std::size_t level = 1; level < h->levels(); ++level) {
    const double bound = sqrt_d * h->scales[level] + 1e-9;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        if (h->cluster_of_point[level][i] == h->cluster_of_point[level][j]) {
          EXPECT_LE(l2_distance(points[i], points[j]), bound);
        }
      }
    }
  }
}

TEST(BallHierarchy, IsHybridWithOneBucket) {
  const PointSet points = quantized_cube(30, 3, 64, 41);
  HybridOptions options;
  options.delta = 64;
  options.num_buckets = 7;  // overridden by build_ball_hierarchy
  options.seed = 43;
  const auto ball = build_ball_hierarchy(points, options);
  options.num_buckets = 1;
  const auto hybrid = build_hybrid_hierarchy(points, options);
  ASSERT_TRUE(ball.ok() && hybrid.ok());
  EXPECT_EQ(ball->cluster_of_point, hybrid->cluster_of_point);
}

}  // namespace
}  // namespace mpte
