#include "tree/embedding_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"

namespace mpte {
namespace {

Hierarchy tiny_hierarchy() {
  // 4 points; level 1 splits {0,1} | {2,3}; level 2 splits {0}|{1} and
  // keeps {2,3} together; level 3 chains below singletons and splits
  // {2}|{3}.
  Hierarchy h;
  h.cluster_of_point = {
      {1, 1, 1, 1},          // root
      {10, 10, 20, 20},      // level 1
      {11, 12, 21, 21},      // level 2
      {13, 14, 22, 23},      // level 3 (chains 11->13, 12->14)
  };
  h.scales = {8, 4, 2, 1};
  h.edge_weight = {0, 8, 4, 2};
  h.num_buckets = 1;
  return h;
}

TEST(BuildHst, PrunesSingletonChains) {
  const Hst tree = build_hst(tiny_hierarchy());
  EXPECT_TRUE(tree.validate().ok());
  EXPECT_EQ(tree.num_points(), 4u);
  // Nodes: root, 10, 20, 11, 12, 21(stays: size 2), 22, 23 + 4 leaves.
  // Chains 11->13 and 12->14 are pruned (13, 14 dropped).
  EXPECT_EQ(tree.num_nodes(), 8u + 4u);
  // Point 0's leaf hangs under node 11 at level 2 (weight 0 edge).
  const auto leaf0 = tree.leaf(0);
  EXPECT_EQ(tree.node(leaf0).edge_weight, 0.0);
  EXPECT_EQ(tree.node(tree.node(leaf0).parent).level, 2u);
}

TEST(BuildHst, DistancesFollowSeparationLevel) {
  const Hst tree = build_hst(tiny_hierarchy());
  // 0 and 1 separate at level 2: each pays w[2]=4 up to their level-1
  // cluster. Distance = 4 + 4.
  EXPECT_EQ(tree.distance(0, 1), 8.0);
  // 2 and 3 separate at level 3: 2 + 2.
  EXPECT_EQ(tree.distance(2, 3), 4.0);
  // 0 and 2 separate at level 1: 0's side 4+8, 2's side 2+4+8.
  EXPECT_EQ(tree.distance(0, 2), (4.0 + 8.0) + (2.0 + 4.0 + 8.0));
}

TEST(BuildHst, DuplicatePointsShareBottomCluster) {
  Hierarchy h;
  h.cluster_of_point = {
      {1, 1, 1},
      {10, 20, 20},
      {11, 21, 21},  // points 1,2 identical: never separate
  };
  h.scales = {4, 2, 1};
  h.edge_weight = {0, 4, 2};
  const Hst tree = build_hst(h);
  EXPECT_TRUE(tree.validate().ok());
  EXPECT_EQ(tree.distance(1, 2), 0.0);  // both weight-0 leaves, same parent
  EXPECT_GT(tree.distance(0, 1), 0.0);
}

TEST(BuildHst, EmptyHierarchyThrows) {
  EXPECT_THROW(build_hst(Hierarchy{}), MpteError);
}

TEST(BuildHst, RootOnlyHierarchy) {
  Hierarchy h;
  h.cluster_of_point = {{1, 1}};
  h.scales = {2};
  h.edge_weight = {0};
  const Hst tree = build_hst(h);
  EXPECT_TRUE(tree.validate().ok());
  EXPECT_EQ(tree.distance(0, 1), 0.0);
}

TEST(AssemblePruned, LeafAttachesAtTopmostSingletonAncestor) {
  // Chain: root -> a -> b -> c where a already isolates point 1.
  RawTree raw;
  raw.edge_weight = {0, 8, 4, 2};
  raw.nodes.push_back({1, -1, 0});   // root: points 0,1
  raw.nodes.push_back({10, 0, 1});   // a: point 0
  raw.nodes.push_back({20, 0, 1});   // a': point 1
  raw.nodes.push_back({11, 1, 2});   // chain below a
  raw.nodes.push_back({21, 2, 2});   // chain below a'
  raw.bottom_of_point = {3, 4};
  const Hst tree = assemble_pruned(raw);
  EXPECT_TRUE(tree.validate().ok());
  // Chains pruned: root + 2 singleton nodes + 2 leaves.
  EXPECT_EQ(tree.num_nodes(), 5u);
  EXPECT_EQ(tree.distance(0, 1), 8.0 + 8.0);
}

TEST(HstShape, CountsMatch) {
  const Hst tree = build_hst(tiny_hierarchy());
  const HstShape shape = hst_shape(tree);
  EXPECT_EQ(shape.nodes, tree.num_nodes());
  EXPECT_EQ(shape.leaves, 4u);
  EXPECT_EQ(shape.internal_nodes, shape.nodes - 4u);
  EXPECT_GE(shape.max_branching, 2u);
  EXPECT_EQ(shape.depth, tree.depth());
}

TEST(BuildHst, LargeRandomHierarchyValidates) {
  const PointSet raw = generate_uniform_cube(200, 4, 50.0, 7);
  const Quantized q = quantize_to_grid(raw, 256);
  HybridOptions options;
  options.delta = 256;
  options.num_buckets = 2;
  options.seed = 11;
  const auto hierarchy = build_hybrid_hierarchy(q.points, options);
  ASSERT_TRUE(hierarchy.ok());
  const Hst tree = build_hst(*hierarchy);
  EXPECT_TRUE(tree.validate().ok());
  EXPECT_EQ(tree.num_points(), 200u);
  EXPECT_EQ(tree.node(tree.root()).subtree_size, 200u);
}

}  // namespace
}  // namespace mpte
