#include "mpc/cluster.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mpte::mpc {
namespace {

ClusterConfig small_config(std::size_t machines = 4,
                           std::size_t memory = 4096) {
  return ClusterConfig{machines, memory, true};
}

TEST(LocalStore, BlobAccounting) {
  LocalStore store;
  EXPECT_EQ(store.resident_bytes(), 0u);
  store.set_blob("a", std::vector<std::uint8_t>(100));
  EXPECT_EQ(store.resident_bytes(), 100u);
  store.set_blob("a", std::vector<std::uint8_t>(40));  // replace
  EXPECT_EQ(store.resident_bytes(), 40u);
  store.set_blob("b", std::vector<std::uint8_t>(10));
  EXPECT_EQ(store.resident_bytes(), 50u);
  store.erase("a");
  EXPECT_EQ(store.resident_bytes(), 10u);
  store.erase("missing");  // no-op
  EXPECT_EQ(store.resident_bytes(), 10u);
  store.clear();
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(LocalStore, TypedVectorRoundTrip) {
  LocalStore store;
  store.set_vector<double>("v", {1.0, 2.0, 3.0});
  EXPECT_EQ(store.get_vector<double>("v"),
            (std::vector<double>{1.0, 2.0, 3.0}));
  store.set_value<std::uint64_t>("x", 99);
  EXPECT_EQ(store.get_value<std::uint64_t>("x"), 99u);
  EXPECT_TRUE(store.contains("v"));
  EXPECT_FALSE(store.contains("w"));
}

TEST(LocalStore, MissingKeyThrows) {
  LocalStore store;
  EXPECT_THROW((void)store.blob("nope"), MpteError);
}

TEST(Cluster, ZeroMachinesThrows) {
  EXPECT_THROW(Cluster(ClusterConfig{0, 1024, true}), MpteError);
}

TEST(Cluster, RoundDeliversMessages) {
  Cluster cluster(small_config());
  cluster.run_round([](MachineContext& ctx) {
    // Everyone sends its rank to machine 0.
    Serializer s;
    s.write<std::uint32_t>(ctx.id());
    ctx.send(0, std::move(s));
  });
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() != 0) {
      EXPECT_TRUE(ctx.inbox().empty());
      return;
    }
    std::uint32_t sum = 0;
    for (const auto& msg : ctx.inbox()) {
      Deserializer d(msg.payload);
      sum += d.read<std::uint32_t>();
    }
    EXPECT_EQ(sum, 0u + 1 + 2 + 3);
  });
  EXPECT_EQ(cluster.stats().rounds(), 2u);
}

TEST(Cluster, InboxOrderedBySourceRank) {
  Cluster cluster(small_config(6));
  cluster.run_round([](MachineContext& ctx) {
    Serializer s;
    s.write<std::uint32_t>(ctx.id());
    ctx.send(2, std::move(s));
  });
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() != 2) return;
    ASSERT_EQ(ctx.inbox().size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(ctx.inbox()[i].from, i);
    }
  });
}

TEST(Cluster, InboxClearedNextRound) {
  Cluster cluster(small_config());
  cluster.run_round([](MachineContext& ctx) {
    ctx.send(1, std::vector<std::uint8_t>{1, 2, 3});
  });
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 1) {
      EXPECT_FALSE(ctx.inbox().empty());
    }
  });
  cluster.run_round([](MachineContext& ctx) {
    EXPECT_TRUE(ctx.inbox().empty());  // nothing sent last round
  });
}

TEST(Cluster, SendQuotaEnforced) {
  Cluster cluster(small_config(4, 128));
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) {
      ctx.send(1, std::vector<std::uint8_t>(200));  // > 128B local memory
    }
  }),
               MpcViolation);
}

TEST(Cluster, ReceiveQuotaEnforced) {
  Cluster cluster(small_config(4, 128));
  // Each sender is under quota (50B) but the receiver gets 150B.
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() != 3) ctx.send(3, std::vector<std::uint8_t>(50));
  }),
               MpcViolation);
}

TEST(Cluster, ResidencyQuotaEnforced) {
  Cluster cluster(small_config(2, 128));
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    ctx.store().set_blob("big", std::vector<std::uint8_t>(256));
  }),
               MpcViolation);
}

TEST(Cluster, EnforcementCanBeDisabled) {
  Cluster cluster(ClusterConfig{2, 64, false});
  cluster.run_round([](MachineContext& ctx) {
    ctx.store().set_blob("big", std::vector<std::uint8_t>(1024));
  });
  EXPECT_EQ(cluster.stats().peak_local_bytes(), 1024u);
}

TEST(Cluster, StatsTrackPeaks) {
  Cluster cluster(small_config(3, 4096));
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(300));
  });
  EXPECT_EQ(cluster.stats().records()[0].max_sent_bytes, 300u);
  EXPECT_EQ(cluster.stats().records()[0].max_recv_bytes, 300u);
  EXPECT_EQ(cluster.stats().records()[0].total_message_bytes, 300u);
  EXPECT_GE(cluster.stats().peak_round_io_bytes(), 300u);
}

TEST(Cluster, OutOfRangeDestinationThrows) {
  Cluster cluster(small_config(2));
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    ctx.send(7, std::vector<std::uint8_t>(1));
  }),
               MpcViolation);
}

TEST(Cluster, MultipleSendsConcatenate) {
  Cluster cluster(small_config());
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) {
      Serializer a;
      a.write<std::uint32_t>(1);
      ctx.send(1, std::move(a));
      Serializer b;
      b.write<std::uint32_t>(2);
      ctx.send(1, std::move(b));
    }
  });
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() != 1) return;
    ASSERT_EQ(ctx.inbox().size(), 1u);  // one message per sender
    Deserializer d(ctx.inbox().front().payload);
    EXPECT_EQ(d.read<std::uint32_t>(), 1u);
    EXPECT_EQ(d.read<std::uint32_t>(), 2u);
  });
}

TEST(LocalMemoryForInput, PowerLawAndFloor) {
  EXPECT_EQ(local_memory_for_input(0, 0.5), 4096u);
  EXPECT_EQ(local_memory_for_input(1 << 20, 0.5, 0), 1024u);
  EXPECT_GE(local_memory_for_input(1 << 20, 1.0, 0), 1u << 20);
}

TEST(RoundStats, SummaryMentionsRounds) {
  Cluster cluster(small_config());
  cluster.run_round([](MachineContext&) {}, "noop");
  const std::string summary = cluster.stats().summary();
  EXPECT_NE(summary.find("rounds=1"), std::string::npos);
  EXPECT_NE(summary.find("noop"), std::string::npos);
}

}  // namespace
}  // namespace mpte::mpc
