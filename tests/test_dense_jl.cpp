#include "transform/dense_jl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(DenseJl, ShapeAndDeterminism) {
  const DenseJl jl(100, 20, 7);
  EXPECT_EQ(jl.input_dim(), 100u);
  EXPECT_EQ(jl.output_dim(), 20u);
  const PointSet points = generate_uniform_cube(5, 100, 1.0, 1);
  const PointSet a = jl.transform(points);
  const PointSet b = DenseJl(100, 20, 7).transform(points);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_EQ(a.dim(), 20u);
  EXPECT_EQ(a.size(), 5u);
}

TEST(DenseJl, ZeroDimensionsThrow) {
  EXPECT_THROW(DenseJl(0, 5, 1), MpteError);
  EXPECT_THROW(DenseJl(5, 0, 1), MpteError);
}

TEST(DenseJl, NormPreservedInExpectation) {
  // Average ||phi(x)||^2 / ||x||^2 over many seeds concentrates at 1.
  const PointSet points = generate_uniform_cube(1, 64, 1.0, 3);
  const double norm_sq = l2_distance_squared(
      points[0], std::vector<double>(64, 0.0));
  double sum_ratio = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const DenseJl jl(64, 16, 1000 + t);
    const auto mapped = jl.apply(points[0]);
    double mapped_sq = 0.0;
    for (const double x : mapped) mapped_sq += x * x;
    sum_ratio += mapped_sq / norm_sq;
  }
  EXPECT_NEAR(sum_ratio / trials, 1.0, 0.06);
}

TEST(DenseJl, PairwiseDistancesWithinXi) {
  const std::size_t n = 30;
  const double xi = 0.5;  // generous; k = recommended for this xi
  const PointSet points = generate_gaussian_clusters(n, 80, 3, 10.0, 1.0, 5);
  const std::size_t k = DenseJl::recommended_dim(n, xi);
  const DenseJl jl(80, k, 11);
  const PointSet mapped = jl.transform(points);
  std::size_t violations = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double now = l2_distance(mapped[i], mapped[j]);
      ++pairs;
      if (now < (1 - xi) * orig || now > (1 + xi) * orig) ++violations;
    }
  }
  // The JL guarantee is w.h.p. for all pairs; allow a tiny slack.
  EXPECT_LE(violations, pairs / 50);
}

TEST(DenseJl, RecommendedDimGrowsLogarithmically) {
  const std::size_t k1 = DenseJl::recommended_dim(1000, 0.25);
  const std::size_t k2 = DenseJl::recommended_dim(1000000, 0.25);
  EXPECT_GT(k2, k1);
  EXPECT_LT(k2, 3 * k1);  // log growth, not polynomial
  EXPECT_GT(DenseJl::recommended_dim(1000, 0.1),
            DenseJl::recommended_dim(1000, 0.5));
}

TEST(DenseJl, LinearMap) {
  const DenseJl jl(10, 4, 13);
  std::vector<double> x(10, 0.0), y(10, 0.0);
  x[3] = 2.0;
  y[7] = -1.0;
  std::vector<double> sum(10, 0.0);
  sum[3] = 2.0;
  sum[7] = -1.0;
  const auto fx = jl.apply(x);
  const auto fy = jl.apply(y);
  const auto fsum = jl.apply(sum);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(fsum[i], fx[i] + fy[i], 1e-12);
  }
}

}  // namespace
}  // namespace mpte
