#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mpte {
namespace {

TEST(MathUtil, PowerOfTwoPredicates) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ull << 40));
  EXPECT_FALSE(is_power_of_two((1ull << 40) + 1));
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(0), 1u);
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(MathUtil, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(MathUtil, UnitBallVolumeKnownValues) {
  EXPECT_NEAR(unit_ball_volume(1), 2.0, 1e-12);
  EXPECT_NEAR(unit_ball_volume(2), std::numbers::pi, 1e-12);
  EXPECT_NEAR(unit_ball_volume(3), 4.0 / 3.0 * std::numbers::pi, 1e-12);
  EXPECT_NEAR(unit_ball_volume(4), std::numbers::pi * std::numbers::pi / 2.0,
              1e-12);
}

TEST(MathUtil, UnitBallVolumeShrinksInHighDim) {
  // V_k peaks at k=5 and decays super-exponentially after.
  EXPECT_GT(unit_ball_volume(5), unit_ball_volume(12));
  EXPECT_LT(unit_ball_volume(30), 1e-4);
}

TEST(MathUtil, CoverProbabilityMatchesDefinition) {
  EXPECT_NEAR(ball_grid_cover_probability(1), 0.5, 1e-12);
  EXPECT_NEAR(ball_grid_cover_probability(2), std::numbers::pi / 16.0,
              1e-12);
  for (unsigned k = 1; k <= 16; ++k) {
    const double p = ball_grid_cover_probability(k);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 0.5);
  }
}

TEST(MathUtil, MeanAndStddev) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
  EXPECT_EQ(sample_stddev({1.0}), 0.0);
  EXPECT_NEAR(sample_stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MathUtil, Percentile) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(percentile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(percentile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(percentile(v, 0.25), 2.0, 1e-12);
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(MathUtil, MaxValue) {
  EXPECT_EQ(max_value({}), 0.0);
  EXPECT_EQ(max_value({-3.0, -1.0, -2.0}), -1.0);
}

}  // namespace
}  // namespace mpte
