#include "apps/nearest_neighbor.hpp"

#include <gtest/gtest.h>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Embedding make_embedding(const PointSet& points, std::uint64_t seed) {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(ExactNearestNeighbor, KnownConfiguration) {
  PointSet points(4, 1, {0.0, 10.0, 11.0, 30.0});
  const auto nn = exact_nearest_neighbor(points, 1);
  EXPECT_EQ(nn.neighbor, 2u);
  EXPECT_NEAR(nn.distance, 1.0, 1e-12);
  EXPECT_EQ(nn.candidates, 3u);
  EXPECT_THROW((void)exact_nearest_neighbor(PointSet(1, 1), 0), MpteError);
}

TEST(TreeNearestNeighbor, NeverReturnsQueryItself) {
  const PointSet points = generate_uniform_cube(80, 3, 30.0, 3);
  const Embedding embedding = make_embedding(points, 5);
  for (std::size_t q = 0; q < points.size(); ++q) {
    const auto nn = tree_nearest_neighbor(embedding.tree, points, q, 8);
    EXPECT_NE(nn.neighbor, q);
    EXPECT_GT(nn.candidates, 0u);
    EXPECT_GT(nn.distance, 0.0);
  }
}

TEST(TreeNearestNeighbor, BudgetLimitsWork) {
  const PointSet points = generate_uniform_cube(200, 3, 30.0, 7);
  const Embedding embedding = make_embedding(points, 9);
  const auto nn = tree_nearest_neighbor(embedding.tree, points, 0, 10);
  EXPECT_LE(nn.candidates, 10u);
}

TEST(TreeNearestNeighbor, DistanceWithinDistortionOfExact) {
  const PointSet points = generate_uniform_cube(150, 4, 30.0, 11);
  const Embedding embedding = make_embedding(points, 13);
  double worst_ratio = 0.0;
  for (std::size_t q = 0; q < points.size(); ++q) {
    const auto approx =
        tree_nearest_neighbor(embedding.tree, points, q, 16);
    const auto exact = exact_nearest_neighbor(points, q);
    EXPECT_GE(approx.distance, exact.distance - 1e-12);
    worst_ratio = std::max(worst_ratio, approx.distance / exact.distance);
  }
  // Approximation governed by the embedding distortion; generous ceiling.
  EXPECT_LT(worst_ratio, 50.0);
}

TEST(TreeNearestNeighbor, MostlyExactOnClusteredData) {
  // With well-separated tight clusters the tree keeps each cluster
  // together, so the tree answer usually IS the exact nearest neighbor.
  const PointSet points =
      generate_gaussian_clusters(120, 3, 6, 1000.0, 1.0, 15);
  const Embedding embedding = make_embedding(points, 17);
  std::size_t exact_hits = 0;
  for (std::size_t q = 0; q < points.size(); ++q) {
    const auto approx =
        tree_nearest_neighbor(embedding.tree, points, q, 24);
    const auto exact = exact_nearest_neighbor(points, q);
    if (approx.distance <= exact.distance * 1.0 + 1e-12) ++exact_hits;
  }
  EXPECT_GT(exact_hits, points.size() / 2);
}

TEST(TreeNearestNeighbor, HandlesDuplicatePoints) {
  PointSet points(6, 2, {5, 5, 5, 5, 5, 5, 40, 40, 41, 41, 42, 42});
  const Embedding embedding = make_embedding(points, 19);
  const auto nn = tree_nearest_neighbor(embedding.tree, points, 0, 2);
  EXPECT_NE(nn.neighbor, 0u);
  EXPECT_NEAR(nn.distance, 0.0, 1e-12);  // a duplicate
}

TEST(TreeNearestNeighbor, AllPairsConvenience) {
  const PointSet points = generate_uniform_cube(40, 3, 20.0, 21);
  const Embedding embedding = make_embedding(points, 23);
  const auto all = tree_all_nearest_neighbors(embedding.tree, points, 8);
  ASSERT_EQ(all.size(), 40u);
  for (std::size_t q = 0; q < 40; ++q) EXPECT_NE(all[q].neighbor, q);
}

TEST(TreeNearestNeighbor, ValidatesInputs) {
  const PointSet points = generate_uniform_cube(20, 3, 20.0, 25);
  const Embedding embedding = make_embedding(points, 27);
  const PointSet fewer = generate_uniform_cube(5, 3, 20.0, 29);
  EXPECT_THROW((void)tree_nearest_neighbor(embedding.tree, fewer, 0, 4),
               MpteError);
}

}  // namespace
}  // namespace mpte
