// mpte::simd — the determinism contract, enforced.
//
// Every dispatched kernel must be *bitwise* identical to the scalar
// reference instantiation on every backend this binary/CPU offers, on
// every dimension shape (aligned, partial-tail, sub-lane), and on the
// nasty corners of double (signed zeros, denormals, huge magnitudes).
// The golden-fingerprint test then closes the loop end to end: the full
// MPC embedding pipeline produces the same bytes with vector kernels
// forced off and on, at 1 and 8 cluster threads.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "geometry/point_set.hpp"
#include "simd/arena.hpp"
#include "simd/dispatch.hpp"
#include "tree/hst_io.hpp"

namespace mpte::simd {
namespace {

// The dimension shapes of the contract: sub-lane (1, 3), exactly one
// block (4), partial tail (7), aligned multiple (8), bulk (64), and a
// large non-multiple (1000).
const std::vector<std::size_t> kDims = {1, 3, 4, 7, 8, 64, 1000};

// Restores the dispatch default after a test that forces backends.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_backend()) {}
  ~BackendGuard() { set_backend(saved_); }

 private:
  Backend saved_;
};

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// A reproducible stream mixing ordinary values with the corners the
// contract calls out: both zero signs, denormals, and magnitudes large
// enough that any reassociation of a sum changes the result.
std::vector<double> corner_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        out[i] = rng.normal();
        break;
      case 1:
        out[i] = -0.0;
        break;
      case 2:
        out[i] = 0.0;
        break;
      case 3:
        out[i] = std::numeric_limits<double>::denorm_min() *
                 static_cast<double>(1 + (i % 5));
        break;
      case 4:
        out[i] = rng.normal() * 1e18;
        break;
      case 5:
        out[i] = rng.normal() * 1e-18;
        break;
      default:
        out[i] = rng.uniform(-100.0, 100.0);
        break;
    }
  }
  return out;
}

TEST(Dispatch, ScalarAlwaysAvailableAndPreferenceOrdered) {
  const auto avail = available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kScalar);
  for (std::size_t i = 1; i < avail.size(); ++i) {
    EXPECT_LT(static_cast<int>(avail[i - 1]), static_cast<int>(avail[i]));
  }
  EXPECT_EQ(avail.back(), best_backend());
}

TEST(Dispatch, BackendNamesRoundTrip) {
  Backend b{};
  EXPECT_TRUE(backend_from_name("scalar", &b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(backend_from_name("sse2", &b));
  EXPECT_EQ(b, Backend::kSse2);
  EXPECT_TRUE(backend_from_name("avx2", &b));
  EXPECT_EQ(b, Backend::kAvx2);
  EXPECT_FALSE(backend_from_name("auto", &b));
  EXPECT_FALSE(backend_from_name("", &b));
  EXPECT_FALSE(backend_from_name("neon", &b));
  for (const Backend backend : available_backends()) {
    Backend parsed{};
    EXPECT_TRUE(backend_from_name(backend_name(backend), &parsed));
    EXPECT_EQ(parsed, backend);
  }
}

TEST(Dispatch, SetBackendSwitchesOpsAndRefusesUnavailable) {
  BackendGuard guard;
  for (const Backend backend : available_backends()) {
    ASSERT_TRUE(set_backend(backend));
    EXPECT_EQ(active_backend(), backend);
    EXPECT_STREQ(ops().name, backend_name(backend));
  }
}

// Every kernel, every available backend, every dimension shape: bitwise
// equality against the scalar reference instantiation.
TEST(KernelEquality, AllBackendsMatchScalarBitwise) {
  const Ops& ref = scalar_ops();
  for (const Backend backend : available_backends()) {
    BackendGuard guard;
    ASSERT_TRUE(set_backend(backend));
    const Ops& vec = ops();
    for (const std::size_t dim : kDims) {
      SCOPED_TRACE(std::string(backend_name(backend)) + " dim=" +
                   std::to_string(dim));
      const auto a = corner_stream(dim, 0x5eedull + dim);
      const auto b = corner_stream(dim, 0xfeedull + dim);

      EXPECT_EQ(bits(ref.l2sq(a.data(), b.data(), dim)),
                bits(vec.l2sq(a.data(), b.data(), dim)));
      EXPECT_EQ(bits(ref.sumsq(a.data(), dim)),
                bits(vec.sumsq(a.data(), dim)));
      EXPECT_EQ(bits(ref.dot(a.data(), b.data(), dim)),
                bits(vec.dot(a.data(), b.data(), dim)));

      // scale: multiply by an irrational-ish factor, compare every slot.
      std::vector<double> s_ref = a, s_vec = a;
      ref.scale(s_ref.data(), dim, 0x1.921fb54442d18p+1);
      vec.scale(s_vec.data(), dim, 0x1.921fb54442d18p+1);
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_EQ(bits(s_ref[i]), bits(s_vec[i])) << "i=" << i;
      }

      // gemv: 5 rows of the corner stream against p.
      const std::size_t rows = 5;
      const auto m = corner_stream(rows * dim, 0xabcdull + dim);
      std::vector<double> g_ref(rows), g_vec(rows);
      ref.gemv(m.data(), rows, dim, a.data(), g_ref.data());
      vec.gemv(m.data(), rows, dim, a.data(), g_vec.data());
      for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(bits(g_ref[r]), bits(g_vec[r])) << "row=" << r;
      }

      // csr_row_dot: a strided sparse row over x (indices within bounds).
      std::vector<std::uint32_t> cols;
      std::vector<double> vals;
      for (std::size_t i = 0; i < dim; i += 2) {
        cols.push_back(static_cast<std::uint32_t>(dim - 1 - i));
        vals.push_back(b[i]);
      }
      EXPECT_EQ(
          bits(ref.csr_row_dot(vals.data(), cols.data(), cols.size(),
                               a.data())),
          bits(vec.csr_row_dot(vals.data(), cols.data(), cols.size(),
                               a.data())));

      // lattice_floor: shifts from the second stream, a well-behaved cell.
      std::vector<double> z_ref(dim), z_vec(dim);
      ref.lattice_floor(a.data(), b.data(), dim, 1.0 / 3.25, z_ref.data());
      vec.lattice_floor(a.data(), b.data(), dim, 1.0 / 3.25, z_vec.data());
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_EQ(bits(z_ref[i]), bits(z_vec[i])) << "i=" << i;
      }
    }
  }
}

TEST(KernelEquality, FwhtMatchesScalarBitwiseOnPowerOfTwoRows) {
  const Ops& ref = scalar_ops();
  for (const Backend backend : available_backends()) {
    BackendGuard guard;
    ASSERT_TRUE(set_backend(backend));
    const Ops& vec = ops();
    for (const std::size_t n : {1u, 2u, 4u, 8u, 64u, 1024u}) {
      SCOPED_TRACE(std::string(backend_name(backend)) + " n=" +
                   std::to_string(n));
      const auto base = corner_stream(n, 0x4a11ull + n);
      std::vector<double> r = base, v = base;
      ref.fwht_row(r.data(), n);
      vec.fwht_row(v.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(r[i]), bits(v[i])) << "i=" << i;
      }
    }
  }
}

TEST(KernelEquality, BallFirstCoverMatchesScalarOnEveryBackend) {
  const Ops& ref = scalar_ops();
  Rng rng(2024);
  for (const Backend backend : available_backends()) {
    BackendGuard guard;
    ASSERT_TRUE(set_backend(backend));
    const Ops& vec = ops();
    for (const std::size_t dim : {1u, 3u, 8u}) {
      // 1..10 grids exercises full blocks, partial blocks, and sub-lane
      // grid counts.
      for (const std::size_t grids : {1u, 2u, 4u, 5u, 8u, 10u}) {
        const double cell = 4.0;
        std::vector<double> shifts(dim * grids);
        for (double& s : shifts) s = rng.uniform(0.0, cell);
        for (int trial = 0; trial < 50; ++trial) {
          std::vector<double> p(dim);
          for (double& x : p) x = rng.uniform(-20.0, 20.0);
          const std::size_t expect = ref.ball_first_cover(
              p.data(), dim, shifts.data(), grids, cell, 1.0 / cell, 1.0);
          const std::size_t got = vec.ball_first_cover(
              p.data(), dim, shifts.data(), grids, cell, 1.0 / cell, 1.0);
          EXPECT_EQ(expect, got)
              << backend_name(backend) << " dim=" << dim
              << " grids=" << grids << " trial=" << trial;
        }
      }
    }
  }
}

TEST(KernelEquality, SignedZeroTailPaddingDoesNotLeakIntoSums) {
  // A tail consisting solely of -0.0 must not flip the sign of a zero
  // accumulator: load_partial pads with +0.0 and (-0.0) + (+0.0) = +0.0.
  const std::vector<double> nz = {-0.0, -0.0, -0.0};
  for (const Backend backend : available_backends()) {
    BackendGuard guard;
    ASSERT_TRUE(set_backend(backend));
    const double s = ops().sumsq(nz.data(), nz.size());
    EXPECT_EQ(bits(s), bits(0.0)) << backend_name(backend);
    const double d = ops().dot(nz.data(), nz.data(), nz.size());
    EXPECT_EQ(bits(d), bits(0.0)) << backend_name(backend);
  }
}

TEST(Arena, AllocationsAreAlignedAndBump) {
  Arena arena;
  const auto a = arena.alloc<double>(3);
  const auto b = arena.alloc<std::uint64_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % Arena::kAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % Arena::kAlignment,
            0u);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_GT(arena.used(), 0u);
  EXPECT_TRUE(arena.alloc<double>(0).empty());
}

TEST(Arena, MarkReleaseRewindsAndReusesMemory) {
  Arena arena;
  (void)arena.alloc<double>(8);
  const auto mark = arena.mark();
  const auto first = arena.alloc<double>(16);
  const double* first_ptr = first.data();
  arena.release(mark);
  const auto second = arena.alloc<double>(16);
  // Same watermark -> same storage.
  EXPECT_EQ(first_ptr, second.data());
}

TEST(Arena, ResetCoalescesSpillToHighWater) {
  Arena arena;
  // Force a spill past the initial block.
  (void)arena.alloc<double>(16 * 1024);
  (void)arena.alloc<double>(16 * 1024);
  const std::size_t hw = arena.high_water();
  EXPECT_GE(hw, 2 * 16 * 1024 * sizeof(double));
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.capacity(), hw);
  // Steady state: the same footprint now fits one block, so consecutive
  // allocations are contiguous.
  const auto a = arena.alloc<double>(16 * 1024);
  const auto b = arena.alloc<double>(16 * 1024);
  EXPECT_EQ(a.data() + a.size(), b.data());
}

TEST(Arena, ScratchScopeReleasesOnExit) {
  Arena& arena = scratch();
  arena.reset();
  const std::size_t before = arena.used();
  {
    ScratchScope scope;
    (void)scope.arena().alloc<double>(100);
    EXPECT_GT(arena.used(), before);
  }
  EXPECT_EQ(arena.used(), before);
}

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// The end-to-end contract: the golden embedding fingerprint (pinned in
// test_mpc_channels.cpp since the seed implementation) is byte-identical
// with the scalar reference forced and with the dispatched vector backend,
// at 1 and 8 cluster threads.
TEST(GoldenSeedSimd, FingerprintIdenticalAcrossBackendsAndThreads) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  BackendGuard guard;
  for (const Backend backend : available_backends()) {
    ASSERT_TRUE(set_backend(backend));
    for (const std::size_t threads : {1u, 8u}) {
      mpc::ClusterConfig config;
      config.num_machines = 6;
      config.local_memory_bytes = 1 << 22;
      config.enforce_limits = true;
      config.num_threads = threads;
      mpc::Cluster cluster(config);

      const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
      MpcEmbedOptions options;
      options.seed = 99;
      options.num_buckets = 2;
      options.delta = 1024;
      options.use_fjlt = false;
      const auto result = mpc_embed(cluster, points, options);
      ASSERT_TRUE(result.ok()) << result.status().to_string();

      const auto tree_bytes = hst_to_bytes(result->tree);
      std::uint64_t h = fnv1a(tree_bytes.data(), tree_bytes.size(),
                              1469598103934665603ull);
      const auto& raw = result->embedded_points.raw();
      h = fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
                raw.size() * sizeof(double), h);
      EXPECT_EQ(h, kExpectedHash)
          << "backend=" << backend_name(backend) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace mpte::simd
