#include "core/mpc_embedder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "tree/distortion.hpp"

namespace mpte {
namespace {

using mpc::Cluster;
using mpc::ClusterConfig;

Cluster big_cluster(std::size_t machines = 4) {
  return Cluster(ClusterConfig{machines, 1 << 22, true});
}

TEST(MpcEmbedder, RejectsTooFewPoints) {
  Cluster cluster = big_cluster();
  const PointSet one = generate_uniform_cube(1, 3, 1.0, 1);
  EXPECT_FALSE(mpc_embed(cluster, one, MpcEmbedOptions{}).ok());
}

TEST(MpcEmbedder, ProducesValidDominatingTree) {
  Cluster cluster = big_cluster(6);
  const PointSet points = generate_uniform_cube(90, 5, 30.0, 3);
  MpcEmbedOptions options;
  options.seed = 5;
  options.use_fjlt = false;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->tree.validate().ok());
  EXPECT_EQ(result->tree.num_points(), 90u);
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 4000, 1);
  EXPECT_GE(stats.min_ratio, 1.0);
}

TEST(MpcEmbedder, MatchesSequentialPipelineExactly) {
  // Same seed, no FJLT: the MPC tree must realize the identical metric.
  const PointSet points = generate_uniform_cube(70, 4, 20.0, 7);

  EmbedOptions seq_options;
  seq_options.method = PartitionMethod::kHybrid;
  seq_options.num_buckets = 2;
  seq_options.delta = 256;
  seq_options.seed = 11;
  seq_options.use_fjlt = false;
  const auto seq = embed(points, seq_options);
  ASSERT_TRUE(seq.ok());

  Cluster cluster = big_cluster(5);
  MpcEmbedOptions mpc_options;
  mpc_options.num_buckets = 2;
  mpc_options.delta = 256;
  mpc_options.seed = 11;
  mpc_options.use_fjlt = false;
  const auto par = mpc_embed(cluster, points, mpc_options);
  ASSERT_TRUE(par.ok()) << par.status().to_string();

  // Identical quantized points...
  EXPECT_EQ(par->embedded_points.raw(), seq->embedded_points.raw());
  // ...and identical tree metric.
  ASSERT_EQ(par->tree.num_points(), seq->tree.num_points());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_DOUBLE_EQ(par->tree.distance(i, j), seq->tree.distance(i, j))
          << "pair " << i << "," << j;
    }
  }
}

TEST(MpcEmbedder, ConstantRoundsAcrossN) {
  // The round count must not depend on the input size.
  std::size_t rounds_small = 0, rounds_large = 0;
  for (const std::size_t n : {32u, 256u}) {
    Cluster cluster = big_cluster(4);
    const PointSet points = generate_uniform_cube(n, 4, 20.0, 13);
    MpcEmbedOptions options;
    options.seed = 17;
    options.use_fjlt = false;
    options.delta = 128;
    const auto result = mpc_embed(cluster, points, options);
    ASSERT_TRUE(result.ok());
    (n == 32 ? rounds_small : rounds_large) = result->rounds_used;
  }
  EXPECT_EQ(rounds_small, rounds_large);
}

TEST(MpcEmbedder, WithFjltStageStillDominates) {
  Cluster cluster = big_cluster(4);
  const PointSet points = generate_uniform_cube(64, 300, 10.0, 19);
  MpcEmbedOptions options;
  options.seed = 23;
  options.use_fjlt = true;
  options.fjlt_xi = 0.4;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->fjlt_applied);
  EXPECT_LT(result->dim_used, 300u);
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 2000, 1);
  EXPECT_GE(stats.min_ratio, 1.0);
}

TEST(MpcEmbedder, ReportsCoverageFailureAfterRetries) {
  Cluster cluster = big_cluster(4);
  const PointSet points = generate_uniform_cube(120, 5, 10.0, 29);
  MpcEmbedOptions options;
  options.num_buckets = 1;  // 5-dim bucket
  options.num_grids = 2;    // far too few
  options.max_retries = 1;
  options.use_fjlt = false;
  options.seed = 31;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCoverageFailure);
}

TEST(MpcEmbedder, SingletonPolicyAvoidsFailure) {
  Cluster cluster = big_cluster(4);
  const PointSet points = generate_uniform_cube(60, 5, 10.0, 37);
  MpcEmbedOptions options;
  options.num_buckets = 1;
  options.num_grids = 2;
  options.uncovered = UncoveredPolicy::kSingleton;
  options.use_fjlt = false;
  options.seed = 41;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.validate().ok());
}

TEST(MpcEmbedder, LocalMemoryStaysWithinConfig) {
  Cluster cluster(ClusterConfig{8, 1 << 18, true});
  const PointSet points = generate_uniform_cube(128, 4, 20.0, 43);
  MpcEmbedOptions options;
  options.use_fjlt = false;
  options.delta = 128;
  options.seed = 47;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_LE(cluster.stats().peak_local_bytes(), 1u << 18);
}

TEST(MpcEmbedder, ScaleToInputRoundTrips) {
  Cluster cluster = big_cluster(4);
  const PointSet points = generate_uniform_cube(50, 3, 100.0, 53);
  MpcEmbedOptions options;
  options.use_fjlt = false;
  options.quantize_eps = 0.02;
  options.seed = 59;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t j = i + 1; j < 15; ++j) {
      const double true_dist = l2_distance(points[i], points[j]);
      EXPECT_GE(result->distance(i, j), (1.0 - 0.03) * true_dist);
    }
  }
}

}  // namespace
}  // namespace mpte
