#include "mpc/channel.hpp"

#include <gtest/gtest.h>


#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "mpc/primitives.hpp"
#include "tree/distortion.hpp"
#include "tree/hst_io.hpp"

namespace mpte::mpc {
namespace {

struct Record {
  std::uint64_t id;
  double weight;

  friend bool operator==(const Record&, const Record&) = default;
};

TEST(TypedKeys, VectorRoundTrip) {
  const Key<Record> key{"recs"};
  LocalStore store;
  EXPECT_FALSE(key.in(store));
  const std::vector<Record> values{{1, 0.5}, {2, -3.25}};
  key.set(store, values);
  EXPECT_TRUE(key.in(store));
  EXPECT_EQ(key.get(store), values);
  key.erase(store);
  EXPECT_FALSE(key.in(store));
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(TypedKeys, ValueRoundTrip) {
  const ValueKey<double> key{"x"};
  LocalStore store;
  key.set(store, 2.5);
  EXPECT_TRUE(key.in(store));
  EXPECT_EQ(key.get(store), 2.5);
  key.erase(store);
  EXPECT_FALSE(key.in(store));
}

TEST(TypedChannel, BatchSendReceive) {
  Cluster cluster(ClusterConfig{3, 1 << 16, true});
  const Channel<Record> ch{"recs"};
  cluster.run_round([&](MachineContext& ctx) {
    // Every machine sends two batches to rank 0 (they concatenate into
    // one message; the length prefixes keep them separable).
    ch.send(ctx, 0, std::vector<Record>{{ctx.id(), 1.0}});
    ch.send(ctx, 0, std::vector<Record>{{ctx.id() + 10u, 2.0}});
  });
  cluster.run_round([&](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    const auto records = ch.receive(ctx);
    // Source rank order, batches in send order within each source.
    const std::vector<Record> expected{{0, 1.0}, {10, 2.0}, {1, 1.0},
                                       {11, 2.0}, {2, 1.0}, {12, 2.0}};
    EXPECT_EQ(records, expected);
  });
}

TEST(TypedChannel, RawSendReceive) {
  Cluster cluster(ClusterConfig{4, 1 << 16, true});
  const Channel<std::uint64_t> ch{"ints"};
  cluster.run_round([&](MachineContext& ctx) {
    ch.send_one(ctx, 0, std::uint64_t{100} + ctx.id());
  });
  cluster.run_round([&](MachineContext& ctx) {
    if (ctx.id() != 0) return;
    EXPECT_EQ(ch.receive_raw(ctx),
              (std::vector<std::uint64_t>{100, 101, 102, 103}));
  });
}

TEST(TypedChannel, RawSendCostsExactlySizeofT) {
  Cluster cluster(ClusterConfig{2, 1 << 16, true});
  const Channel<std::uint64_t> ch{"ints"};
  cluster.run_round(
      [&](MachineContext& ctx) { ch.send_one(ctx, 0, ctx.id()); });
  EXPECT_EQ(cluster.stats().records()[0].total_message_bytes,
            2 * sizeof(std::uint64_t));
}

TEST(ChannelStats, PerChannelBytesSumToRoundTotals) {
  Cluster cluster(ClusterConfig{4, 1 << 16, true});
  const Channel<std::uint64_t> a{"stream-a"};
  const Channel<Record> b{"stream-b"};
  cluster.run_round([&](MachineContext& ctx) {
    a.send(ctx, (ctx.id() + 1) % 4,
           std::vector<std::uint64_t>(ctx.id() + 1, 7));
    b.send_one(ctx, 0, Record{ctx.id(), 1.0});
    if (ctx.id() == 2) {
      ctx.send(3, std::vector<std::uint8_t>(13));  // untyped raw bytes
    }
  });
  cluster.run_round([](MachineContext&) {});  // drains inboxes, no sends

  for (const RoundRecord& record : cluster.stats().records()) {
    std::size_t channel_sum = 0;
    for (const auto& [channel, bytes] : record.channel_bytes) {
      channel_sum += bytes;
    }
    EXPECT_EQ(channel_sum, record.total_message_bytes)
        << "round '" << record.label << "'";
  }

  const auto& first = cluster.stats().records()[0].channel_bytes;
  // a: machine i sends 8 + (i+1)*8 bytes -> 4*8 + (1+2+3+4)*8 = 112.
  EXPECT_EQ(first.at("stream-a"), 112u);
  EXPECT_EQ(first.at("stream-b"), 4 * sizeof(Record));
  EXPECT_EQ(first.at(kUntypedChannel), 13u);

  // Aggregates: channel_totals() is sorted by descending bytes and sums
  // match the per-round attribution.
  const auto totals = cluster.stats().channel_totals();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].first, "stream-a");
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_GE(totals[i - 1].second, totals[i].second);
  }
}

TEST(ChannelStats, PrimitivesAttributeTheirTraffic) {
  Cluster cluster(ClusterConfig{4, 1 << 16, true});
  std::vector<KV> records;
  for (std::uint64_t i = 0; i < 64; ++i) records.push_back(KV{i % 8, 1});
  scatter_vector(cluster, "in", records);
  reduce_kv_sum(cluster, "in", "out");

  std::size_t tagged = 0;
  for (const auto& [channel, bytes] : cluster.stats().channel_totals()) {
    EXPECT_NE(channel, kUntypedChannel);
    tagged += bytes;
  }
  std::size_t total = 0;
  for (const auto& record : cluster.stats().records()) {
    total += record.total_message_bytes;
  }
  EXPECT_EQ(tagged, total);
  // The shuffle traffic is filed under the input key's name.
  const auto& round0 = cluster.stats().records()[0];
  ASSERT_TRUE(round0.channel_bytes.contains("in"));
}

TEST(Violations, EnforcementOffStillRecordsBreaches) {
  // 64-byte machines; one machine sends 128 bytes and every machine ends
  // the round holding it. With enforcement off nothing throws, but the
  // stats must record every breach: 1 send + 1 receive + 1 residency.
  ClusterConfig config{2, 64, /*enforce_limits=*/false};
  Cluster cluster(config);
  cluster.run_round([&](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(128));
  });
  ASSERT_EQ(cluster.stats().rounds(), 1u);
  EXPECT_EQ(cluster.stats().records()[0].violations, 3u);
  EXPECT_EQ(cluster.stats().total_violations(), 3u);

  // A quiet round adds no violations.
  cluster.run_round([](MachineContext&) {});
  EXPECT_EQ(cluster.stats().records()[1].violations, 0u);
  EXPECT_EQ(cluster.stats().total_violations(), 3u);

  // The summary surfaces the count.
  EXPECT_NE(cluster.stats().summary().find("violations=3"),
            std::string::npos);
}

TEST(Violations, EnforcementOnStillThrows) {
  Cluster cluster(ClusterConfig{2, 64, /*enforce_limits=*/true});
  EXPECT_THROW(cluster.run_round([&](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(128));
  }),
               MpcViolation);
  // The failed round is not recorded.
  EXPECT_EQ(cluster.stats().rounds(), 0u);
  EXPECT_EQ(cluster.stats().total_violations(), 0u);
}

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

TEST(GoldenSeed, EmbeddingIsByteIdenticalAcrossRefactorsAndThreads) {
  // Fingerprint of mpc_embed's output (tree bytes + embedded point bytes)
  // for a pinned configuration, captured from the pre-Buffer/-Channel
  // implementation. Any change to this hash means the communication
  // refactor altered the computed embedding, which it must never do.
  // Checked at 1 and 8 cluster threads. Host-side measurements like
  // measure_distortion are deliberately not hashed: their parallel
  // accumulation order follows MPTE_THREADS, not the cluster config.
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;

  for (const std::size_t threads : {1u, 8u}) {
    mpc::ClusterConfig config;
    config.num_machines = 6;
    config.local_memory_bytes = 1 << 22;
    config.enforce_limits = true;
    config.num_threads = threads;
    mpc::Cluster cluster(config);

    const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
    MpcEmbedOptions options;
    options.seed = 99;
    options.num_buckets = 2;
    options.delta = 1024;
    options.use_fjlt = false;
    const auto result = mpc_embed(cluster, points, options);
    ASSERT_TRUE(result.ok()) << result.status().to_string();

    const auto tree_bytes = hst_to_bytes(result->tree);
    std::uint64_t h =
        fnv1a(tree_bytes.data(), tree_bytes.size(), 1469598103934665603ull);
    const auto& raw = result->embedded_points.raw();
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
              raw.size() * sizeof(double), h);
    EXPECT_EQ(h, kExpectedHash) << "threads=" << threads;

    const DistortionStats stats =
        measure_distortion(result->tree, result->embedded_points, 5000, 3);
    EXPECT_GE(stats.min_ratio, 1.0);
    EXPECT_LE(stats.mean_ratio, stats.max_ratio);
  }
}

}  // namespace
}  // namespace mpte::mpc
