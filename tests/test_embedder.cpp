#include "core/embedder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte {
namespace {

TEST(Embedder, RejectsTooFewPoints) {
  const PointSet one = generate_uniform_cube(1, 3, 1.0, 1);
  EXPECT_FALSE(embed(one, EmbedOptions{}).ok());
}

TEST(Embedder, MethodNames) {
  EXPECT_STREQ(to_string(PartitionMethod::kGrid), "grid");
  EXPECT_STREQ(to_string(PartitionMethod::kBall), "ball");
  EXPECT_STREQ(to_string(PartitionMethod::kHybrid), "hybrid");
}

TEST(Embedder, AutoBucketsCapBucketDimension) {
  // The auto choice must never leave bucket dims above the cap (U would
  // explode as 2^{k log k}).
  for (const std::size_t dim : {4u, 16u, 52u, 133u}) {
    const std::uint32_t r = auto_num_buckets(1024, dim, 3);
    EXPECT_LE((dim + r - 1) / r, 3u) << "dim=" << dim;
    EXPECT_LE(r, dim);
  }
  // And it still respects the Theta(log log n) floor for small dims.
  EXPECT_GE(auto_num_buckets(1u << 20, 16, 16),
            theorem1_num_buckets(1u << 20, 16));
}

TEST(Embedder, Theorem1BucketsGrowDoublyLogarithmically) {
  const auto r1 = theorem1_num_buckets(1u << 10, 1000);
  const auto r2 = theorem1_num_buckets(1u << 20, 1000);
  EXPECT_GE(r2, r1);
  EXPECT_LE(r2, r1 + 2);  // log log grows very slowly
  EXPECT_EQ(theorem1_num_buckets(1u << 20, 2), 2u);  // clamped to dim
  EXPECT_GE(theorem1_num_buckets(4, 10), 1u);
}

class EmbedderMethodTest
    : public ::testing::TestWithParam<PartitionMethod> {};

TEST_P(EmbedderMethodTest, ProducesValidDominatingTree) {
  const PointSet points = generate_uniform_cube(100, 6, 30.0, 5);
  EmbedOptions options;
  options.method = GetParam();
  options.seed = 7;
  options.use_fjlt = false;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->tree.validate().ok());
  EXPECT_EQ(result->tree.num_points(), 100u);

  // Domination wrt the embedded (quantized) points — an exact property.
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 5000, 1);
  EXPECT_GE(stats.min_ratio, 1.0)
      << "method " << to_string(GetParam());
}

TEST_P(EmbedderMethodTest, ApproximatesInputDistances) {
  const PointSet points = generate_uniform_cube(60, 5, 30.0, 11);
  EmbedOptions options;
  options.method = GetParam();
  options.seed = 13;
  options.use_fjlt = false;
  options.quantize_eps = 0.05;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok());
  // Tree distance in input units dominates (1 - eps) * true distance and
  // stays below a generous distortion ceiling.
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      const double true_dist = l2_distance(points[i], points[j]);
      const double tree_dist = result->distance(i, j);
      EXPECT_GE(tree_dist, (1.0 - 0.06) * true_dist);
      EXPECT_LE(tree_dist, 2000.0 * true_dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, EmbedderMethodTest,
                         ::testing::Values(PartitionMethod::kGrid,
                                           PartitionMethod::kBall,
                                           PartitionMethod::kHybrid));

TEST(Embedder, FjltKicksInForHighDimensions) {
  const PointSet points = generate_uniform_cube(64, 400, 10.0, 17);
  EmbedOptions options;
  options.use_fjlt = true;
  options.fjlt_xi = 0.4;
  options.seed = 19;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fjlt_applied);
  EXPECT_LT(result->dim_used, 400u);
  EXPECT_TRUE(result->tree.validate().ok());
}

TEST(Embedder, FjltSkippedForLowDimensions) {
  const PointSet points = generate_uniform_cube(64, 4, 10.0, 23);
  EmbedOptions options;
  options.use_fjlt = true;
  options.seed = 29;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->fjlt_applied);
  EXPECT_EQ(result->dim_used, 4u);
}

TEST(Embedder, ExplicitParametersRespected) {
  const PointSet points = generate_uniform_cube(50, 6, 10.0, 31);
  EmbedOptions options;
  options.method = PartitionMethod::kHybrid;
  options.num_buckets = 3;
  options.delta = 512;
  options.num_grids = 400;
  options.use_fjlt = false;
  options.seed = 37;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buckets_used, 3u);
  EXPECT_EQ(result->delta_used, 512u);
  EXPECT_EQ(result->grids_used, 400u);
}

TEST(Embedder, RetriesOnCoverageFailure) {
  // Starve the grid count so early seeds likely fail; retries must either
  // succeed eventually or report kCoverageFailure (never crash).
  const PointSet points = generate_uniform_cube(150, 6, 10.0, 41);
  EmbedOptions options;
  options.method = PartitionMethod::kBall;  // 6-dim bucket: poor coverage
  options.num_grids = 3;
  options.use_fjlt = false;
  options.max_retries = 2;
  options.seed = 43;
  const auto result = embed(points, options);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCoverageFailure);
  } else {
    EXPECT_GE(result->retries_used, 0);
  }
}

TEST(Embedder, DeterministicForSeed) {
  const PointSet points = generate_uniform_cube(40, 5, 10.0, 47);
  EmbedOptions options;
  options.seed = 53;
  options.use_fjlt = false;
  const auto a = embed(points, options);
  const auto b = embed(points, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->tree.num_points(), b->tree.num_points());
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      EXPECT_EQ(a->tree.distance(i, j), b->tree.distance(i, j));
    }
  }
}

TEST(Embedder, SingletonPolicySurvivesStarvedGrids) {
  const PointSet points = generate_uniform_cube(80, 6, 10.0, 59);
  EmbedOptions options;
  options.method = PartitionMethod::kBall;
  options.num_grids = 2;
  options.uncovered = UncoveredPolicy::kSingleton;
  options.use_fjlt = false;
  options.seed = 61;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.validate().ok());
}

}  // namespace
}  // namespace mpte
