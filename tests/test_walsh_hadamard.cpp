#include "transform/walsh_hadamard.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(Fwht, LengthMustBePowerOfTwo) {
  std::vector<double> data(3, 1.0);
  EXPECT_THROW(fwht(data), MpteError);
}

TEST(Fwht, SizeOneIsIdentity) {
  std::vector<double> data{5.0};
  fwht(data);
  EXPECT_EQ(data[0], 5.0);
}

TEST(Fwht, SizeTwoButterfly) {
  std::vector<double> data{3.0, 1.0};
  fwht(data);
  EXPECT_EQ(data[0], 4.0);
  EXPECT_EQ(data[1], 2.0);
}

TEST(Fwht, MatchesDenseHadamardDefinition) {
  const std::size_t d = 16;
  Rng rng(1);
  std::vector<double> input(d);
  for (double& x : input) x = rng.normal();

  std::vector<double> fast = input;
  fwht_normalized(fast);

  for (std::size_t i = 0; i < d; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      expected += hadamard_entry(d, i, j) * input[j];
    }
    EXPECT_NEAR(fast[i], expected, 1e-12) << "row " << i;
  }
}

TEST(Fwht, NormalizedIsInvolution) {
  // H is symmetric orthonormal: applying it twice is the identity.
  Rng rng(2);
  std::vector<double> input(64);
  for (double& x : input) x = rng.normal();
  std::vector<double> twice = input;
  fwht_normalized(twice);
  fwht_normalized(twice);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(twice[i], input[i], 1e-10);
  }
}

TEST(Fwht, NormalizedPreservesNorm) {
  Rng rng(3);
  for (const std::size_t d : {2u, 8u, 128u, 1024u}) {
    std::vector<double> input(d);
    double norm_sq = 0.0;
    for (double& x : input) {
      x = rng.normal();
      norm_sq += x * x;
    }
    std::vector<double> out = input;
    fwht_normalized(out);
    double out_norm_sq = 0.0;
    for (const double x : out) out_norm_sq += x * x;
    EXPECT_NEAR(out_norm_sq, norm_sq, 1e-9 * norm_sq) << "d=" << d;
  }
}

TEST(Fwht, Linearity) {
  Rng rng(4);
  const std::size_t d = 32;
  std::vector<double> a(d), b(d), combo(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
    combo[i] = 2.0 * a[i] - 3.0 * b[i];
  }
  fwht(a);
  fwht(b);
  fwht(combo);
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(combo[i], 2.0 * a[i] - 3.0 * b[i], 1e-9);
  }
}

TEST(Fwht, ImpulseGivesConstantRow) {
  std::vector<double> impulse(8, 0.0);
  impulse[0] = 1.0;
  fwht(impulse);
  for (const double x : impulse) EXPECT_EQ(x, 1.0);
}

TEST(HadamardEntry, SignsAndScale) {
  EXPECT_NEAR(hadamard_entry(4, 0, 0), 0.5, 1e-15);
  EXPECT_NEAR(hadamard_entry(4, 1, 1), -0.5, 1e-15);  // popcount(1&1)=1
  EXPECT_NEAR(hadamard_entry(4, 3, 3), 0.5, 1e-15);   // popcount(3)=2
  EXPECT_THROW(hadamard_entry(3, 0, 0), MpteError);
}

TEST(Fwht, KroneckerFactorizationIdentity) {
  // H_d = H_g (x) H_b: FWHT over the low log2(b) bits within blocks, then
  // FWHT over the high bits across blocks at each offset, equals the flat
  // transform. This identity is what the distributed MPC FWHT relies on.
  const std::size_t b = 8, g = 4, d = b * g;
  Rng rng(9);
  std::vector<double> input(d);
  for (double& x : input) x = rng.normal();

  std::vector<double> flat = input;
  fwht(flat);

  std::vector<double> staged = input;
  for (std::size_t j = 0; j < g; ++j) {
    fwht(std::span<double>(staged.data() + j * b, b));
  }
  std::vector<double> column(g);
  for (std::size_t o = 0; o < b; ++o) {
    for (std::size_t j = 0; j < g; ++j) column[j] = staged[j * b + o];
    fwht(column);
    for (std::size_t j = 0; j < g; ++j) staged[j * b + o] = column[j];
  }
  for (std::size_t e = 0; e < d; ++e) {
    EXPECT_EQ(staged[e], flat[e]) << "element " << e;  // bit-identical
  }
}

TEST(Fwht, ThreeFactorKroneckerIdentity) {
  // The same identity nested once more (the general m-stage MPC path):
  // chunks of 2, 2, and 1 bits over d = 32.
  const std::size_t d = 32;
  Rng rng(10);
  std::vector<double> input(d);
  for (double& x : input) x = rng.normal();

  std::vector<double> flat = input;
  fwht(flat);

  std::vector<double> staged = input;
  const std::size_t chunk_bits[] = {2, 2, 1};
  std::size_t offset = 0;
  for (const std::size_t bits : chunk_bits) {
    const std::size_t fiber = 1u << bits;
    std::vector<double> buffer(fiber);
    for (std::size_t group = 0; group < d / fiber; ++group) {
      // Elements sharing all bits except [offset, offset+bits).
      const std::size_t low_mask = (1u << offset) - 1u;
      const std::size_t low = group & low_mask;
      const std::size_t high = (group >> offset) << (offset + bits);
      for (std::size_t digit = 0; digit < fiber; ++digit) {
        buffer[digit] = staged[high | (digit << offset) | low];
      }
      fwht(buffer);
      for (std::size_t digit = 0; digit < fiber; ++digit) {
        staged[high | (digit << offset) | low] = buffer[digit];
      }
    }
    offset += bits;
  }
  for (std::size_t e = 0; e < d; ++e) {
    EXPECT_EQ(staged[e], flat[e]) << "element " << e;
  }
}

TEST(FwhtPoints, TransformsEveryRow) {
  const PointSet points = generate_uniform_cube(10, 16, 1.0, 5);
  const PointSet out = fwht_points(points);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    std::vector<double> expected(points[i].begin(), points[i].end());
    fwht_normalized(expected);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(out[i][j], expected[j], 1e-12);
    }
  }
}

}  // namespace
}  // namespace mpte
