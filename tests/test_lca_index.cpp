#include "tree/lca_index.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Hst sample_tree(std::size_t n, std::uint64_t seed) {
  const PointSet points = generate_uniform_cube(n, 4, 30.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result->tree);
}

TEST(LcaIndex, MatchesWalkingLcaEverywhere) {
  const Hst tree = sample_tree(80, 3);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    for (std::size_t q = 0; q < tree.num_points(); ++q) {
      EXPECT_EQ(index.lca(p, q), tree.lca(p, q))
          << "pair " << p << "," << q;
    }
  }
}

TEST(LcaIndex, MatchesWalkingDistanceEverywhere) {
  const Hst tree = sample_tree(60, 5);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    for (std::size_t q = p; q < tree.num_points(); ++q) {
      EXPECT_NEAR(index.distance(p, q), tree.distance(p, q),
                  1e-9 * (1.0 + tree.distance(p, q)));
    }
  }
}

TEST(LcaIndex, SelfQueries) {
  const Hst tree = sample_tree(20, 7);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    EXPECT_EQ(index.lca(p, p), tree.leaf(p));
    EXPECT_EQ(index.distance(p, p), 0.0);
  }
}

TEST(LcaIndex, WeightDepthConsistent) {
  const Hst tree = sample_tree(40, 9);
  const LcaIndex index(tree);
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_NEAR(index.weight_depth(i), tree.depth_weight(i), 1e-12);
  }
  EXPECT_EQ(index.depth(tree.root()), 0u);
}

TEST(LcaIndex, RandomLargeTreeSpotChecks) {
  const Hst tree = sample_tree(500, 11);
  const LcaIndex index(tree);
  Rng rng(13);
  for (int t = 0; t < 2000; ++t) {
    const std::size_t p = rng.uniform_u64(500);
    const std::size_t q = rng.uniform_u64(500);
    EXPECT_EQ(index.lca(p, q), tree.lca(p, q));
  }
}

TEST(LcaIndex, TinyTree) {
  // Two points: root + two leaves.
  const Hst tree = sample_tree(2, 15);
  const LcaIndex index(tree);
  EXPECT_EQ(index.distance(0, 1), tree.distance(0, 1));
}

}  // namespace
}  // namespace mpte
