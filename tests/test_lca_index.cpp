#include "tree/lca_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/embedder.hpp"
#include "dyn/dynamic_embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Hst sample_tree(std::size_t n, std::uint64_t seed) {
  const PointSet points = generate_uniform_cube(n, 4, 30.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result->tree);
}

TEST(LcaIndex, MatchesWalkingLcaEverywhere) {
  const Hst tree = sample_tree(80, 3);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    for (std::size_t q = 0; q < tree.num_points(); ++q) {
      EXPECT_EQ(index.lca(p, q), tree.lca(p, q))
          << "pair " << p << "," << q;
    }
  }
}

TEST(LcaIndex, MatchesWalkingDistanceEverywhere) {
  const Hst tree = sample_tree(60, 5);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    for (std::size_t q = p; q < tree.num_points(); ++q) {
      EXPECT_NEAR(index.distance(p, q), tree.distance(p, q),
                  1e-9 * (1.0 + tree.distance(p, q)));
    }
  }
}

TEST(LcaIndex, SelfQueries) {
  const Hst tree = sample_tree(20, 7);
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    EXPECT_EQ(index.lca(p, p), tree.leaf(p));
    EXPECT_EQ(index.distance(p, p), 0.0);
  }
}

TEST(LcaIndex, WeightDepthConsistent) {
  const Hst tree = sample_tree(40, 9);
  const LcaIndex index(tree);
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_NEAR(index.weight_depth(i), tree.depth_weight(i), 1e-12);
  }
  EXPECT_EQ(index.depth(tree.root()), 0u);
}

TEST(LcaIndex, RandomLargeTreeSpotChecks) {
  const Hst tree = sample_tree(500, 11);
  const LcaIndex index(tree);
  Rng rng(13);
  for (int t = 0; t < 2000; ++t) {
    const std::size_t p = rng.uniform_u64(500);
    const std::size_t q = rng.uniform_u64(500);
    EXPECT_EQ(index.lca(p, q), tree.lca(p, q));
  }
}

TEST(LcaIndex, TinyTree) {
  // Two points: root + two leaves.
  const Hst tree = sample_tree(2, 15);
  const LcaIndex index(tree);
  EXPECT_EQ(index.distance(0, 1), tree.distance(0, 1));
}

// Exhaustively checks a freshly built index against the O(depth) Hst
// walk oracle on the same tree.
void expect_index_matches_walk(const Hst& tree) {
  const LcaIndex index(tree);
  for (std::size_t p = 0; p < tree.num_points(); ++p) {
    for (std::size_t q = p; q < tree.num_points(); ++q) {
      EXPECT_EQ(index.lca(p, q), tree.lca(p, q)) << "pair " << p << "," << q;
      EXPECT_NEAR(index.distance(p, q), tree.distance(p, q),
                  1e-9 * (1.0 + tree.distance(p, q)));
    }
  }
}

// The serving tier rebuilds an LcaIndex per member on every dynamic epoch
// publish, so the index must stay correct on trees produced by
// materialize() after arbitrary insert/erase sequences — not only on
// trees straight out of embed(). Mutate a DynamicEmbedder step by step
// and oracle-check the index over every intermediate tree.
TEST(LcaIndex, MatchesWalkOracleOnMutatedTrees) {
  const PointSet initial = generate_uniform_cube(24, 4, 30.0, 21);
  dyn::DynOptions options;
  options.seed = 21;
  auto dynamic = dyn::DynamicEmbedder::create(initial, options);
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();

  Rng rng(17);
  const PointSet pool = generate_uniform_cube(64, 4, 30.0, 22);
  std::vector<std::uint64_t> live;
  for (std::uint64_t id = 0; id < initial.size(); ++id) live.push_back(id);
  std::size_t next_pool = 0;
  for (int step = 0; step < 12; ++step) {
    if (next_pool < pool.size() && (live.size() <= 4 || rng.uniform_u64(3))) {
      const auto id = dynamic->insert(pool[next_pool++]);
      ASSERT_TRUE(id.ok()) << id.status().to_string();
      live.push_back(*id);
    } else {
      const std::size_t victim = rng.uniform_u64(live.size());
      ASSERT_TRUE(dynamic->erase(live[victim]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    auto materialized = dynamic->materialize();
    ASSERT_TRUE(materialized.ok()) << materialized.status().to_string();
    expect_index_matches_walk(materialized->tree);
  }
}

}  // namespace
}  // namespace mpte
