#include "core/mpc_stages.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"
#include "mpc/primitives.hpp"
#include "partition/coverage.hpp"

namespace mpte::detail {
namespace {

using mpc::Cluster;
using mpc::ClusterConfig;
using mpc::KV;

Cluster test_cluster(std::size_t machines = 4) {
  return Cluster(ClusterConfig{machines, 1 << 22, true});
}

TEST(PackLevelNode, RoundTripsLevel) {
  for (const std::size_t level : {0u, 1u, 17u, 63u}) {
    const std::uint64_t key = pack_level_node(level, mix64(level + 99));
    EXPECT_EQ(packed_level(key), level);
  }
}

TEST(PackLevelNode, DistinctIdsStayDistinct) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    keys.insert(pack_level_node(3, mix64(i)));
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(ScatterPoints, PreservesIndexCoordinatePairing) {
  Cluster cluster = test_cluster(3);
  const PointSet points = generate_uniform_cube(10, 2, 5.0, 1);
  scatter_points(cluster, points);
  for (std::uint32_t id = 0; id < 3; ++id) {
    const auto idx = cluster.store(id).get_vector<std::uint64_t>("emb/idx");
    const auto data = cluster.store(id).get_vector<double>("emb/pts");
    ASSERT_EQ(data.size(), idx.size() * 2);
    for (std::size_t local = 0; local < idx.size(); ++local) {
      EXPECT_EQ(data[local * 2], points.coord(idx[local], 0));
      EXPECT_EQ(data[local * 2 + 1], points.coord(idx[local], 1));
    }
  }
}

TEST(MpcQuantize, MatchesSequentialQuantizer) {
  Cluster cluster = test_cluster(4);
  const PointSet points = generate_uniform_cube(37, 3, 80.0, 3);
  const std::uint64_t delta = 128;
  scatter_points(cluster, points);
  mpc_quantize(cluster, 3, delta, 2);

  const Quantized expected = quantize_to_grid(points, delta);
  for (std::uint32_t id = 0; id < 4; ++id) {
    const auto idx = cluster.store(id).get_vector<std::uint64_t>("emb/idx");
    const auto data = cluster.store(id).get_vector<double>("emb/pts");
    for (std::size_t local = 0; local < idx.size(); ++local) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(data[local * 3 + j],
                  expected.points.coord(idx[local], j))
            << "point " << idx[local] << " coord " << j;
      }
    }
  }
}

PartitionParams make_params(std::uint64_t seed, std::size_t n,
                            std::size_t dim, std::uint32_t r,
                            std::uint64_t delta) {
  PartitionParams params;
  params.seed = seed;
  params.delta = delta;
  params.num_buckets = r;
  params.bucket_dim = static_cast<std::uint32_t>((dim + r - 1) / r);
  params.effective_dim = params.bucket_dim * r;
  params.uncovered_singleton = 0;
  const ScaleLadder ladder = hybrid_scale_ladder(dim, r, delta);
  params.num_grids =
      recommended_num_grids(params.bucket_dim, n, r, ladder.levels, 1e-6);
  return params;
}

TEST(RunPartitionAttempt, EdgesMatchSequentialHierarchy) {
  const std::size_t n = 25, dim = 3;
  const std::uint64_t delta = 64, seed = 77;
  const PointSet raw = generate_uniform_cube(n, dim, 40.0, 5);
  const Quantized q = quantize_to_grid(raw, delta);

  Cluster cluster = test_cluster(3);
  scatter_points(cluster, q.points);
  const auto params = make_params(seed, n, dim, 2, delta);
  const std::uint64_t failures =
      run_partition_attempt(cluster, dim, params, 2);
  ASSERT_EQ(failures, 0u);

  // Sequential reference ids.
  HybridOptions options;
  options.num_buckets = 2;
  options.delta = delta;
  options.seed = seed;
  const auto hierarchy = build_hybrid_hierarchy(q.points, options);
  ASSERT_TRUE(hierarchy.ok());

  // Every sequential (child, parent) id pair must appear in the gathered
  // edge records and vice versa.
  std::set<std::pair<std::uint64_t, std::uint64_t>> expected;
  for (std::size_t level = 1; level < hierarchy->levels(); ++level) {
    for (std::size_t i = 0; i < n; ++i) {
      expected.emplace(hierarchy->cluster_of_point[level][i],
                       hierarchy->cluster_of_point[level - 1][i]);
    }
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> actual;
  for (const KV& kv : mpc::gather_vector<KV>(cluster, "emb/edges")) {
    actual.emplace(kv.key, kv.value);
  }
  EXPECT_EQ(actual, expected);
}

TEST(RunPathRecordsAttempt, RecordsCoverEveryPointAndLevel) {
  const std::size_t n = 20, dim = 2;
  const std::uint64_t delta = 32, seed = 99;
  const PointSet raw = generate_uniform_cube(n, dim, 40.0, 7);
  const Quantized q = quantize_to_grid(raw, delta);

  Cluster cluster = test_cluster(4);
  scatter_points(cluster, q.points);
  const auto params = make_params(seed, n, dim, 2, delta);
  ASSERT_EQ(run_path_records_attempt(cluster, dim, params, 2), 0u);

  const ScaleLadder ladder = hybrid_scale_ladder(dim, 2, delta);
  const auto records = mpc::gather_vector<KV>(cluster, "emb/nodes");
  EXPECT_EQ(records.size(), n * ladder.levels);
  std::vector<std::size_t> per_point(n, 0);
  for (const KV& kv : records) {
    const std::size_t level = packed_level(kv.key);
    EXPECT_GE(level, 1u);
    EXPECT_LE(level, ladder.levels);
    ++per_point[kv.value];
  }
  for (const std::size_t count : per_point) {
    EXPECT_EQ(count, ladder.levels);
  }
}

TEST(RunPathRecordsAttempt, LinksFormChains) {
  const std::size_t n = 15, dim = 2;
  const std::uint64_t delta = 32, seed = 111;
  const PointSet raw = generate_uniform_cube(n, dim, 40.0, 9);
  const Quantized q = quantize_to_grid(raw, delta);

  Cluster cluster = test_cluster(3);
  scatter_points(cluster, q.points);
  const auto params = make_params(seed, n, dim, 1, delta);
  ASSERT_EQ(run_path_records_attempt(cluster, dim, params, 2,
                                     /*emit_links=*/true),
            0u);

  const auto links = mpc::gather_vector<KV>(cluster, "emb/links");
  EXPECT_FALSE(links.empty());
  for (const KV& link : links) {
    EXPECT_EQ(packed_level(link.key), packed_level(link.value) + 1);
  }
  // The root appears as a parent of every level-1 link.
  const std::uint64_t packed_root =
      pack_level_node(0, hybrid_root_id(seed));
  bool saw_root = false;
  for (const KV& link : links) {
    if (link.value == packed_root) saw_root = true;
  }
  EXPECT_TRUE(saw_root);
}

TEST(RunPartitionAttempt, ReportsFailuresWithStarvedGrids) {
  const std::size_t n = 40, dim = 4;
  const PointSet raw = generate_uniform_cube(n, dim, 40.0, 11);
  const Quantized q = quantize_to_grid(raw, 64);

  Cluster cluster = test_cluster(3);
  scatter_points(cluster, q.points);
  auto params = make_params(13, n, dim, 1, 64);
  params.num_grids = 1;  // hopeless coverage in 4 dims
  EXPECT_GT(run_partition_attempt(cluster, dim, params, 2), 0u);
}

}  // namespace
}  // namespace mpte::detail
