#include "partition/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"

namespace mpte {
namespace {

Hierarchy sample_hierarchy(std::size_t n, std::uint64_t seed) {
  const PointSet raw = generate_uniform_cube(n, 3, 50.0, seed);
  const Quantized q = quantize_to_grid(raw, 256);
  HybridOptions options;
  options.delta = 256;
  options.num_buckets = 3;
  options.seed = seed;
  auto result = build_hybrid_hierarchy(q.points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(Analysis, RootLevelIsOneCluster) {
  const Hierarchy h = sample_hierarchy(60, 1);
  const auto stats = analyze_hierarchy(h);
  ASSERT_EQ(stats.size(), h.levels());
  EXPECT_EQ(stats[0].clusters, 1u);
  EXPECT_EQ(stats[0].largest, 60u);
  EXPECT_EQ(stats[0].singletons, 0u);
  EXPECT_EQ(stats[0].entropy, 0.0);
}

TEST(Analysis, RefinementIsMonotone) {
  const Hierarchy h = sample_hierarchy(80, 3);
  const auto stats = analyze_hierarchy(h);
  for (std::size_t level = 1; level < stats.size(); ++level) {
    // Laminar refinement: cluster counts never decrease, largest never
    // grows, entropy never falls.
    EXPECT_GE(stats[level].clusters, stats[level - 1].clusters);
    EXPECT_LE(stats[level].largest, stats[level - 1].largest);
    EXPECT_GE(stats[level].entropy, stats[level - 1].entropy - 1e-12);
    EXPECT_EQ(stats[level].scale, h.scales[level]);
  }
}

TEST(Analysis, BottomLevelShattersDistinctPoints) {
  const Hierarchy h = sample_hierarchy(50, 5);
  const auto stats = analyze_hierarchy(h);
  const LevelStats& last = stats.back();
  EXPECT_EQ(last.clusters, 50u);
  EXPECT_EQ(last.largest, 1u);
  EXPECT_EQ(last.singletons, 50u);
  EXPECT_NEAR(last.entropy, std::log(50.0), 1e-9);
  EXPECT_LE(full_shatter_level(h), h.levels() - 1);
}

TEST(Analysis, ShatterLevelDetectsDuplicates) {
  // Duplicates never separate: full shatter never happens.
  PointSet raw(4, 2, {1, 1, 1, 1, 200, 200, 220, 230});
  const Quantized q = quantize_to_grid(raw, 128);
  HybridOptions options;
  options.delta = 128;
  options.num_buckets = 1;
  options.seed = 7;
  const auto h = build_hybrid_hierarchy(q.points, options);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(full_shatter_level(*h), h->levels());
}

TEST(Analysis, ReportMentionsEveryLevel) {
  const Hierarchy h = sample_hierarchy(20, 9);
  const std::string report = hierarchy_report(h);
  EXPECT_NE(report.find("clusters"), std::string::npos);
  // One line per level plus the header.
  std::size_t lines = 0;
  for (const char c : report) lines += (c == '\n');
  EXPECT_EQ(lines, h.levels() + 1);
}

}  // namespace
}  // namespace mpte
